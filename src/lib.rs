//! Facade crate re-exporting the whole HLS-GNN performance-prediction suite.
//!
//! See the individual crates for details:
//! - [`hls_ir`]: IR graphs (DFG/CDFG) and node/edge features.
//! - [`hls_progen`]: synthetic program generator and real-world kernels.
//! - [`hls_sim`]: HLS scheduling/binding simulator and implementation model.
//! - [`gnn_tensor`]: autodiff tensor engine.
//! - [`gnn`]: message-passing layers and models.
//! - [`hls_gnn_core`]: the three prediction approaches and the experiment harness.
pub use gnn;
pub use gnn_tensor;
pub use hls_gnn_core;
pub use hls_ir;
pub use hls_progen;
pub use hls_sim;
