//! Facade crate re-exporting the whole HLS-GNN performance-prediction suite.
//!
//! See the individual crates for details:
//! - [`hls_ir`]: IR graphs (DFG/CDFG) and node/edge features.
//! - [`hls_progen`]: synthetic program generator and real-world kernels.
//! - [`hls_sim`]: HLS scheduling/binding simulator and implementation model.
//! - [`hls_gnn_analyze`]: static analysis — the IR verifier, a generic
//!   dataflow framework (dominators, liveness, def-use, loop nests) and
//!   analytic lower bounds on latency/II/port pressure.
//! - [`gnn_tensor`]: autodiff tensor engine.
//! - [`gnn`]: message-passing layers and models.
//! - [`hls_gnn_core`]: the prediction engine — the [`prelude::Predictor`]
//!   API, builder/registry, batched inference, persistence, and the
//!   experiment harness.
//! - [`hls_gnn_store`]: binary zero-copy persistence (checksummed container
//!   snapshots interchangeable with JSON), the sharded streaming dataset
//!   store, and the `hls-gnn-pack` CLI.
//! - [`hls_gnn_serve`]: the serving subsystem — an HTTP frontend, request
//!   coalescing onto fused tapes, sharded workers and a prediction cache
//!   over trained snapshots.
//! - [`hls_gnn_obs`]: the observability layer — a lock-free metrics
//!   registry (counters, gauges, bucketed histograms with quantile
//!   readout), RAII stage spans with an optional `HLSGNN_TRACE` JSONL
//!   sink, and the Prometheus-style text exposition behind `/metrics`.
//! - [`hls_gnn_dse`]: the design-space exploration subsystem — typed knob
//!   spaces over kernel templates, pluggable search strategies (exhaustive,
//!   random, annealing, NSGA-II) and Pareto/hypervolume machinery over the
//!   four predicted targets.
//!
//! Most users only need the [`prelude`]:
//!
//! ```
//! use hls_gnn::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = DatasetBuilder::new(ProgramFamily::StraightLine).count(16).seed(1).build()?;
//! let split = dataset.split(0.8, 0.1, 1);
//! let predictor = PredictorBuilder::parse("base/gcn")?
//!     .config(TrainConfig::fast())
//!     .train(&split.train, &split.validation)?;
//! let snapshot = predictor.save_json()?;
//! let served = load_predictor(&snapshot)?;
//! assert_eq!(
//!     served.predict_batch(&split.test.samples).len(),
//!     split.test.len(),
//! );
//! # Ok(())
//! # }
//! ```

pub use gnn;
pub use gnn_tensor;
pub use hls_gnn_analyze;
pub use hls_gnn_core;
pub use hls_gnn_dse;
pub use hls_gnn_obs;
pub use hls_gnn_serve;
pub use hls_gnn_store;
pub use hls_ir;
pub use hls_progen;
pub use hls_sim;

/// The curated single-import surface of the prediction engine: everything
/// needed to build a corpus, construct any predictor from a spec, train it,
/// batch-predict, and persist/reload trained models.
pub mod prelude {
    pub use gnn::{GnnKind, GraphBatch, Pooling};
    pub use hls_gnn_core::approach::{
        hls_baseline_mape, seed_averaged_mape, seed_averaged_mape_with, GnnPredictor,
    };
    pub use hls_gnn_core::builder::{
        load_predictor, ApproachKind, PredictorBuilder, PredictorSpec,
    };
    pub use hls_gnn_core::dataset::{Dataset, DatasetBuilder, GraphSample, SampleSource, Split};
    pub use hls_gnn_core::experiments::{ExperimentConfig, ExperimentScale};
    pub use hls_gnn_core::persist::SavedPredictor;
    pub use hls_gnn_core::predictor::Predictor;
    pub use hls_gnn_core::runtime::{predict_batch_sharded, BatchConfig, ParallelConfig};
    pub use hls_gnn_core::task::{ResourceClass, TargetMetric};
    pub use hls_gnn_core::train::TrainConfig;
    pub use hls_gnn_core::Error;
    pub use hls_gnn_dse::{
        DesignPoint, DesignSpace, Evaluator, Exhaustive, Exploration, Explorer, Nsga2,
        RandomSearch, SimulatedAnnealing,
    };
    pub use hls_gnn_serve::{ServeConfig, ServiceHandle};
    pub use hls_gnn_store::{
        encode_snapshot, load_predictor_auto, snapshot_from_file, ShardedDataset, SyntheticSpill,
    };
    pub use hls_progen::synthetic::ProgramFamily;
    pub use hls_sim::{DeviceCatalog, FpgaDevice};
}
