//! Property-based integration tests: for *any* seed/configuration, the
//! program generator, the front end, the HLS flow and the dataset layer must
//! uphold their structural invariants.

use proptest::prelude::*;

use hls_gnn_core::dataset::GraphSample;
use hls_ir::graph::{extract_graph, EdgeKind, GraphKind, NodeKind};
use hls_ir::lower::lower_function;
use hls_progen::synthetic::{ProgramFamily, ProgramGenerator, SyntheticConfig};
use hls_sim::{run_flow, FpgaDevice};

fn generated_program(family: ProgramFamily, seed: u64) -> hls_ir::ast::Function {
    let config = SyntheticConfig::tiny(family);
    let mut generator = ProgramGenerator::new(config, seed);
    generator.generate()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every straight-line program lowers to a single basic block whose DFG is
    /// a DAG with no back edges and no block nodes.
    #[test]
    fn straightline_programs_produce_acyclic_dfgs(seed in 0u64..10_000) {
        let program = generated_program(ProgramFamily::StraightLine, seed);
        let ir = lower_function(&program).expect("lowering succeeds");
        prop_assert!(!ir.has_control_flow());
        let graph = extract_graph(&program, GraphKind::Dfg).expect("DFG extraction succeeds");
        prop_assert_eq!(graph.back_edge_count(), 0);
        prop_assert!(graph.is_dag_ignoring_back_edges());
        prop_assert!(graph.nodes().iter().all(|n| n.kind != NodeKind::Block));
        prop_assert!(graph.edges().iter().all(|e| e.kind != EdgeKind::Control));
    }

    /// Every control-family program produces a CDFG whose cycles are fully
    /// explained by marked back edges, and whose feature vectors line up with
    /// the node/edge counts.
    #[test]
    fn control_programs_produce_wellformed_cdfgs(seed in 0u64..10_000) {
        let program = generated_program(ProgramFamily::Control, seed);
        let graph = extract_graph(&program, GraphKind::Cdfg).expect("CDFG extraction succeeds");
        prop_assert!(graph.check_integrity().is_ok());
        prop_assert!(graph.is_dag_ignoring_back_edges(),
            "cycles must be explained by back edges in {}", program.name);
        let node_features = hls_ir::features::node_features(&graph);
        let edge_features = hls_ir::features::edge_features(&graph);
        prop_assert_eq!(node_features.len(), graph.node_count());
        prop_assert_eq!(edge_features.len(), graph.edge_count());
        prop_assert!(node_features.iter().all(|f| f.bitwidth <= 256));
    }

    /// The HLS flow terminates on every generated program with physically
    /// sensible outputs: non-negative resources, a critical path no smaller
    /// than the register overhead, and one annotation per operation.
    #[test]
    fn hls_flow_outputs_are_physically_sensible(seed in 0u64..10_000, fast_clock in proptest::bool::ANY) {
        let program = generated_program(ProgramFamily::Control, seed);
        let device = if fast_clock { FpgaDevice::medium_250mhz() } else { FpgaDevice::medium_100mhz() };
        let flow = run_flow(&program, &device).expect("flow succeeds");
        prop_assert!(flow.implementation.cp_ns > 1.0);
        prop_assert!(flow.implementation.cp_ns < 60.0, "CP {} ns is implausible", flow.implementation.cp_ns);
        prop_assert!(flow.hls_report.latency_cycles >= 1);
        prop_assert_eq!(flow.annotations.len(), flow.ir.op_count());
        // Control operations never consume resources.
        for annotation in &flow.annotations {
            let op = flow.ir.op(annotation.op);
            if op.is_control() {
                prop_assert!(annotation.types.is_empty());
            }
        }
    }

    /// Dataset samples keep every per-node table aligned with the graph and
    /// produce finite targets, for any seed.
    #[test]
    fn graph_samples_are_internally_consistent(seed in 0u64..10_000) {
        let program = generated_program(ProgramFamily::Control, seed);
        let sample = GraphSample::from_function(&program, GraphKind::Cdfg, &FpgaDevice::default())
            .expect("sample builds");
        prop_assert_eq!(sample.node_features.len(), sample.num_nodes());
        prop_assert_eq!(sample.node_aux_resources.len(), sample.num_nodes());
        prop_assert_eq!(sample.node_resource_types.len(), sample.num_nodes());
        prop_assert!(sample.targets.iter().all(|t| t.is_finite() && *t >= 0.0));
        prop_assert!(sample.structure.edge_relation.iter().all(|&r| r < GraphSample::NUM_RELATIONS));
        // The HLS estimate and the implementation must not be identical across
        // the board (otherwise the learning problem would be trivial).
        prop_assert!(sample.targets != sample.hls_estimate);
    }
}
