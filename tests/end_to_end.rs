//! Cross-crate integration tests: behavioural program → IR graph → HLS flow →
//! dataset → trained predictors, exercising every crate of the workspace in
//! one pipeline.

use gnn::GnnKind;
use hls_gnn_core::approach::{hls_baseline_mape, GnnPredictor};
use hls_gnn_core::dataset::{Dataset, DatasetBuilder, GraphSample};
use hls_gnn_core::predictor::Predictor;
use hls_gnn_core::task::TargetMetric;
use hls_gnn_core::train::TrainConfig;
use hls_ir::ast::{BinaryOp, Expr, FunctionBuilder, Stmt};
use hls_ir::graph::{extract_graph, GraphKind};
use hls_ir::types::{ArrayType, ScalarType};
use hls_progen::kernels::all_kernels;
use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};
use hls_sim::{run_flow, FpgaDevice};

fn fir_filter() -> hls_ir::ast::Function {
    let mut f = FunctionBuilder::new("fir4");
    let samples = f.array_param("samples", ArrayType::new(ScalarType::i16(), 16));
    let coefficients = f.array_param("coefficients", ArrayType::new(ScalarType::i16(), 4));
    let out = f.array_param("out", ArrayType::new(ScalarType::i32(), 16));
    let (i, k) = (f.local("i", ScalarType::i32()), f.local("k", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(48));
    f.push(Stmt::for_loop(
        i,
        3,
        16,
        1,
        vec![
            Stmt::assign(acc, Expr::constant(0)),
            Stmt::for_loop(
                k,
                0,
                4,
                1,
                vec![Stmt::assign(
                    acc,
                    Expr::binary(
                        BinaryOp::Add,
                        Expr::var(acc),
                        Expr::binary(
                            BinaryOp::Mul,
                            Expr::index(
                                samples,
                                Expr::binary(BinaryOp::Sub, Expr::var(i), Expr::var(k)),
                            ),
                            Expr::index(coefficients, Expr::var(k)),
                        ),
                    ),
                )],
            ),
            Stmt::store(out, Expr::var(i), Expr::var(acc)),
        ],
    ));
    f.ret(acc);
    f.finish().expect("FIR filter is valid")
}

#[test]
fn program_to_flow_to_sample_pipeline_is_consistent() {
    let device = FpgaDevice::default();
    let function = fir_filter();

    // Front end: the same program yields a CDFG and a full flow result.
    let graph = extract_graph(&function, GraphKind::Cdfg).expect("CDFG extraction");
    let flow = run_flow(&function, &device).expect("flow");
    assert!(graph.node_count() > 20);
    assert!(flow.implementation.dsp > 0, "16-bit MACs still map to DSPs");
    assert!(flow.hls_report.lut > 0);

    // Dataset layer: the sample agrees with the flow and the graph.
    let sample = GraphSample::from_function(&function, GraphKind::Cdfg, &device).expect("sample");
    assert_eq!(sample.num_nodes(), graph.node_count());
    assert_eq!(sample.targets, flow.implementation.as_targets());
    assert_eq!(sample.hls_estimate, flow.hls_report.as_targets());
    // Node-level labels line up with node count and are binary.
    assert_eq!(sample.node_resource_types.len(), graph.node_count());
    assert!(sample.node_resource_types.iter().flatten().all(|&v| v == 0.0 || v == 1.0));
}

#[test]
fn dataset_and_flow_are_deterministic_end_to_end() {
    let build = || {
        DatasetBuilder::new(ProgramFamily::Control)
            .count(6)
            .seed(99)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::Control))
            .build()
            .expect("dataset builds")
    };
    let a = build();
    let b = build();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.samples.iter().zip(&b.samples) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.targets, y.targets);
        assert_eq!(x.hls_estimate, y.hls_estimate);
        assert_eq!(x.structure.edge_count(), y.structure.edge_count());
    }
}

#[test]
fn off_the_shelf_and_hierarchical_predictors_beat_nothing_and_stay_finite() {
    let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(20)
        .seed(5)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
        .build()
        .expect("dataset builds");
    let split = dataset.split(0.8, 0.1, 5);
    let mut config = TrainConfig::fast();
    config.epochs = 6;

    let mut base = GnnPredictor::off_the_shelf(GnnKind::GraphSage, &config);
    base.fit(&split.train, &split.validation, &config).expect("fit base");
    let mut infused = GnnPredictor::hierarchical(GnnKind::GraphSage, &config);
    infused.fit(&split.train, &split.validation, &config).expect("fit infused");

    for approach in [&base as &dyn Predictor, &infused as &dyn Predictor] {
        let mape = approach.evaluate(&split.test);
        assert!(mape.iter().all(|m| m.is_finite() && *m >= 0.0), "{}: {mape:?}", approach.name());
        let prediction = approach.predict(&split.test.samples[0]).expect("prediction");
        assert!(prediction.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}

#[test]
fn hls_report_is_a_poor_lut_ff_estimator_on_real_kernels() {
    // The central premise of the paper: the HLS report's LUT/FF estimates are
    // far off the implemented values on real applications, leaving room for a
    // learned predictor. Our implementation model reproduces that gap.
    let device = FpgaDevice::default();
    let kernels = all_kernels();
    let subset: Vec<_> = kernels.iter().take(12).collect();
    let mut samples = Vec::new();
    for kernel in subset {
        samples.push(
            GraphSample::from_function(&kernel.function, GraphKind::Cdfg, &device)
                .expect("kernel sample"),
        );
    }
    let dataset = Dataset::new(samples);
    let baseline = hls_baseline_mape(&dataset);
    assert!(
        baseline[TargetMetric::Lut.index()] > 0.30,
        "HLS LUT error should be large on real kernels, got {:.3}",
        baseline[TargetMetric::Lut.index()]
    );
    assert!(
        baseline[TargetMetric::Ff.index()] > 0.15,
        "HLS FF error should be noticeable, got {:.3}",
        baseline[TargetMetric::Ff.index()]
    );
    assert!(
        baseline.iter().all(|m| m.is_finite()),
        "HLS baseline errors must stay finite: {baseline:?}"
    );
}

#[test]
fn knowledge_rich_features_are_available_for_every_kernel_node() {
    let device = FpgaDevice::default();
    let kernels = all_kernels();
    let kernel = kernels.iter().find(|k| k.name == "pb_gesummv").expect("kernel exists");
    let sample =
        GraphSample::from_function(&kernel.function, GraphKind::Cdfg, &device).expect("sample");
    assert_eq!(sample.node_aux_resources.len(), sample.num_nodes());
    // At least some nodes must carry non-zero HLS resource estimates
    // (multiplies, adders, array ports).
    let nonzero =
        sample.node_aux_resources.iter().filter(|aux| aux.iter().any(|&v| v > 0.0)).count();
    assert!(
        nonzero * 4 > sample.num_nodes(),
        "only {nonzero}/{} nodes annotated",
        sample.num_nodes()
    );
}
