//! Correctness guarantees of the fused graph mini-batching engine.
//!
//! * Fused forwards agree with per-graph forwards for every backbone ×
//!   feature-mode combination (within 1e-5 relative — in practice they are
//!   bit-identical, because member graphs keep their node order and every
//!   whole-graph operation is segment-aware).
//! * Training with `batch_size = 1` is bit-identical at every fusion width.
//! * Trained predictors produce identical results through the legacy path,
//!   the fused path, and the sharded parallel path.
//! * Degenerate inputs (empty batches, zero batch sizes, zero-node graphs)
//!   fail loudly instead of silently corrupting results.

use gnn::{GnnKind, GraphBatch};
use hls_gnn_core::approach::GnnPredictor;
use hls_gnn_core::builder::{ApproachKind, PredictorSpec};
use hls_gnn_core::dataset::{Dataset, DatasetBuilder, GraphSample};
use hls_gnn_core::encode::FeatureMode;
use hls_gnn_core::metrics::TargetNormalizer;
use hls_gnn_core::model::GraphRegressor;
use hls_gnn_core::predictor::Predictor;
use hls_gnn_core::runtime::{predict_batch_sharded, BatchConfig, ParallelConfig};
use hls_gnn_core::train::{train_regressor_with, TrainConfig};
use hls_gnn_core::{Error, TargetMetric};
use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(family: ProgramFamily, count: usize, seed: u64) -> Dataset {
    DatasetBuilder::new(family)
        .count(count)
        .seed(seed)
        .generator_config(SyntheticConfig::tiny(family))
        .build()
        .expect("dataset builds")
}

/// A fusion config that genuinely fuses the tiny test graphs (the default
/// node budget may otherwise fall back to one graph per tape).
fn wide_open(width: usize) -> BatchConfig {
    BatchConfig::with_width(width).with_node_budget(1_000_000)
}

fn assert_close(fused: f64, single: f64, context: &str) {
    let tolerance = 1e-5 * single.abs().max(1.0);
    assert!((fused - single).abs() <= tolerance, "{context}: fused {fused} vs per-graph {single}");
}

#[test]
fn fused_forward_matches_per_graph_forward_for_every_backbone_and_mode() {
    let dataset = corpus(ProgramFamily::StraightLine, 6, 11);
    let refs: Vec<&GraphSample> = dataset.samples.iter().collect();
    let config = TrainConfig::fast();
    for kind in GnnKind::ALL {
        for mode in [FeatureMode::Base, FeatureMode::ResourceValues, FeatureMode::ResourceTypes] {
            let model = GraphRegressor::new(kind, mode, &config);
            let mut rng = StdRng::seed_from_u64(0);
            let fused = model.forward_batch(&refs, None, false, &mut rng).value();
            assert_eq!(fused.shape(), (refs.len(), TargetMetric::COUNT));
            for (row, sample) in refs.iter().enumerate() {
                let single = model.forward(sample, None, false, &mut rng).value();
                for target in 0..TargetMetric::COUNT {
                    assert_close(
                        f64::from(fused.get(row, target)),
                        f64::from(single.get(0, target)),
                        &format!("{kind:?}/{mode:?} sample {row} target {target}"),
                    );
                }
            }
        }
    }
}

#[test]
fn fused_single_sample_forward_is_bit_identical_to_per_graph_forward() {
    let dataset = corpus(ProgramFamily::Control, 4, 5);
    let config = TrainConfig::fast();
    for kind in GnnKind::ALL {
        let model = GraphRegressor::new(kind, FeatureMode::Base, &config);
        let mut rng = StdRng::seed_from_u64(0);
        for sample in &dataset.samples {
            let fused = model.forward_batch(&[sample], None, false, &mut rng).value();
            let single = model.forward(sample, None, false, &mut rng).value();
            for target in 0..TargetMetric::COUNT {
                assert_eq!(
                    fused.get(0, target).to_bits(),
                    single.get(0, target).to_bits(),
                    "{kind:?}: fused B=1 forward diverged from the per-graph forward"
                );
            }
        }
    }
}

#[test]
fn batch_size_one_training_is_bit_identical_at_every_fusion_width() {
    let dataset = corpus(ProgramFamily::StraightLine, 8, 7);
    let mut config = TrainConfig::fast();
    config.batch_size = 1;
    config.epochs = 2;
    let normalizer = TargetNormalizer::fit(&dataset).expect("normalizer fits");

    let mut outputs: Vec<Vec<f32>> = Vec::new();
    for batch_config in [BatchConfig::legacy(), wide_open(8), BatchConfig::default_fused()] {
        let model = GraphRegressor::new(GnnKind::GraphSage, FeatureMode::Base, &config);
        let history = train_regressor_with(&batch_config, &model, &normalizer, &dataset, &config);
        assert_eq!(history.len(), config.epochs);
        let mut rng = StdRng::seed_from_u64(0);
        let output = model.forward(&dataset.samples[0], None, false, &mut rng).value();
        outputs.push(output.data().to_vec());
    }
    for trained in &outputs[1..] {
        for (a, b) in outputs[0].iter().zip(trained) {
            assert_eq!(a.to_bits(), b.to_bits(), "batch_size = 1 must train identically");
        }
    }
}

#[test]
fn trained_predictions_agree_between_legacy_fused_and_sharded_paths() {
    let dataset = corpus(ProgramFamily::StraightLine, 14, 33);
    let split = dataset.split(0.7, 0.15, 1);
    let config = TrainConfig::fast();
    for approach in ApproachKind::ALL {
        let spec = PredictorSpec::new(approach, GnnKind::Rgcn);
        let mut predictor = GnnPredictor::new(spec, &config);
        predictor.fit(&split.train, &split.validation, &config).expect("training succeeds");

        let legacy = predictor.predict_batch_with(&split.test.samples, &BatchConfig::legacy());
        let fused = predictor.predict_batch_with(&split.test.samples, &wide_open(16));
        let sharded = predict_batch_sharded(
            &predictor,
            &split.test.samples,
            &ParallelConfig::with_workers(4),
        );
        assert_eq!(legacy.len(), split.test.len());
        assert_eq!(fused.len(), split.test.len());
        assert_eq!(sharded.len(), split.test.len());
        for (index, (l, f)) in legacy.iter().zip(&fused).enumerate() {
            let l = l.as_ref().expect("legacy prediction succeeds");
            let f = f.as_ref().expect("fused prediction succeeds");
            for target in 0..TargetMetric::COUNT {
                assert_close(
                    f[target],
                    l[target],
                    &format!("{}: sample {index} target {target}", spec.id()),
                );
            }
        }
        for (l, s) in legacy.iter().zip(&sharded) {
            let s = s.as_ref().expect("sharded prediction succeeds");
            let l = l.as_ref().expect("legacy prediction succeeds");
            for target in 0..TargetMetric::COUNT {
                assert_close(s[target], l[target], &format!("{}: sharded path", spec.id()));
            }
        }
    }
}

#[test]
fn empty_batches_and_zero_batch_sizes_fail_loudly() {
    let dataset = corpus(ProgramFamily::StraightLine, 14, 33);
    let split = dataset.split(0.7, 0.15, 1);
    let config = TrainConfig::fast();
    let mut predictor = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);

    // An untrained predictor reports per-sample errors; an empty batch is
    // simply an empty result, trained or not.
    assert!(predictor.predict_batch(&[]).is_empty());
    predictor.fit(&split.train, &split.validation, &config).expect("training succeeds");
    assert!(predictor.predict_batch(&[]).is_empty());
    assert!(predict_batch_sharded(&predictor, &[], &ParallelConfig::with_workers(4)).is_empty());

    // A zero batch size is a configuration error, not a silent clamp to 1.
    let mut broken = TrainConfig::fast();
    broken.batch_size = 0;
    assert!(matches!(broken.validate(), Err(Error::Config(_))));
    let mut fresh = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
    let result = fresh.fit(&split.train, &split.validation, &broken);
    assert!(matches!(result, Err(Error::Config(_))), "fit must reject batch_size = 0");
    assert!(!fresh.is_trained(), "a rejected config must leave the predictor untouched");
}

#[test]
fn graph_batch_fusion_respects_plan_and_registry_wide_inference_is_consistent() {
    // plan_chunks: deterministic, budget- and width-capped, covers all input.
    let batch = BatchConfig::default_fused().with_node_budget(100);
    let sizes = [40usize, 40, 40, 120, 10, 10, 10, 10, 10];
    let plan = batch.plan_chunks(&sizes, 4, 16);
    assert_eq!(plan.iter().sum::<usize>(), sizes.len());
    assert_eq!(plan, vec![2, 1, 1, 4, 1], "40+40 | 40 | 120 (over budget alone) | 4x10 | 10");

    // Fusing the planned chunks covers every node exactly once.
    let dataset = corpus(ProgramFamily::StraightLine, 5, 3);
    let structures: Vec<&gnn::GraphData> = dataset.samples.iter().map(|s| &s.structure).collect();
    let fused = GraphBatch::fuse(&structures);
    assert_eq!(fused.num_graphs(), structures.len());
    assert_eq!(fused.total_nodes(), structures.iter().map(|g| g.num_nodes).sum::<usize>());
    let offsets = fused.node_offsets();
    for (graph, window) in offsets.windows(2).enumerate() {
        assert_eq!(window[1] - window[0], structures[graph].num_nodes);
        for node in window[0]..window[1] {
            assert_eq!(fused.segments()[node], graph);
        }
    }
}
