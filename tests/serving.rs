//! Acceptance tests for the serving subsystem.
//!
//! The load-bearing guarantee: **served predictions are bit-identical to a
//! direct `predict_batch` call** on the same model and graphs — for worker
//! counts 1 and 4, with the prediction cache enabled and disabled, under
//! concurrent submission (arbitrary coalescing patterns), and over the HTTP
//! wire format. This holds because fused multi-graph inference is
//! bit-identical to per-sample inference (asserted exactly below), so *how*
//! requests happen to batch can never change *what* is predicted.

use std::collections::HashMap;

use hls_gnn::prelude::*;
use hls_gnn_core::encode::FeatureMode;
use hls_gnn_core::model::GraphRegressor;
use hls_gnn_serve::{
    sample_fingerprint, HttpClient, HttpServer, Outcome, PredictRequest, PredictResponse,
    ServeConfig, ServeError, ServiceHandle, SlowRequestsResponse, StatsResponse,
};
use hls_progen::synthetic::SyntheticConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(count: usize, seed: u64) -> Dataset {
    DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(count)
        .seed(seed)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
        .build()
        .expect("corpus builds")
}

fn trained(spec: &str, split: &Split) -> Box<dyn Predictor> {
    PredictorBuilder::parse(spec)
        .expect("spec parses")
        .config(TrainConfig::fast())
        .train(&split.train, &split.validation)
        .expect("training succeeds")
}

/// The foundation of the serving guarantee, asserted *exactly*: fusing
/// several graphs onto one tape produces bit-identical outputs to running
/// each graph on its own tape. (tests/batching.rs checks the same property
/// registry-wide with a tolerance; serving depends on exact equality, so a
/// regression here must fail loudly.)
#[test]
fn fused_multigraph_inference_is_bit_identical_to_per_sample_inference() {
    let dataset = corpus(6, 11);
    let refs: Vec<&GraphSample> = dataset.samples.iter().collect();
    let config = TrainConfig::fast();
    for kind in [GnnKind::Gcn, GnnKind::Rgcn, GnnKind::GraphSage, GnnKind::Pna] {
        for mode in [FeatureMode::Base, FeatureMode::ResourceValues, FeatureMode::ResourceTypes] {
            let model = GraphRegressor::new(kind, mode, &config);
            let mut rng = StdRng::seed_from_u64(0);
            let fused = model.forward_batch(&refs, None, false, &mut rng).value();
            for (row, sample) in refs.iter().enumerate() {
                let single = model.forward(sample, None, false, &mut rng).value();
                for target in 0..TargetMetric::COUNT {
                    assert_eq!(
                        fused.get(row, target).to_bits(),
                        single.get(0, target).to_bits(),
                        "{kind:?}/{mode:?}: fused row {row} target {target} is not bit-identical"
                    );
                }
            }
        }
    }
}

/// The acceptance scenario: for worker counts 1 and 4, cache off and on,
/// across a plain and a hierarchical model, concurrently served predictions
/// are bit-identical to direct `predict_batch`, and a second (cache-hit)
/// pass returns the same bits.
#[test]
fn served_predictions_are_bit_identical_to_direct_predict_batch() {
    let dataset = corpus(14, 33);
    let split = dataset.split(0.7, 0.15, 1);
    // Serve the whole corpus, not just the held-out split: 14 concurrent
    // requests give the coalescer real contention at width > 1.
    let samples = dataset.samples.clone();

    for spec in ["base/gcn", "hier/gcn"] {
        let predictor = trained(spec, &split);
        let direct: Vec<[f64; 4]> = predictor
            .predict_batch(&samples)
            .into_iter()
            .map(|result| result.expect("direct prediction succeeds"))
            .collect();
        let snapshot = predictor.snapshot().expect("snapshot exports");

        for workers in [1usize, 4] {
            for cache_capacity in [0usize, 128] {
                let config = ServeConfig {
                    workers,
                    cache_capacity,
                    queue_bound: 64,
                    ..ServeConfig::default()
                };
                let service =
                    ServiceHandle::start(snapshot.clone(), &config).expect("service starts");

                // Concurrent submission from four frontend threads, so the
                // coalescer sees real contention and arbitrary batch shapes.
                let mut joins = Vec::new();
                for (index, sample) in samples.iter().cloned().enumerate() {
                    let service = service.clone();
                    joins.push(std::thread::spawn(move || {
                        (index, service.predict_sample(sample).expect("served"))
                    }));
                }
                let mut first_pass = vec![None; samples.len()];
                for join in joins {
                    let (index, served) = join.join().expect("client thread");
                    assert!(!served.cached, "first pass cannot hit the cache");
                    first_pass[index] = Some(served);
                }
                for (index, served) in first_pass.iter().enumerate() {
                    let served = served.as_ref().expect("every sample served");
                    assert_eq!(
                        served.prediction, direct[index],
                        "{spec} workers={workers} cache={cache_capacity}: served sample {index} \
                         is not bit-identical to direct predict_batch"
                    );
                }

                // Second pass: with the cache on, every request must hit and
                // return the same bits; with it off, everything recomputes —
                // to the same bits.
                for (index, sample) in samples.iter().cloned().enumerate() {
                    let served = service.predict_sample(sample).expect("served again");
                    assert_eq!(served.cached, cache_capacity > 0);
                    assert_eq!(
                        served.prediction, direct[index],
                        "{spec}: cache-hit and cache-miss predictions must be bit-identical"
                    );
                }

                let stats = service.stats();
                assert_eq!(stats.requests, 2 * samples.len() as u64);
                assert_eq!(stats.served, 2 * samples.len() as u64);
                assert_eq!(stats.shed, 0);
                assert_eq!(stats.errors, 0);
                if cache_capacity > 0 {
                    assert_eq!(stats.cache.hits, samples.len() as u64);
                    assert_eq!(stats.cache.entries, samples.len());
                } else {
                    assert_eq!(stats.cache.hits, 0);
                    assert_eq!(stats.cache.capacity, 0);
                }
                assert_eq!(stats.workers, workers);
                assert!(stats.latency.window > 0);

                service.shutdown();
                let refused = service.predict_sample(samples[0].clone());
                assert_eq!(refused.unwrap_err(), ServeError::ShuttingDown);
            }
        }
    }
}

/// Satellite: canonical content hashing. Equal samples fingerprint equal;
/// perturbing any model input — an edge, a relation, a node feature, an
/// auxiliary resource value, a resource-type flag — changes the fingerprint;
/// the name and ground-truth labels (never model inputs) do not.
#[test]
fn sample_fingerprints_are_canonical_and_perturbation_sensitive() {
    let dataset = corpus(2, 21);
    let sample = dataset.samples[0].clone();
    assert_eq!(sample_fingerprint(&sample), sample_fingerprint(&sample.clone()));
    assert_ne!(
        sample_fingerprint(&dataset.samples[0]),
        sample_fingerprint(&dataset.samples[1]),
        "different programs must fingerprint differently"
    );

    let base = sample_fingerprint(&sample);
    let mut renamed = sample.clone();
    renamed.name = "other-name".to_owned();
    assert_eq!(sample_fingerprint(&renamed), base, "the name is not a model input");
    let mut relabelled = sample.clone();
    relabelled.targets[0] += 1.0;
    relabelled.hls_estimate[1] += 1.0;
    assert_eq!(sample_fingerprint(&relabelled), base, "labels are not model inputs");

    let mut edge = sample.clone();
    edge.structure.edge_dst[0] = (edge.structure.edge_dst[0] + 1) % edge.structure.num_nodes;
    let mut relation = sample.clone();
    relation.structure.edge_relation[0] =
        (relation.structure.edge_relation[0] + 1) % relation.structure.num_relations;
    let mut feature = sample.clone();
    feature.node_features[0].bitwidth = feature.node_features[0].bitwidth.wrapping_add(1);
    let mut opcode = sample.clone();
    opcode.node_features[0].opcode = (opcode.node_features[0].opcode + 1) % 2;
    let mut aux = sample.clone();
    aux.node_aux_resources[0][1] += 1.0;
    let mut types = sample.clone();
    types.node_resource_types[0][2] = 1.0 - types.node_resource_types[0][2];
    for (what, perturbed) in [
        ("edge endpoint", &edge),
        ("relation id", &relation),
        ("bitwidth feature", &feature),
        ("opcode feature", &opcode),
        ("aux resource", &aux),
        ("resource type", &types),
    ] {
        assert_ne!(
            sample_fingerprint(perturbed),
            base,
            "perturbing the {what} must change the fingerprint"
        );
    }
}

/// Reads the value of one exposed series from a Prometheus-style text
/// exposition: the line starting `name{` (any label set) or bare `name `.
fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    exposition
        .lines()
        .find(|line| {
            line.strip_prefix(name)
                .is_some_and(|rest| rest.starts_with('{') || rest.starts_with(' '))
        })
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|value| value.parse().ok())
}

/// Satellite: `/metrics` and `/stats` read the same registry, so every
/// counter and gauge the JSON document reports must appear in the text
/// exposition with the same value — including cache evictions (forced here
/// with an undersized cache) and the queue-depth/cache gauges.
#[test]
fn metrics_exposition_agrees_with_the_stats_document() {
    let dataset = corpus(10, 17);
    let split = dataset.split(0.7, 0.15, 1);
    let predictor = trained("base/gcn", &split);
    // Capacity 4 against 10 distinct requests forces LRU evictions.
    let config =
        ServeConfig { workers: 2, cache_capacity: 4, queue_bound: 32, ..ServeConfig::default() };
    let service =
        ServiceHandle::start(predictor.snapshot().expect("snapshot"), &config).expect("starts");
    let server = HttpServer::bind(service.clone(), "127.0.0.1:0").expect("binds");
    let mut client = HttpClient::new(server.local_addr());

    for sample in &dataset.samples {
        let body = serde_json::to_string(&PredictRequest::for_sample(sample)).expect("request");
        assert_eq!(client.post("/predict", &body).expect("predict").status, 200);
    }
    // A second pass over the first few samples: they were evicted by the
    // later ones (LRU, capacity 4 < 10), so these re-miss and re-evict.
    for sample in &dataset.samples[..3] {
        let body = serde_json::to_string(&PredictRequest::for_sample(sample)).expect("request");
        assert_eq!(client.post("/predict", &body).expect("predict").status, 200);
    }

    let stats: StatsResponse =
        serde_json::from_str(&client.get("/stats").expect("stats").body).expect("stats parse");
    let metrics = client.get("/metrics").expect("metrics").body;

    assert!(stats.cache.evictions > 0, "an undersized cache must evict");
    for (name, expected) in [
        ("hlsgnn_serve_requests_total", stats.requests as f64),
        ("hlsgnn_serve_served_total", stats.served as f64),
        ("hlsgnn_serve_shed_total", stats.shed as f64),
        ("hlsgnn_serve_errors_total", stats.errors as f64),
        ("hlsgnn_serve_cache_hits_total", stats.cache.hits as f64),
        ("hlsgnn_serve_cache_misses_total", stats.cache.misses as f64),
        ("hlsgnn_serve_cache_evictions_total", stats.cache.evictions as f64),
        ("hlsgnn_serve_latency_us_count", stats.latency.window as f64),
        ("hlsgnn_serve_queue_depth", stats.queue_depth as f64),
        ("hlsgnn_serve_queue_bound", stats.queue_bound as f64),
        ("hlsgnn_serve_cache_entries", stats.cache.entries as f64),
        ("hlsgnn_serve_cache_capacity", stats.cache.capacity as f64),
        ("hlsgnn_serve_workers", stats.workers as f64),
    ] {
        assert_eq!(
            metric_value(&metrics, name),
            Some(expected),
            "`{name}` must match /stats; exposition:\n{metrics}"
        );
    }
    // The exposition is typed and label-scoped to the served model.
    assert!(metrics.contains("# TYPE hlsgnn_serve_latency_us histogram"));
    assert!(metrics.contains("hlsgnn_serve_requests_total{model=\"GCN\"}"));
    // The process-global registry rides along: this test's in-process
    // training recorded epochs there.
    assert!(metrics.contains("hlsgnn_train_epochs_total"));

    service.shutdown();
    server.shutdown();
}

/// Admission control: with one deliberately slowed worker and a queue bound
/// of 1, concurrent requests beyond the bound are shed with
/// [`ServeError::Overloaded`] and counted in the stats.
#[test]
fn a_full_queue_sheds_requests_with_overloaded() {
    let dataset = corpus(6, 5);
    let split = dataset.split(0.7, 0.15, 1);
    let predictor = trained("base/gcn", &split);
    let config = ServeConfig {
        workers: 1,
        cache_capacity: 0,
        queue_bound: 1,
        worker_delay: std::time::Duration::from_millis(400),
        ..ServeConfig::default()
    };
    let service =
        ServiceHandle::start(predictor.snapshot().expect("snapshot"), &config).expect("starts");

    // Occupy the worker (it sleeps 400 ms per micro-batch), then race three
    // more submissions at the bound-1 queue: at most one can be admitted
    // while the worker is busy (a racer thread would have to be delayed by
    // hundreds of milliseconds for the queue to empty under it).
    let occupant = {
        let service = service.clone();
        let sample = split.test.samples[0].clone();
        std::thread::spawn(move || service.predict_sample(sample))
    };
    std::thread::sleep(std::time::Duration::from_millis(100));
    let racers: Vec<_> = (0..3)
        .map(|index| {
            let service = service.clone();
            let sample = split.train.samples[index].clone();
            std::thread::spawn(move || service.predict_sample(sample))
        })
        .collect();
    let outcomes: Vec<_> = racers.into_iter().map(|j| j.join().expect("racer")).collect();
    let shed = outcomes
        .iter()
        .filter(|outcome| matches!(outcome, Err(ServeError::Overloaded { queue_bound: 1 })))
        .count();
    assert!(
        (1..=3).contains(&shed),
        "with a bound-1 queue and a busy worker, racing 3 requests must shed 1..=3, shed {shed}"
    );
    assert!(occupant.join().expect("occupant").is_ok());
    for served in outcomes.into_iter().flatten() {
        assert!(served.prediction.iter().all(|v| v.is_finite()));
    }
    let stats = service.stats();
    assert_eq!(stats.shed, shed as u64);
    // `requests` counts admissions only; shed requests are not in it.
    assert_eq!(stats.requests, 4 - shed as u64);
    service.shutdown();
}

/// Request-scoped tracing: concurrent coalesced requests each get a unique
/// monotonic id that round-trips from admission through the access-log
/// record to the HTTP response and `GET /debug/slow`; each record decomposes
/// end-to-end latency into queue wait (admission to worker pick-up) plus
/// service time (pick-up to reply, including the artificial delay).
#[test]
fn request_ids_are_unique_and_latency_decomposes_into_wait_plus_service() {
    let dataset = corpus(8, 29);
    let split = dataset.split(0.7, 0.15, 1);
    let predictor = trained("base/gcn", &split);
    // One deliberately slowed worker, no cache, slow threshold 0: every
    // request queues behind the first, waits measurably, and lands in the
    // slow ring.
    let config = ServeConfig {
        workers: 1,
        cache_capacity: 0,
        queue_bound: 64,
        coalesce_width: 4,
        worker_delay: std::time::Duration::from_millis(150),
        slow_threshold_us: 0,
        access_log: false,
    };
    let service =
        ServiceHandle::start(predictor.snapshot().expect("snapshot"), &config).expect("starts");

    // Occupy the worker, then race five more submissions while it sleeps:
    // they pile up in the queue and the next drain must coalesce them.
    let occupant = {
        let service = service.clone();
        let sample = dataset.samples[0].clone();
        std::thread::spawn(move || service.predict_sample(sample).expect("served"))
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    let racers: Vec<_> = dataset.samples[1..6]
        .iter()
        .cloned()
        .map(|sample| {
            let service = service.clone();
            std::thread::spawn(move || service.predict_sample(sample).expect("served"))
        })
        .collect();
    let mut served = vec![occupant.join().expect("occupant")];
    served.extend(racers.into_iter().map(|join| join.join().expect("racer")));

    // Ids are assigned at admission: six requests, ids exactly 1..=6.
    let mut ids: Vec<u64> = served.iter().map(|s| s.request_id).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=6).collect::<Vec<u64>>(), "ids must be unique and monotonic from 1");

    // Every request resolved into one access-log record with the same ids.
    let records = service.recent_requests();
    assert_eq!(records.len(), 6);
    let mut record_ids: Vec<u64> = records.iter().map(|r| r.id).collect();
    record_ids.sort_unstable();
    assert_eq!(record_ids, ids, "access-log records must carry the served ids");
    assert!(
        records.iter().any(|r| r.coalesced >= 2),
        "requests racing a busy worker must coalesce"
    );
    for record in &records {
        assert_eq!(record.outcome, Outcome::Served);
        assert!(record.batch_index < record.coalesced, "batch position within the micro-batch");
        // The artificial delay is service time, so every record's service
        // side is at least the 150 ms sleep.
        assert!(
            record.service_us >= 150_000,
            "service_us {} < the worker delay",
            record.service_us
        );
        // Queue wait + service time is measured microseconds apart from the
        // end-to-end latency; they must agree to within scheduling noise.
        let decomposed = record.queue_wait_us + record.service_us;
        assert!(
            decomposed.abs_diff(record.latency_us) <= 5_000,
            "queue_wait {} + service {} must approximate latency {}",
            record.queue_wait_us,
            record.service_us,
            record.latency_us
        );
    }
    assert!(
        records.iter().any(|r| r.queue_wait_us >= 50_000),
        "requests admitted behind the sleeping worker must wait measurably"
    );

    // Threshold 0 captures everything: the slow ring holds the same six.
    let slow = service.slow_requests();
    assert_eq!(slow.threshold_us, 0);
    assert_eq!(slow.total, 6);
    assert_eq!(slow.requests.len(), 6);

    // Over the wire: the response echoes the next id and /debug/slow
    // round-trips it.
    let server = HttpServer::bind(service.clone(), "127.0.0.1:0").expect("binds");
    let mut client = HttpClient::new(server.local_addr());
    let body =
        serde_json::to_string(&PredictRequest::for_sample(&dataset.samples[6])).expect("request");
    let reply = client.post("/predict", &body).expect("predict");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let parsed: PredictResponse = serde_json::from_str(&reply.body).expect("response parses");
    assert_eq!(parsed.request_id, 7, "the wire response must echo the admission id");
    let slow_reply = client.get("/debug/slow").expect("debug/slow");
    assert_eq!(slow_reply.status, 200);
    let doc: SlowRequestsResponse =
        serde_json::from_str(&slow_reply.body).expect("slow document parses");
    assert!(
        doc.requests.iter().any(|r| r.id == 7 && r.outcome == "served"),
        "/debug/slow must contain the request served over the wire: {}",
        slow_reply.body
    );
    assert_eq!(client.post("/debug/slow", "").expect("reply").status, 405);

    let stats: StatsResponse =
        serde_json::from_str(&client.get("/stats").expect("stats").body).expect("stats parse");
    assert_eq!(stats.slow, 7, "every request crossed the 0 µs slow threshold");

    server.shutdown();
    service.shutdown();
}

/// The HTTP frontend end to end: predictions over the wire are bit-identical
/// to direct `predict_batch` (the JSON float encoding is
/// shortest-round-trip), the error paths map to the right statuses, /stats
/// parses, and /shutdown stops the accept loop.
#[test]
fn http_frontend_serves_bit_identical_predictions_and_typed_errors() {
    let dataset = corpus(10, 13);
    let split = dataset.split(0.7, 0.15, 1);
    let predictor = trained("base/gcn", &split);
    let samples = split.test.samples.clone();
    let direct: HashMap<String, [f64; 4]> = samples
        .iter()
        .zip(predictor.predict_batch(&samples))
        .map(|(sample, result)| (sample.name.clone(), result.expect("direct")))
        .collect();

    let config = ServeConfig { workers: 2, cache_capacity: 64, ..ServeConfig::default() };
    let service =
        ServiceHandle::start(predictor.snapshot().expect("snapshot"), &config).expect("starts");
    let server = HttpServer::bind(service.clone(), "127.0.0.1:0").expect("binds");
    let mut client = HttpClient::new(server.local_addr());

    // Liveness.
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"));

    // Graph predictions: bit-identical over the wire, cached on repeat.
    for sample in &samples {
        let body = serde_json::to_string(&PredictRequest::for_sample(sample)).expect("serialises");
        let reply = client.post("/predict", &body).expect("predict");
        assert_eq!(reply.status, 200, "body: {}", reply.body);
        let parsed: PredictResponse = serde_json::from_str(&reply.body).expect("response parses");
        assert_eq!(parsed.name, sample.name);
        assert!(!parsed.cached);
        assert_eq!(
            parsed.prediction, direct[&sample.name],
            "wire prediction for {} is not bit-identical",
            sample.name
        );
        let again = client.post("/predict", &body).expect("predict again");
        let parsed_again: PredictResponse =
            serde_json::from_str(&again.body).expect("response parses");
        assert!(parsed_again.cached, "repeat request must hit the cache");
        assert_eq!(parsed_again.prediction, direct[&sample.name]);
    }

    // A named built-in kernel resolves, predicts, and is memoised.
    let kernel = hls_progen::all_kernels().into_iter().next().expect("kernels exist");
    let body = serde_json::to_string(&PredictRequest::for_kernel(&kernel.name)).expect("request");
    let reply = client.post("/predict", &body).expect("kernel predict");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let parsed: PredictResponse = serde_json::from_str(&reply.body).expect("parses");
    assert_eq!(parsed.name, kernel.name);
    assert!(parsed.prediction.iter().all(|v| v.is_finite()));

    // Error mapping.
    assert_eq!(client.post("/predict", "{ not json").expect("reply").status, 400);
    assert_eq!(client.post("/predict", "{}").expect("reply").status, 400);
    let both = format!(
        "{{\"kernel\": \"{}\", \"graph\": {}}}",
        kernel.name,
        serde_json::to_string(&hls_gnn_core::export::ExportedGraph::from(&samples[0]))
            .expect("graph serialises")
    );
    assert_eq!(client.post("/predict", &both).expect("reply").status, 400);
    let unknown =
        serde_json::to_string(&PredictRequest::for_kernel("no_such_kernel")).expect("request");
    let reply = client.post("/predict", &unknown).expect("reply");
    assert_eq!(reply.status, 400);
    assert!(reply.body.contains("unknown kernel"));
    assert_eq!(client.get("/no-such-route").expect("reply").status, 404);
    assert_eq!(client.get("/predict").expect("reply").status, 405);

    // Stats document.
    let stats_reply = client.get("/stats").expect("stats");
    assert_eq!(stats_reply.status, 200);
    let stats: StatsResponse = serde_json::from_str(&stats_reply.body).expect("stats parse");
    assert_eq!(stats.model, "GCN");
    assert_eq!(stats.spec, "base/gcn");
    assert_eq!(stats.shed, 0);
    assert!(stats.served >= 2 * samples.len() as u64);
    assert!(stats.cache.hits >= samples.len() as u64);
    assert!(stats.latency.p50_us <= stats.latency.p99_us);
    assert!(stats.latency.p99_us <= stats.latency.max_us);

    // Graceful shutdown: /shutdown stops the accept loop; wait() returns.
    let reply = client.post("/shutdown", "").expect("shutdown");
    assert_eq!(reply.status, 200);
    server.wait();
    service.shutdown();
}
