//! Determinism guarantees of the parallel runtime — identical metrics at any
//! worker count — plus regression tests for the metric-correctness fixes
//! (NaN on empty inputs, normalizer input validation, split-rounding
//! redistribution).

use gnn::GnnKind;
use hls_gnn_core::approach::{seed_averaged_mape_with, GnnPredictor};
use hls_gnn_core::builder::PredictorSpec;
use hls_gnn_core::dataset::{Dataset, DatasetBuilder};
use hls_gnn_core::experiments::{run_table2, ExperimentConfig};
use hls_gnn_core::metrics::TargetNormalizer;
use hls_gnn_core::predictor::Predictor;
use hls_gnn_core::runtime::{predict_batch_sharded, ParallelConfig};
use hls_gnn_core::train::TrainConfig;
use hls_gnn_core::{accuracy, mape, rmse, Error, TargetMetric};
use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

fn tiny_split() -> (Dataset, Dataset, Dataset) {
    let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(14)
        .seed(33)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
        .build()
        .expect("dataset builds");
    let split = dataset.split(0.7, 0.15, 1);
    (split.train, split.validation, split.test)
}

fn assert_bit_identical(serial: &[f64], parallel: &[f64], what: &str) {
    for (index, (a, b)) in serial.iter().zip(parallel).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: target {index} differs between worker counts ({a} vs {b})"
        );
    }
}

#[test]
fn seed_averaged_mape_is_bit_identical_across_worker_counts() {
    let (train, validation, test) = tiny_split();
    let mut config = TrainConfig::fast();
    config.epochs = 2;
    let protocol = |parallel: &ParallelConfig| {
        seed_averaged_mape_with(
            parallel,
            |_seed| GnnPredictor::off_the_shelf(GnnKind::Gcn, &config),
            &train,
            &validation,
            &test,
            &config,
            5,
            3,
        )
        .expect("the paper protocol runs")
    };
    let serial = protocol(&ParallelConfig::serial());
    for workers in [2, 4] {
        let parallel = protocol(&ParallelConfig::with_workers(workers));
        assert_bit_identical(&serial, &parallel, &format!("seed_averaged_mape x{workers}"));
    }
}

#[test]
fn table2_sweep_is_bit_identical_across_worker_counts() {
    let mut config = ExperimentConfig::fast();
    config.dfg_programs = 12;
    config.cdfg_programs = 12;
    config.train.epochs = 2;
    config.train.hidden_dim = 8;
    config.train.embed_dim = 3;
    let config = config.with_models(vec![GnnKind::Gcn, GnnKind::Rgcn, GnnKind::GraphSage]);

    let serial = run_table2(&config.clone().with_parallel(ParallelConfig::serial()))
        .expect("serial table 2 runs");
    let parallel = run_table2(&config.with_parallel(ParallelConfig::with_workers(4)))
        .expect("parallel table 2 runs");

    assert_eq!(serial.rows.len(), parallel.rows.len());
    for (serial_row, parallel_row) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(serial_row.model, parallel_row.model, "row order must be preserved");
        assert_bit_identical(&serial_row.dfg, &parallel_row.dfg, &serial_row.model);
        assert_bit_identical(&serial_row.cdfg, &parallel_row.cdfg, &serial_row.model);
    }
}

#[test]
fn sharded_batch_prediction_matches_the_serial_path_exactly() {
    let (train, validation, test) = tiny_split();
    let config = TrainConfig::fast();
    let mut predictor = GnnPredictor::hierarchical(GnnKind::GraphSage, &config);
    predictor.fit(&train, &validation, &config).expect("fit");

    let serial = predictor.predict_batch(&test.samples);
    for workers in [2, 4, 16] {
        let sharded = predict_batch_sharded(
            &predictor,
            &test.samples,
            &ParallelConfig::with_workers(workers),
        );
        assert_eq!(serial.len(), sharded.len());
        for (index, (a, b)) in serial.iter().zip(&sharded).enumerate() {
            let (a, b) =
                (a.as_ref().expect("serial predicts"), b.as_ref().expect("shard predicts"));
            assert_bit_identical(a, b, &format!("sample {index} x{workers}"));
        }
    }

    // An untrained predictor cannot be snapshotted; the sharded path falls
    // back to the serial one and reports the per-sample errors unchanged.
    let untrained = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
    let fallback =
        predict_batch_sharded(&untrained, &test.samples, &ParallelConfig::with_workers(4));
    assert_eq!(fallback.len(), test.len());
    assert!(fallback.iter().all(|r| matches!(r, Err(Error::NotTrained(_)))));
}

#[test]
fn empty_dataset_metrics_report_nan_not_perfection() {
    // The free-standing metrics.
    assert!(mape(&[], &[]).is_nan());
    assert!(rmse(&[], &[]).is_nan());
    assert!(accuracy(&[], &[]).is_nan());

    // Predictor::evaluate on an empty dataset: NaN per target, not 0%.
    let (train, validation, _) = tiny_split();
    let config = TrainConfig::fast();
    let mut predictor = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
    predictor.fit(&train, &validation, &config).expect("fit");
    let empty = predictor.evaluate(&Dataset::default());
    assert!(empty.iter().all(|m| m.is_nan()), "empty dataset must not score 0: {empty:?}");
}

#[test]
fn normalizer_rejects_empty_and_negative_training_sets() {
    assert!(matches!(TargetNormalizer::fit(&Dataset::default()), Err(Error::DatasetTooSmall(_))));

    let mut dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(4)
        .seed(5)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
        .build()
        .expect("dataset builds");
    dataset.samples[1].targets[TargetMetric::Lut.index()] = -10.0;
    assert!(matches!(TargetNormalizer::fit(&dataset), Err(Error::Config(_))));
    // A poisoned corpus is rejected end to end, not absorbed into training.
    let config = TrainConfig::fast();
    let mut predictor = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
    assert!(matches!(predictor.fit(&dataset, &Dataset::default(), &config), Err(Error::Config(_))));

    // A rejected *refit* must leave an already-trained predictor fully
    // intact — validation runs before any stage is mutated.
    let (train, validation, test) = tiny_split();
    let mut trained = GnnPredictor::hierarchical(GnnKind::Gcn, &config);
    trained.fit(&train, &validation, &config).expect("fit on clean data");
    let before = trained.predict(&test.samples[0]).expect("predict");
    assert!(matches!(trained.fit(&dataset, &validation, &config), Err(Error::Config(_))));
    assert!(trained.is_trained());
    assert_eq!(before, trained.predict(&test.samples[0]).expect("predict after failed refit"));
}

#[test]
fn split_guarantees_a_nonzero_test_set_for_nonzero_test_fractions() {
    let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(5)
        .seed(8)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
        .build()
        .expect("dataset builds");
    // 0.7/0.2 over 5 samples used to round to 4 + 1, leaving test empty.
    let split = dataset.split(0.7, 0.2, 11);
    assert_eq!(split.train.len() + split.validation.len() + split.test.len(), 5);
    assert!(!split.test.is_empty());

    for (train_fraction, validation_fraction) in [(1.5, 0.0), (-0.1, 0.5), (0.9, 0.2)] {
        let result =
            std::panic::catch_unwind(|| dataset.split(train_fraction, validation_fraction, 0));
        assert!(result.is_err(), "split({train_fraction}, {validation_fraction}) must be rejected");
    }
}

#[test]
fn snapshots_cross_threads_and_rehydrate_exactly() {
    let (train, validation, test) = tiny_split();
    let config = TrainConfig::fast();
    let spec: PredictorSpec = "hier/sage".parse().expect("spec parses");
    let mut predictor = spec.build(&config);
    predictor.fit(&train, &validation, &config).expect("fit");
    let expected = predictor.predict(&test.samples[0]).expect("predict");

    // The snapshot is plain `Send + Sync` data: move it to another thread,
    // rehydrate there, and get bit-identical predictions back.
    let snapshot = predictor.snapshot().expect("trained predictor snapshots");
    let sample = test.samples[0].clone();
    let from_worker = std::thread::spawn(move || {
        let rehydrated = GnnPredictor::from_saved(&snapshot).expect("snapshot rehydrates");
        rehydrated.predict(&sample).expect("rehydrated predict")
    })
    .join()
    .expect("worker thread");
    assert_eq!(expected, from_worker);
}
