//! Integration tests for the unified prediction-engine API: spec parsing,
//! builder construction, batched inference, and model persistence — including
//! the full registry round trip (train → save → load → predict_batch matches
//! the original exactly) for every approach × backbone combination.

use hls_gnn::prelude::*;

fn tiny_split() -> (Dataset, Dataset, Dataset) {
    use hls_progen::synthetic::SyntheticConfig;
    let dataset = DatasetBuilder::new(ProgramFamily::Control)
        .count(10)
        .seed(77)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::Control))
        .build()
        .expect("corpus builds");
    let split = dataset.split(0.7, 0.15, 7);
    (split.train, split.validation, split.test)
}

fn one_epoch_config() -> TrainConfig {
    let mut config = TrainConfig::fast();
    config.epochs = 1;
    config.hidden_dim = 8;
    config.embed_dim = 3;
    config
}

/// The acceptance scenario: every spec in the registry can be parsed from its
/// string id, trained, saved to JSON, reloaded in a "fresh process"
/// (`load_predictor` only sees the JSON), and the reloaded model's
/// `predict_batch` output matches the original's per-sample `predict` output
/// exactly.
#[test]
fn every_spec_round_trips_through_json_with_identical_predictions() {
    let (train, validation, test) = tiny_split();
    let config = one_epoch_config();
    for spec in PredictorSpec::all() {
        // Build through the string id, as a config-driven server would.
        let parsed: PredictorSpec = spec.id().parse().expect("registry id parses");
        assert_eq!(parsed, spec);
        let mut predictor = parsed.build(&config);
        assert_eq!(predictor.name(), spec.name());
        predictor.fit(&train, &validation, &config).expect("training succeeds");

        let snapshot = predictor.save_json().expect("trained model serialises");
        let reloaded = load_predictor(&snapshot).expect("snapshot reloads");
        assert_eq!(reloaded.spec(), spec);

        let originals: Vec<[f64; 4]> =
            test.samples.iter().map(|s| predictor.predict(s).expect("predicts")).collect();
        let batched = reloaded.predict_batch(&test.samples);
        for (index, (original, reloaded_result)) in originals.iter().zip(batched).enumerate() {
            let reloaded_values = reloaded_result.expect("reloaded model predicts");
            assert_eq!(
                *original,
                reloaded_values,
                "{}: sample {index} diverged after the save/load round trip",
                spec.id()
            );
        }
    }
}

/// `predict` and `predict_batch` agree element-for-element for all three
/// approaches (single-sample prediction is defined as a one-element batch).
#[test]
fn predict_equals_predict_batch_for_all_approaches() {
    let (train, validation, test) = tiny_split();
    let config = one_epoch_config();
    for approach in ApproachKind::ALL {
        let spec = PredictorSpec::new(approach, GnnKind::Rgcn);
        let mut predictor = spec.build(&config);
        predictor.fit(&train, &validation, &config).expect("training succeeds");
        let batched = predictor.predict_batch(&test.samples);
        assert_eq!(batched.len(), test.len());
        for (sample, batched_result) in test.samples.iter().zip(batched) {
            assert_eq!(
                predictor.predict(sample).expect("single predict"),
                batched_result.expect("batched predict"),
                "{}: predict and predict_batch disagree",
                spec.id()
            );
        }
    }
}

#[test]
fn spec_strings_accept_the_documented_forms_and_reject_garbage() {
    // Canonical ids.
    assert_eq!(
        "hier/rgcn".parse::<PredictorSpec>().unwrap(),
        PredictorSpec::new(ApproachKind::Hierarchical, GnnKind::Rgcn)
    );
    assert_eq!(
        "base/gcn".parse::<PredictorSpec>().unwrap(),
        PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Gcn)
    );
    assert_eq!(
        "rich/sage".parse::<PredictorSpec>().unwrap(),
        PredictorSpec::new(ApproachKind::KnowledgeRich, GnnKind::GraphSage)
    );
    // Long-form aliases and paper notation.
    assert_eq!(
        "hierarchical/GraphSage".parse::<PredictorSpec>().unwrap(),
        PredictorSpec::new(ApproachKind::Hierarchical, GnnKind::GraphSage)
    );
    assert_eq!(
        "RGCN-I".parse::<PredictorSpec>().unwrap(),
        PredictorSpec::new(ApproachKind::Hierarchical, GnnKind::Rgcn)
    );
    assert_eq!(
        "PNA".parse::<PredictorSpec>().unwrap(),
        PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Pna)
    );
    // Rejections keep the error informative.
    for bad in ["", "unknown/rgcn", "hier/unknown", "definitely-not-a-model", "hier/"] {
        let error = bad.parse::<PredictorSpec>().unwrap_err();
        assert!(matches!(error, Error::Config(_)), "`{bad}` must fail with a config error");
    }
}

/// Malformed or truncated snapshots are rejected instead of producing a
/// half-initialised predictor.
#[test]
fn corrupt_snapshots_are_rejected() {
    let (train, validation, _) = tiny_split();
    let config = one_epoch_config();
    let mut predictor = PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Gcn).build(&config);
    predictor.fit(&train, &validation, &config).expect("training succeeds");
    let snapshot = predictor.save_json().expect("serialises");

    assert!(load_predictor("{ not json").is_err());
    assert!(load_predictor("{}").is_err());
    // Truncating the weight list breaks the architecture check.
    let truncated = snapshot.replace("\"regressor\": [", "\"regressor\": [\n    ");
    let truncated = {
        // Drop one tensor: replace the regressor list with an empty one.
        let start = truncated.find("\"regressor\"").expect("field present");
        let mut clipped = truncated[..start].to_owned();
        clipped.push_str("\"regressor\": [],\n  \"classifier\": null\n}");
        clipped
    };
    assert!(load_predictor(&truncated).is_err());
}

/// A trained predictor serialises the config it was trained with, so the
/// snapshot is self-describing even when the caller's config has changed.
#[test]
fn snapshots_record_the_training_config() {
    let (train, validation, test) = tiny_split();
    let mut config = one_epoch_config();
    config.hidden_dim = 12; // distinctive
    let mut predictor = PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Gcn).build(&config);
    predictor.fit(&train, &validation, &config).expect("training succeeds");
    let snapshot = predictor.save_json().expect("serialises");
    assert!(snapshot.contains("\"hidden_dim\": 12"));
    let reloaded = load_predictor(&snapshot).expect("reloads");
    assert_eq!(
        reloaded.predict(&test.samples[0]).expect("predicts"),
        predictor.predict(&test.samples[0]).expect("predicts"),
    );
}

/// Satellite regression: feeding `load_predictor` truncated or mangled bytes
/// of a *real* saved model must never panic — every failure surfaces as a
/// typed error ([`Error::Parse`] at the JSON/schema stage, [`Error::Config`]
/// when a value-level mutation survives parsing but breaks the architecture
/// check).
#[test]
fn mangled_snapshots_fail_with_typed_errors_never_panics() {
    let (train, validation, _) = tiny_split();
    let config = one_epoch_config();
    let mut predictor = PredictorSpec::new(ApproachKind::Hierarchical, GnnKind::Gcn).build(&config);
    predictor.fit(&train, &validation, &config).expect("training succeeds");
    let snapshot = predictor.save_json().expect("serialises");

    // Truncations at a spread of offsets, including inside numbers, strings
    // and the header.
    let step = (snapshot.len() / 97).max(1);
    for cut in (0..snapshot.len()).step_by(step) {
        // `get` sidesteps char-boundary panics (the JSON is ASCII today, but
        // this test must not depend on that).
        let Some(truncated) = snapshot.get(..cut) else { continue };
        match load_predictor(truncated) {
            Err(Error::Parse(_) | Error::Config(_)) => {}
            Err(other) => panic!("truncation at {cut} produced unexpected error {other:?}"),
            Ok(_) => panic!("truncation at {cut} must not produce a predictor"),
        }
    }

    // Structural mangling: clobber a window of bytes with junk at several
    // positions.
    for start in (0..snapshot.len().saturating_sub(8)).step_by(snapshot.len() / 23 + 1) {
        let mut mangled = snapshot.clone().into_bytes();
        for byte in &mut mangled[start..start + 8] {
            *byte = b'!';
        }
        let mangled = String::from_utf8_lossy(&mangled).into_owned();
        assert!(
            load_predictor(&mangled).is_err(),
            "mangling at {start} must not produce a predictor"
        );
    }

    // The original still loads after all that (no global state was harmed).
    assert!(load_predictor(&snapshot).is_ok());
}

/// Satellite: version-less legacy snapshots load as format version 1;
/// snapshots declaring a newer version are refused with a typed parse error.
#[test]
fn snapshot_versioning_accepts_legacy_and_rejects_future_files() {
    let (train, validation, test) = tiny_split();
    let config = one_epoch_config();
    let mut predictor = PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Gcn).build(&config);
    predictor.fit(&train, &validation, &config).expect("training succeeds");
    let snapshot = predictor.save_json().expect("serialises");
    assert!(snapshot.contains("\"version\": 1"));

    // A legacy file is the same document without the version field.
    let legacy: String = snapshot
        .lines()
        .filter(|line| !line.contains("\"version\""))
        .collect::<Vec<_>>()
        .join("\n");
    let reloaded = load_predictor(&legacy).expect("legacy snapshot loads");
    assert_eq!(
        reloaded.predict(&test.samples[0]).expect("predicts"),
        predictor.predict(&test.samples[0]).expect("predicts"),
        "legacy reload must predict identically"
    );

    // A future version is refused up front with Error::Parse.
    let future = snapshot.replace("\"version\": 1", "\"version\": 99");
    match load_predictor(&future) {
        Err(Error::Parse(message)) => {
            assert!(message.contains("newer format"), "unhelpful message: {message}")
        }
        Err(other) => panic!("future version must fail with Error::Parse, got {other:?}"),
        Ok(_) => panic!("future version must not load"),
    }
}
