//! Integration tests for the observability crate: exact quantile readout,
//! bucket-edge saturation, concurrent-recording safety, exposition format,
//! the JSONL trace sink, and the global enable switch.
//!
//! Tests that touch process-global state (the global registry, the trace
//! sink, the enable switch) serialise on [`global_lock`] so they compose with
//! the default multi-threaded test runner.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use hls_gnn_obs::{span, Registry};
use proptest::prelude::*;

fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("hls_gnn_obs_{name}_{}", std::process::id()));
    path
}

#[test]
fn quantiles_are_exact_on_bucket_aligned_distributions() {
    let registry = Registry::new();
    let histogram = registry.histogram_with("q_us", &[], &[1, 2, 3, 4, 5, 10, 100]);
    // 100 observations: 1..=100 of known composition.
    for value in 1..=100u64 {
        let bucketed = match value {
            1..=5 => value.min(5),
            6..=90 => 10,
            _ => 100,
        };
        histogram.record(bucketed);
    }
    assert_eq!(histogram.count(), 100);
    assert_eq!(histogram.quantile(0.01), 1);
    assert_eq!(histogram.quantile(0.05), 5);
    assert_eq!(histogram.quantile(0.5), 10);
    assert_eq!(histogram.quantile(0.9), 10);
    assert_eq!(histogram.quantile(0.91), 100);
    assert_eq!(histogram.quantile(1.0), 100);
    // An empty histogram reads zero everywhere.
    let empty = registry.histogram_with("empty_us", &[], &[1, 2]);
    assert_eq!(empty.quantile(0.5), 0);
    assert_eq!(empty.max_value(), 0);
}

#[test]
fn recording_saturates_into_the_overflow_bucket() {
    let registry = Registry::new();
    let histogram = registry.histogram_with("sat_us", &[], &[8, 16]);
    histogram.record(16); // exactly the top bound → last real bucket
    histogram.record(17); // overflow
    histogram.record(u64::MAX); // extreme overflow still counted
    assert_eq!(histogram.count(), 3);
    assert_eq!(histogram.max_value(), u64::MAX);
    // The overflow bucket reports the true observed max, not +Inf.
    assert_eq!(histogram.quantile(1.0), u64::MAX);
    // p33 sits in the top real bucket and reads its bound exactly.
    assert_eq!(histogram.quantile(0.33), 16);
    let rendered = registry.render();
    assert!(rendered.contains("sat_us_bucket{le=\"16\"} 1"));
    assert!(rendered.contains("sat_us_bucket{le=\"+Inf\"} 3"));
    assert!(rendered.contains("sat_us_count 3"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Concurrent increments from N threads lose no counts: counter value,
    /// histogram count, and histogram sum all match the exact totals.
    #[test]
    fn concurrent_recording_loses_no_counts(threads in 2usize..6, per_thread in 1usize..400) {
        let registry = Registry::new();
        let counter = registry.counter("prop_total", &[]);
        let histogram = registry.histogram_with("prop_us", &[], &[4, 16, 64, 256]);
        std::thread::scope(|scope| {
            for thread in 0..threads {
                let counter = registry.counter("prop_total", &[]);
                let histogram = registry.histogram_with("prop_us", &[], &[4, 16, 64, 256]);
                scope.spawn(move || {
                    for step in 0..per_thread {
                        counter.inc();
                        histogram.record(((thread * per_thread + step) % 300) as u64);
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        prop_assert_eq!(counter.get(), total);
        prop_assert_eq!(histogram.count(), total);
        let expected_sum: u64 =
            (0..threads * per_thread).map(|value| (value % 300) as u64).sum();
        prop_assert_eq!(histogram.sum(), expected_sum);
    }
}

#[test]
fn render_is_deterministic_and_prometheus_shaped() {
    let registry = Registry::new();
    registry.counter("z_total", &[("model", "base")]).add(3);
    registry.counter("z_total", &[("model", "gcn")]).add(5);
    registry.gauge("a_depth", &[]).set(-2);
    registry.histogram_with("m_us", &[("stage", "lower")], &[10, 100]).record(40);
    let first = registry.render();
    assert_eq!(first, registry.render());
    let lines: Vec<&str> = first.lines().collect();
    // Sorted by name: a_depth, m_us, z_total — one # TYPE line per name.
    assert_eq!(lines[0], "# TYPE a_depth gauge");
    assert_eq!(lines[1], "a_depth -2");
    assert_eq!(lines[2], "# TYPE m_us histogram");
    assert_eq!(lines[3], "m_us_bucket{stage=\"lower\",le=\"10\"} 0");
    assert_eq!(lines[4], "m_us_bucket{stage=\"lower\",le=\"100\"} 1");
    assert_eq!(lines[5], "m_us_bucket{stage=\"lower\",le=\"+Inf\"} 1");
    assert_eq!(lines[6], "m_us_sum{stage=\"lower\"} 40");
    assert_eq!(lines[7], "m_us_count{stage=\"lower\"} 1");
    assert_eq!(lines[8], "# TYPE z_total counter");
    assert_eq!(lines[9], "z_total{model=\"base\"} 3");
    assert_eq!(lines[10], "z_total{model=\"gcn\"} 5");
}

#[test]
fn spans_feed_the_stage_histogram_and_jsonl_sink() {
    let _guard = global_lock();
    hls_gnn_obs::set_enabled(true);
    let trace_path = temp_path("trace");
    hls_gnn_obs::attach(&trace_path).expect("trace sink should open");
    {
        let _outer = span!("obs_test_outer", kernel = "alpha\"quoted");
        let _inner = span!("obs_test_inner");
    }
    hls_gnn_obs::detach();

    let stage = hls_gnn_obs::global()
        .histogram(hls_gnn_obs::STAGE_HISTOGRAM, &[("stage", "obs_test_outer")]);
    assert_eq!(stage.count(), 1);

    let trace = std::fs::read_to_string(&trace_path).expect("trace file should exist");
    std::fs::remove_file(&trace_path).ok();
    let lines: Vec<&str> = trace.lines().collect();
    assert_eq!(lines.len(), 2);
    // Inner span drops (and is written) first; depth reflects nesting.
    assert!(lines[0].contains("\"span\":\"obs_test_inner\""));
    assert!(lines[0].contains("\"depth\":2"));
    assert!(lines[1].contains("\"span\":\"obs_test_outer\""));
    assert!(lines[1].contains("\"depth\":1"));
    assert!(lines[1].contains("\"args\":{\"kernel\":\"alpha\\\"quoted\"}"));
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"start_us\":"));
        assert!(line.contains("\"dur_us\":"));
        assert!(line.contains("\"thread\":"));
    }
}

#[test]
fn trace_sink_rotates_once_then_stops_at_the_cap() {
    let _guard = global_lock();
    hls_gnn_obs::set_enabled(true);
    let trace_path = temp_path("rotate");
    let rotated_path = {
        let mut os = trace_path.clone().into_os_string();
        os.push(".1");
        PathBuf::from(os)
    };
    // Cap small enough that a couple of spans overflow each file: every
    // event line is ~100 bytes.
    hls_gnn_obs::attach_with_limit(&trace_path, Some(260)).expect("sink should open");
    for _ in 0..40 {
        let _span = span!("obs_test_rotation", filler = "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx");
    }
    // The second overflow detaches the sink by itself.
    assert!(!hls_gnn_obs::attached(), "sink should stop after rotating once");
    hls_gnn_obs::detach();

    let rotated = std::fs::read_to_string(&rotated_path).expect("rotated file should exist");
    let fresh = std::fs::read_to_string(&trace_path).expect("fresh file should exist");
    std::fs::remove_file(&trace_path).ok();
    std::fs::remove_file(&rotated_path).ok();
    assert!(rotated.len() as u64 <= 260, "rotated file respects the cap");
    assert!(fresh.len() as u64 <= 260, "fresh file respects the cap");
    assert!(rotated.lines().count() >= 1);
    assert!(fresh.lines().count() >= 1);
    for line in rotated.lines().chain(fresh.lines()) {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"span\":\"obs_test_rotation\""));
    }
}

#[test]
fn flight_recorder_retains_span_events_without_a_sink() {
    let _guard = global_lock();
    hls_gnn_obs::set_enabled(true);
    hls_gnn_obs::detach();
    {
        let _outer = span!("obs_test_flight_outer");
        let _inner = span!("obs_test_flight_inner");
    }
    let events = hls_gnn_obs::flight::snapshot();
    let inner = events
        .iter()
        .find(|event| event.span == "obs_test_flight_inner")
        .expect("inner span should be retained");
    let outer = events
        .iter()
        .find(|event| event.span == "obs_test_flight_outer")
        .expect("outer span should be retained");
    assert_eq!(inner.depth, 2);
    assert_eq!(outer.depth, 1);
    assert!(inner.start_us >= outer.start_us);
}

#[test]
fn panic_dump_writes_a_valid_flight_file() {
    let _guard = global_lock();
    hls_gnn_obs::set_enabled(true);
    {
        let _span = span!("obs_test_panic_span");
    }
    let dump_path = temp_path("flightrec");
    let count = hls_gnn_obs::flight::dump_to_path(&dump_path).expect("dump should write");
    let dump = std::fs::read_to_string(&dump_path).expect("dump file should exist");
    std::fs::remove_file(&dump_path).ok();
    assert!(count >= 1);
    assert!(dump.starts_with("[\n") && dump.ends_with("]\n"), "dump is a JSON array");
    assert!(dump.contains("\"span\":\"obs_test_panic_span\""));
    // The panic hook itself: install it, panic on a scratch thread, and
    // check the hook ran the dump (the chained default hook still prints).
    let hook_path = temp_path("flightrec_hook");
    hls_gnn_obs::install_panic_hook(&hook_path);
    let result = std::thread::Builder::new()
        .name("obs-panic-probe".into())
        .spawn(|| {
            let _span = span!("obs_test_panic_probe");
            drop(span!("obs_test_panic_probe"));
            panic!("intentional test panic");
        })
        .expect("spawn")
        .join();
    assert!(result.is_err(), "probe thread must panic");
    let hook_dump = std::fs::read_to_string(&hook_path).expect("panic hook should dump");
    std::fs::remove_file(&hook_path).ok();
    assert!(hook_dump.contains("\"span\":\"obs_test_panic_probe\""));
    assert!(hook_dump.contains("\"thread\":\"obs-panic-probe\""));
}

#[test]
fn disabled_spans_are_inert() {
    let _guard = global_lock();
    hls_gnn_obs::set_enabled(false);
    {
        let _span = span!("obs_test_disabled", detail = "never evaluated");
    }
    hls_gnn_obs::set_enabled(true);
    let stage = hls_gnn_obs::global()
        .histogram(hls_gnn_obs::STAGE_HISTOGRAM, &[("stage", "obs_test_disabled")]);
    assert_eq!(stage.count(), 0);
}
