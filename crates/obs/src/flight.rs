//! Flight recorder: fixed-size per-thread rings of the most recent span
//! events, kept at all times — even with no JSONL sink attached — so a crash
//! can be turned into a timeline after the fact.
//!
//! Every [`crate::Span`] drop appends one event to its thread's ring (a few
//! relaxed atomic stores; no locks, no allocation after the first span of a
//! name on a thread). Rings are registered globally, so
//! [`snapshot`] / [`dump_to_path`] can collect the last
//! [`capacity`] events of *every* thread that ever recorded a span,
//! including threads that have since exited.
//!
//! [`install_panic_hook`] chains onto the process panic hook: on panic the
//! recorder dumps all rings to stderr and to a JSON file (conventionally
//! `results/flightrec.json`) whose per-event objects use the same field
//! names as the JSONL trace sink, so `obs_report` and
//! `obs_report --chrome` consume flight dumps unchanged.
//!
//! Readers are best-effort by design: a thread that is still recording while
//! another thread dumps may overwrite the oldest slot mid-read. Slots carry
//! a release-published validity word, so a torn slot is dropped rather than
//! misreported — exactly the right trade for a panic path that must never
//! block or deadlock.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// Environment variable sizing the per-thread ring (events). `0` disables
/// the recorder entirely.
pub const FLIGHTREC_ENV_VAR: &str = "HLSGNN_FLIGHTREC";

/// Default events retained per thread.
pub const DEFAULT_CAPACITY: usize = 128;

/// One recovered span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Thread name (or debug-formatted id) that recorded the span.
    pub thread: String,
    /// Span name.
    pub span: String,
    /// Nesting depth at drop time (1 = top level).
    pub depth: u32,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// `meta` word: `(name_id + 1) << 32 | depth`; 0 = slot never written (or
/// mid-write).
struct Slot {
    meta: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
}

struct Ring {
    thread: String,
    /// Events ever written; the live window is the last `slots.len()`.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn new(thread: String, capacity: usize) -> Ring {
        let slots = (0..capacity)
            .map(|_| Slot {
                meta: AtomicU64::new(0),
                start_us: AtomicU64::new(0),
                dur_us: AtomicU64::new(0),
            })
            .collect();
        Ring { thread, head: AtomicU64::new(0), slots }
    }

    /// Owner-thread-only append: invalidate, fill, publish.
    fn push(&self, name_id: u32, depth: u32, start_us: u64, dur_us: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        slot.meta.store(0, Ordering::Release);
        slot.start_us.store(start_us, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        let meta = (u64::from(name_id) + 1) << 32 | u64::from(depth);
        slot.meta.store(meta, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Best-effort read of the live window, oldest first.
    fn collect(&self, names: &[&'static str], out: &mut Vec<FlightEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let window = self.slots.len() as u64;
        let start = head.saturating_sub(window);
        for position in start..head {
            let slot = &self.slots[(position % window) as usize];
            let meta = slot.meta.load(Ordering::Acquire);
            if meta == 0 {
                continue; // never written, or being overwritten right now
            }
            let name_id = ((meta >> 32) - 1) as usize;
            out.push(FlightEvent {
                thread: self.thread.clone(),
                span: names.get(name_id).copied().unwrap_or("?").to_owned(),
                depth: (meta & u32::MAX as u64) as u32,
                start_us: slot.start_us.load(Ordering::Relaxed),
                dur_us: slot.dur_us.load(Ordering::Relaxed),
            });
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Span-name intern table: names are `&'static str`, so the table only ever
/// grows by distinct instrumentation sites.
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Per-thread ring capacity (`HLSGNN_FLIGHTREC`, read once; 0 disables).
pub fn capacity() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY.get_or_init(|| match std::env::var(FLIGHTREC_ENV_VAR) {
        Ok(raw) if !raw.trim().is_empty() => raw.trim().parse().unwrap_or_else(|_| {
            eprintln!(
                "warning: unrecognised {FLIGHTREC_ENV_VAR} value `{raw}`; \
                     using the default ({DEFAULT_CAPACITY})"
            );
            DEFAULT_CAPACITY
        }),
        _ => DEFAULT_CAPACITY,
    })
}

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
    /// name → intern id, so the record path takes the global lock once per
    /// distinct span name per thread.
    static NAME_CACHE: RefCell<HashMap<&'static str, u32>> = RefCell::new(HashMap::new());
}

fn intern(name: &'static str) -> u32 {
    NAME_CACHE.with(|cache| {
        *cache.borrow_mut().entry(name).or_insert_with(|| {
            let mut table = lock(names());
            match table.iter().position(|&existing| existing == name) {
                Some(index) => index as u32,
                None => {
                    table.push(name);
                    (table.len() - 1) as u32
                }
            }
        })
    })
}

/// Records one span event into the calling thread's ring. Called from
/// [`crate::Span`]'s drop; a no-op when the recorder is disabled
/// (`HLSGNN_FLIGHTREC=0`).
pub fn record(name: &'static str, depth: u32, start_us: u64, dur_us: u64) {
    let cap = capacity();
    if cap == 0 {
        return;
    }
    let name_id = intern(name);
    THREAD_RING.with(|holder| {
        let mut holder = holder.borrow_mut();
        let ring = holder.get_or_insert_with(|| {
            let current = std::thread::current();
            let thread = match current.name() {
                Some(name) => name.to_owned(),
                None => format!("{:?}", current.id()),
            };
            let ring = Arc::new(Ring::new(thread, cap));
            lock(rings()).push(Arc::clone(&ring));
            ring
        });
        ring.push(name_id, depth, start_us, dur_us);
    });
}

/// Collects the retained events of every registered ring, oldest first
/// (sorted by start offset, then thread).
pub fn snapshot() -> Vec<FlightEvent> {
    let names = lock(names()).clone();
    let rings: Vec<Arc<Ring>> = lock(rings()).clone();
    let mut events = Vec::new();
    for ring in rings {
        ring.collect(&names, &mut events);
    }
    events.sort_by(|a, b| a.start_us.cmp(&b.start_us).then_with(|| a.thread.cmp(&b.thread)));
    events
}

/// Serialises `events` as a JSON array whose elements reuse the JSONL trace
/// sink's field names, one object per line — the file is both valid JSON and
/// line-scannable by `obs_report`.
pub fn render_json(events: &[FlightEvent]) -> String {
    let mut out = String::from("[\n");
    for (index, event) in events.iter().enumerate() {
        out.push_str("{\"span\":\"");
        crate::trace::escape_into(&mut out, &event.span);
        out.push_str("\",\"thread\":\"");
        crate::trace::escape_into(&mut out, &event.thread);
        out.push_str("\",\"depth\":");
        out.push_str(&event.depth.to_string());
        out.push_str(",\"start_us\":");
        out.push_str(&event.start_us.to_string());
        out.push_str(",\"dur_us\":");
        out.push_str(&event.dur_us.to_string());
        out.push('}');
        if index + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Dumps the current snapshot to `path` as JSON. Creates parent directories.
///
/// # Errors
/// Propagates filesystem failures.
pub fn dump_to_path(path: &Path) -> std::io::Result<usize> {
    let events = snapshot();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_json(&events))?;
    Ok(events.len())
}

/// Installs (once per process) a panic hook that dumps the flight recorder
/// to stderr and to `path`, then chains to the previously installed hook.
/// Subsequent calls are no-ops, so the serve and train binaries can each
/// install it unconditionally.
pub fn install_panic_hook(path: impl Into<PathBuf>) {
    static INSTALL: Once = Once::new();
    let path = path.into();
    INSTALL.call_once(move || {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_on_panic(&path);
            previous(info);
        }));
    });
}

fn dump_on_panic(path: &Path) {
    let events = snapshot();
    let stderr = std::io::stderr();
    let mut err = stderr.lock();
    let threads: std::collections::BTreeSet<&str> =
        events.iter().map(|event| event.thread.as_str()).collect();
    let _ = writeln!(
        err,
        "flight recorder: {} span event(s) across {} thread(s):",
        events.len(),
        threads.len()
    );
    for event in &events {
        let _ = writeln!(
            err,
            "  [{}] {} depth={} start_us={} dur_us={}",
            event.thread, event.span, event.depth, event.start_us, event.dur_us
        );
    }
    match dump_to_path(path) {
        Ok(count) => {
            let _ = writeln!(err, "flight recorder: wrote {count} event(s) to {}", path.display());
        }
        Err(error) => {
            let _ = writeln!(err, "flight recorder: cannot write {}: {error}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_and_survives_wraparound() {
        let ring = Ring::new("t".to_owned(), 4);
        for event in 0..10u64 {
            ring.push(0, 1, event, 1);
        }
        let mut events = Vec::new();
        ring.collect(&["alpha"], &mut events);
        assert_eq!(events.len(), 4);
        let starts: Vec<u64> = events.iter().map(|event| event.start_us).collect();
        assert_eq!(starts, vec![6, 7, 8, 9], "only the newest window survives");
        assert!(events.iter().all(|event| event.span == "alpha"));
    }

    #[test]
    fn render_json_is_an_array_of_trace_shaped_lines() {
        let events = vec![
            FlightEvent {
                thread: "main".to_owned(),
                span: "train_step".to_owned(),
                depth: 2,
                start_us: 10,
                dur_us: 5,
            },
            FlightEvent {
                thread: "w-0".to_owned(),
                span: "serve_infer".to_owned(),
                depth: 1,
                start_us: 20,
                dur_us: 7,
            },
        ];
        let json = render_json(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        let event_lines: Vec<&str> = json.lines().filter(|line| line.starts_with('{')).collect();
        assert_eq!(event_lines.len(), 2);
        assert!(event_lines[0].contains("\"span\":\"train_step\""));
        assert!(event_lines[0].contains("\"start_us\":10"));
        assert!(event_lines[1].contains("\"thread\":\"w-0\""));
    }
}
