//! Workspace-wide observability for the HLS-GNN pipeline.
//!
//! Three pieces, all std-only:
//!
//! * **Metrics registry** ([`Registry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]): metrics are registered once by static name + label set
//!   and mutated through `Arc` handles with plain atomics — the hot
//!   increment path is lock-free. [`Registry::render`] emits deterministic
//!   Prometheus-style text exposition; the serve crate exposes it at
//!   `GET /metrics`.
//! * **Structured tracing** ([`span!`], [`trace`]): RAII stage timers that
//!   feed `hlsgnn_stage_duration_us{stage=…}` automatically and, when a
//!   JSONL sink is attached (`HLSGNN_TRACE=<path>`), record one event per
//!   span for offline breakdowns (`obs_report` in the bench crate).
//! * **Flight recorder** ([`flight`]): fixed-size lock-free per-thread
//!   rings retaining the last N span events at all times, dumped to stderr
//!   and `results/flightrec.json` on panic via [`install_panic_hook`] — any
//!   crash becomes a timeline, sink or no sink.
//! * **Global switches**: [`global`] is the process-wide registry;
//!   [`enabled`]/[`set_enabled`] (or `HLSGNN_OBS=off`) turn all span
//!   instrumentation into no-ops, which is what the `obs_bench` overhead
//!   gate compares against.
//!
//! Instrumentation is timing-only — it never draws randomness or rewrites
//! values — so every pipeline output is bit-identical whether observability
//! is on, off, or tracing to a sink.
//!
//! ```
//! let requests = hls_gnn_obs::global().counter("doc_requests_total", &[("model", "base")]);
//! requests.inc();
//! {
//!     let _span = hls_gnn_obs::span!("doc_stage", kernel = "gemm");
//!     // … timed work …
//! }
//! let text = hls_gnn_obs::global().render();
//! assert!(text.contains("doc_requests_total{model=\"base\"} 1"));
//! ```

pub mod flight;
pub mod registry;
pub mod trace;

pub use flight::{install_panic_hook, FlightEvent, FLIGHTREC_ENV_VAR};
pub use registry::{duration_buckets_us, Counter, Gauge, Histogram, Registry};
pub use trace::{
    attach, attach_with_limit, attached, detach, Span, STAGE_HISTOGRAM, TRACE_ENV_VAR,
    TRACE_MAX_MB_ENV_VAR,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable that disables all instrumentation when set to `off`
/// (or `0`/`false`).
pub const OBS_ENV_VAR: &str = "HLSGNN_OBS";

/// The process-wide metrics registry. Subsystems that need isolated counters
/// (e.g. one prediction service per test) create their own [`Registry`] and
/// render both.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

const ENABLED_UNKNOWN: u8 = 0;
const ENABLED_ON: u8 = 1;
const ENABLED_OFF: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNKNOWN);

/// Whether span instrumentation is active. Defaults to on; `HLSGNN_OBS=off`
/// (or a call to [`set_enabled`]`(false)`) makes every span fully inert.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ENABLED_ON => true,
        ENABLED_OFF => false,
        _ => {
            let on =
                !matches!(std::env::var(OBS_ENV_VAR).as_deref(), Ok("off") | Ok("0") | Ok("false"));
            ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the instrumentation switch at runtime (wins over `HLSGNN_OBS`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
}

/// Opens a RAII stage timer: `span!("lower")` or
/// `span!("lower", kernel = name)`. Bind the result (`let _span = …`) so the
/// span covers the intended scope. Argument expressions are only evaluated —
/// and only need `Display` — when a trace sink is attached.
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::Span::enter($name, ::std::vec::Vec::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::enter($name, || {
            ::std::vec![$((::std::stringify!($key), ::std::string::ToString::to_string(&$value))),+]
        })
    };
}
