//! Metric primitives and the registry that names them.
//!
//! Three metric kinds, all built on plain atomics so the hot mutation path is
//! lock-free:
//!
//! * [`Counter`] — a monotonically increasing `u64`.
//! * [`Gauge`] — a settable `i64` (queue depths, cache sizes).
//! * [`Histogram`] — fixed ascending buckets over `u64` observations
//!   (microseconds for latencies, plain counts for widths) with a cumulative
//!   overflow bucket, a saturating sum, an exact observed maximum, and
//!   quantile readout from the bucket counts.
//!
//! A [`Registry`] interns metrics by `(name, label set)`. Registration takes
//! a mutex (it happens once per metric); the returned [`Arc`] handle is what
//! instrumentation sites hold on to, and mutating through it touches only
//! atomics. [`Registry::render`] produces deterministic Prometheus-style
//! text exposition (`# TYPE` comments, `name{label="v"} value` lines,
//! `_bucket`/`_sum`/`_count` series for histograms) sorted by name and label
//! set.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depth, cache entries).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are defined by ascending inclusive upper bounds; observations
/// beyond the last bound land in an implicit overflow (`+Inf`) bucket, so
/// recording never loses a count (saturating behaviour at the top edge).
/// Quantiles are read out of the bucket counts: the reported value is the
/// upper bound of the bucket containing the requested rank, clamped to the
/// exact observed maximum — so a histogram whose observations sit on bucket
/// bounds reads back exact quantiles, and the overflow bucket reports the
/// true maximum rather than infinity.
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[u64]>,
    /// One count per bound plus the overflow bucket.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket bound");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be ascending");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram { bounds: bounds.into(), counts, sum: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Records one observation. Lock-free: one indexed `fetch_add`, a
    /// saturating sum update and a `fetch_max`.
    pub fn record(&self, value: u64) {
        let bucket = self.bounds.partition_point(|&bound| bound < value);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|count| count.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest observation so far (0 when empty).
    pub fn max_value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) of the recorded
    /// distribution: the upper bound of the bucket holding the
    /// `ceil(q · count)`-th smallest observation, clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let snapshot: Vec<u64> =
            self.counts.iter().map(|count| count.load(Ordering::Relaxed)).collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for (bucket, count) in snapshot.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let bound = self.bounds.get(bucket).copied().unwrap_or(u64::MAX);
                return bound.min(self.max_value());
            }
        }
        self.max_value()
    }

    /// The bucket bounds (exclusive of the implicit `+Inf` bucket).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (bucket, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[bucket].load(Ordering::Relaxed);
            let le = bound.to_string();
            let merged = merge_labels(labels, &le);
            let _ = writeln!(out, "{name}_bucket{merged} {cumulative}");
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        let merged = merge_labels(labels, "+Inf");
        let _ = writeln!(out, "{name}_bucket{merged} {cumulative}");
        let _ = writeln!(out, "{name}_sum{labels} {}", self.sum());
        let _ = writeln!(out, "{name}_count{labels} {cumulative}");
    }
}

/// Splices an `le="…"` pair into an already-rendered label set.
fn merge_labels(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        // `labels` is `{k="v",…}`: insert before the closing brace.
        format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// Default latency buckets, microseconds: log-linear (four sub-steps per
/// power of two) from 1 µs to ~67 s, so any quantile readout is within ~25%
/// of the true value across six orders of magnitude.
pub fn duration_buckets_us() -> Vec<u64> {
    let mut bounds = Vec::new();
    let mut power = 1u64;
    while power <= 1 << 26 {
        for numerator in [4u64, 5, 6, 7] {
            let bound = power * numerator / 4;
            if bounds.last() != Some(&bound) {
                bounds.push(bound);
            }
        }
        power <<= 1;
    }
    bounds
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A set of named metrics with deterministic text exposition.
///
/// The process-wide default lives behind [`crate::global`]; subsystems that
/// need isolated counters (one prediction service per test, say) create
/// their own and render both.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<(String, String), Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Gets or registers a counter.
    ///
    /// # Panics
    /// Panics if the `(name, labels)` pair is already registered as a
    /// different metric kind — that is an instrumentation bug.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(counter) => counter,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Gets or registers a gauge.
    ///
    /// # Panics
    /// Panics on a metric-kind conflict (see [`Registry::counter`]).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(gauge) => gauge,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Gets or registers a histogram with the default microsecond-latency
    /// buckets ([`duration_buckets_us`]).
    ///
    /// # Panics
    /// Panics on a metric-kind conflict (see [`Registry::counter`]).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram_with(name, labels, &duration_buckets_us())
    }

    /// Gets or registers a histogram with explicit bucket bounds. The bounds
    /// only apply on first registration; later calls return the existing
    /// histogram unchanged.
    ///
    /// # Panics
    /// Panics on a metric-kind conflict (see [`Registry::counter`]), or if
    /// `bounds` is empty or not strictly ascending.
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        let insert = || Metric::Histogram(Arc::new(Histogram::with_bounds(bounds)));
        match self.get_or_insert(name, labels, insert) {
            Metric::Histogram(histogram) => histogram,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        insert: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = (name.to_owned(), render_labels(labels));
        let mut metrics = self.metrics.lock().expect("metric registry poisoned");
        let entry = metrics.entry(key).or_insert_with(insert);
        match entry {
            Metric::Counter(counter) => Metric::Counter(Arc::clone(counter)),
            Metric::Gauge(gauge) => Metric::Gauge(Arc::clone(gauge)),
            Metric::Histogram(histogram) => Metric::Histogram(Arc::clone(histogram)),
        }
    }

    /// Renders every metric as Prometheus text exposition. Deterministic:
    /// metrics sort by name then label set, each name gets one `# TYPE`
    /// comment, histograms expand to cumulative `_bucket` series plus `_sum`
    /// and `_count`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let metrics = self.metrics.lock().expect("metric registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), metric) in metrics.iter() {
            if last_name != Some(name.as_str()) {
                let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
                last_name = Some(name.as_str());
            }
            match metric {
                Metric::Counter(counter) => {
                    let _ = writeln!(out, "{name}{labels} {}", counter.get());
                }
                Metric::Gauge(gauge) => {
                    let _ = writeln!(out, "{name}{labels} {}", gauge.get());
                }
                Metric::Histogram(histogram) => histogram.render_into(&mut out, name, labels),
            }
        }
        out
    }
}

/// Renders a label set canonically: sorted by key, values escaped, wrapped in
/// braces (empty string for no labels).
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> =
        sorted.iter().map(|(key, value)| format!("{key}=\"{}\"", escape_label(value))).collect();
    format!("{{{}}}", body.join(","))
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_mutate_atomically() {
        let registry = Registry::new();
        let counter = registry.counter("c_total", &[]);
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        // Same handle back for the same key.
        assert_eq!(registry.counter("c_total", &[]).get(), 5);

        let gauge = registry.gauge("g", &[("shard", "0")]);
        gauge.set(7);
        gauge.add(-3);
        assert_eq!(gauge.get(), 4);
    }

    #[test]
    fn histogram_buckets_values_at_inclusive_upper_bounds() {
        let registry = Registry::new();
        let histogram = registry.histogram_with("h_us", &[], &[10, 20, 30]);
        histogram.record(10); // exactly on a bound → that bucket
        histogram.record(11); // next bucket
        histogram.record(31); // overflow
        assert_eq!(histogram.count(), 3);
        assert_eq!(histogram.sum(), 52);
        assert_eq!(histogram.max_value(), 31);
    }

    #[test]
    fn label_sets_are_canonicalised_and_escaped() {
        assert_eq!(render_labels(&[]), "");
        assert_eq!(render_labels(&[("b", "2"), ("a", "1")]), "{a=\"1\",b=\"2\"}");
        assert_eq!(render_labels(&[("k", "a\"b\\c\nd")]), "{k=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn default_duration_buckets_are_strictly_ascending() {
        let bounds = duration_buckets_us();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bounds.first(), Some(&1));
        assert!(*bounds.last().unwrap() >= 1 << 26);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn metric_kind_conflicts_panic() {
        let registry = Registry::new();
        registry.counter("same_name", &[]);
        registry.gauge("same_name", &[]);
    }
}
