//! Structured tracing: thread-local span stacks, RAII stage timers, and an
//! optional JSONL sink.
//!
//! A [`Span`] (usually created via the [`crate::span!`] macro) measures a
//! named stage. On drop it:
//!
//! 1. records its duration (microseconds) into the global
//!    `hlsgnn_stage_duration_us{stage="<name>"}` histogram — so every
//!    instrumented stage is queryable from `/metrics` with zero
//!    configuration; the per-thread histogram handle is cached, so the drop
//!    path is an `Instant` read plus a few atomics;
//! 2. if a trace sink is attached (`HLSGNN_TRACE=<path>`, or
//!    [`attach`]/[`detach`] programmatically), appends one JSON line
//!    recording the span name, thread, nesting depth, start offset and
//!    duration — enough for an offline flamegraph-style breakdown
//!    (`obs_report` in the bench crate consumes exactly this format).
//!
//! Span *arguments* (`span!("lower", kernel = name)`) are captured through a
//! closure that is only evaluated when a sink is attached, so the no-sink
//! path never formats or allocates for them. When observability is disabled
//! entirely ([`crate::set_enabled`], `HLSGNN_OBS=off`) spans are fully inert:
//! no clock reads, no atomics.
//!
//! Every dropped span is also appended to the thread's [`crate::flight`]
//! ring — the always-on flight recorder that turns a later panic into a
//! timeline — and the JSONL sink itself is bounded: `HLSGNN_TRACE_MAX_MB`
//! caps the file, rotating once to `<path>.1` when the cap is hit so a
//! long traced run can never fill the disk (total footprint ≤ 2 × cap).
//!
//! Tracing never touches the traced computation — no RNG draws, no value
//! rewriting — so all numeric outputs are bit-identical with tracing on or
//! off.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

use crate::registry::Histogram;

/// Environment variable naming the JSONL trace sink path.
pub const TRACE_ENV_VAR: &str = "HLSGNN_TRACE";

/// Environment variable capping the JSONL sink size, in MiB. When the cap is
/// reached the file rotates once to `<path>.1`; when the fresh file reaches
/// the cap too, tracing stops (with a one-time stderr notice). Unset or `0`
/// means unbounded.
pub const TRACE_MAX_MB_ENV_VAR: &str = "HLSGNN_TRACE_MAX_MB";

/// Name of the histogram every span feeds (labelled by `stage`).
pub const STAGE_HISTOGRAM: &str = "hlsgnn_stage_duration_us";

/// The attached JSONL sink plus the bookkeeping the size cap needs.
///
/// Events are written straight to the file, one `write` per span: the sink
/// lives in a process-global (statics never drop, so a buffered tail would
/// be lost on exit), spans are stage-level — far too coarse for a syscall
/// per event to matter — and unbuffered lines mean a crash or abrupt exit
/// loses nothing.
struct Sink {
    file: File,
    path: std::path::PathBuf,
    written: u64,
    /// Byte cap per file (`HLSGNN_TRACE_MAX_MB`), `None` = unbounded.
    limit: Option<u64>,
    /// The one permitted rotation has happened.
    rotated: bool,
}

static ATTACHED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();

/// The process-wide monotonic epoch span start offsets are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var(TRACE_ENV_VAR) {
            let path = path.trim();
            if !path.is_empty() {
                if let Err(error) = attach(Path::new(path)) {
                    eprintln!("warning: cannot open {TRACE_ENV_VAR} sink `{path}`: {error}");
                }
            }
        }
    });
}

/// Attaches (or replaces) the JSONL trace sink, honouring the
/// `HLSGNN_TRACE_MAX_MB` size cap. Subsequent span drops append one line
/// each until [`detach`] is called.
///
/// # Errors
/// Propagates the file-creation failure.
pub fn attach(path: &Path) -> io::Result<()> {
    let limit = std::env::var(TRACE_MAX_MB_ENV_VAR)
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .filter(|&mb| mb > 0)
        .map(|mb| mb * 1024 * 1024);
    attach_with_limit(path, limit)
}

/// [`attach`] with an explicit byte cap per file instead of the environment
/// variable (`None` = unbounded). The sink writes at most `limit` bytes,
/// rotates the full file to `<path>.1`, writes up to `limit` more, then
/// stops — bounding a runaway trace at twice the cap.
///
/// # Errors
/// Propagates the file-creation failure.
pub fn attach_with_limit(path: &Path, limit: Option<u64>) -> io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("trace sink poisoned") =
        Some(Sink { file, path: path.to_path_buf(), written: 0, limit, rotated: false });
    ATTACHED.store(true, Ordering::Release);
    Ok(())
}

/// Detaches the trace sink, if any. Every event is already on disk (the
/// sink is unbuffered), so this only closes the file. Idempotent.
pub fn detach() {
    ATTACHED.store(false, Ordering::Release);
    drop(SINK.lock().expect("trace sink poisoned").take());
}

/// True when a JSONL sink is attached (the `HLSGNN_TRACE` environment
/// variable is consulted once, on first use).
pub fn attached() -> bool {
    ensure_env_init();
    ATTACHED.load(Ordering::Acquire)
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Per-thread cache of stage-name → histogram handle, so the span drop
    /// path skips the registry mutex after the first span of each stage.
    static STAGE_CACHE: RefCell<HashMap<&'static str, Arc<Histogram>>> =
        RefCell::new(HashMap::new());
}

/// An RAII stage timer; see the module docs. Create via [`crate::span!`].
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    start_us: u64,
    args: Option<Vec<(&'static str, String)>>,
}

impl Span {
    /// Starts a span. `args` is only invoked when a trace sink is attached.
    pub fn enter(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, String)>) -> Span {
        if !crate::enabled() {
            return Span { name, start: None, start_us: 0, args: None };
        }
        let args = attached().then(args);
        DEPTH.with(|depth| depth.set(depth.get() + 1));
        let origin = epoch();
        let now = Instant::now();
        let start_us =
            u64::try_from(now.saturating_duration_since(origin).as_micros()).unwrap_or(u64::MAX);
        Span { name, start: Some(now), start_us, args }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        STAGE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let histogram = cache.entry(self.name).or_insert_with(|| {
                crate::global().histogram(STAGE_HISTOGRAM, &[("stage", self.name)])
            });
            histogram.record(duration_us);
        });
        let depth = DEPTH.with(|depth| {
            let entered = depth.get();
            depth.set(entered.saturating_sub(1));
            entered
        });
        crate::flight::record(self.name, depth, self.start_us, duration_us);
        if let Some(args) = self.args.take() {
            write_event(self.name, depth, self.start_us, duration_us, &args);
        }
    }
}

/// Appends one JSONL event; drops the event silently if the sink vanished
/// (detached concurrently) or the write fails.
fn write_event(name: &str, depth: u32, start_us: u64, dur_us: u64, args: &[(&str, String)]) {
    let current = std::thread::current();
    let thread = match current.name() {
        Some(name) => name.to_owned(),
        None => format!("{:?}", current.id()),
    };
    let mut line = String::with_capacity(96);
    line.push_str("{\"span\":\"");
    escape_into(&mut line, name);
    line.push_str("\",\"thread\":\"");
    escape_into(&mut line, &thread);
    line.push_str("\",\"depth\":");
    line.push_str(&depth.to_string());
    line.push_str(",\"start_us\":");
    line.push_str(&start_us.to_string());
    line.push_str(",\"dur_us\":");
    line.push_str(&dur_us.to_string());
    if !args.is_empty() {
        line.push_str(",\"args\":{");
        for (index, (key, value)) in args.iter().enumerate() {
            if index > 0 {
                line.push(',');
            }
            line.push('"');
            escape_into(&mut line, key);
            line.push_str("\":\"");
            escape_into(&mut line, value);
            line.push('"');
        }
        line.push('}');
    }
    line.push_str("}\n");
    let mut guard = SINK.lock().expect("trace sink poisoned");
    let Some(sink) = guard.as_mut() else { return };
    if let Some(limit) = sink.limit {
        if sink.written + line.len() as u64 > limit {
            if sink.rotated {
                // Both files are full: stop tracing rather than fill the
                // disk. Mirrors detach(), but keeps the reason visible.
                let path = sink.path.display().to_string();
                *guard = None;
                ATTACHED.store(false, Ordering::Release);
                eprintln!(
                    "warning: trace sink `{path}` reached {TRACE_MAX_MB_ENV_VAR} twice; \
                     tracing stopped"
                );
                return;
            }
            // First overflow: rotate the full file to `<path>.1` and start
            // a fresh one at the same path.
            let mut rotated_path = sink.path.clone().into_os_string();
            rotated_path.push(".1");
            let _ = std::fs::rename(&sink.path, &rotated_path);
            match File::create(&sink.path) {
                Ok(file) => {
                    sink.file = file;
                    sink.written = 0;
                    sink.rotated = true;
                }
                Err(error) => {
                    let path = sink.path.display().to_string();
                    *guard = None;
                    ATTACHED.store(false, Ordering::Release);
                    eprintln!("warning: cannot rotate trace sink `{path}`: {error}");
                    return;
                }
            }
        }
    }
    sink.written += line.len() as u64;
    let _ = sink.file.write_all(line.as_bytes());
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn escape_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", ch as u32));
            }
            ch => out.push(ch),
        }
    }
}
