//! Structured tracing: thread-local span stacks, RAII stage timers, and an
//! optional JSONL sink.
//!
//! A [`Span`] (usually created via the [`crate::span!`] macro) measures a
//! named stage. On drop it:
//!
//! 1. records its duration (microseconds) into the global
//!    `hlsgnn_stage_duration_us{stage="<name>"}` histogram — so every
//!    instrumented stage is queryable from `/metrics` with zero
//!    configuration; the per-thread histogram handle is cached, so the drop
//!    path is an `Instant` read plus a few atomics;
//! 2. if a trace sink is attached (`HLSGNN_TRACE=<path>`, or
//!    [`attach`]/[`detach`] programmatically), appends one JSON line
//!    recording the span name, thread, nesting depth, start offset and
//!    duration — enough for an offline flamegraph-style breakdown
//!    (`obs_report` in the bench crate consumes exactly this format).
//!
//! Span *arguments* (`span!("lower", kernel = name)`) are captured through a
//! closure that is only evaluated when a sink is attached, so the no-sink
//! path never formats or allocates for them. When observability is disabled
//! entirely ([`crate::set_enabled`], `HLSGNN_OBS=off`) spans are fully inert:
//! no clock reads, no atomics.
//!
//! Tracing never touches the traced computation — no RNG draws, no value
//! rewriting — so all numeric outputs are bit-identical with tracing on or
//! off.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

use crate::registry::Histogram;

/// Environment variable naming the JSONL trace sink path.
pub const TRACE_ENV_VAR: &str = "HLSGNN_TRACE";

/// Name of the histogram every span feeds (labelled by `stage`).
pub const STAGE_HISTOGRAM: &str = "hlsgnn_stage_duration_us";

static ATTACHED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();

/// The process-wide monotonic epoch span start offsets are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(path) = std::env::var(TRACE_ENV_VAR) {
            let path = path.trim();
            if !path.is_empty() {
                if let Err(error) = attach(Path::new(path)) {
                    eprintln!("warning: cannot open {TRACE_ENV_VAR} sink `{path}`: {error}");
                }
            }
        }
    });
}

/// Attaches (or replaces) the JSONL trace sink. Subsequent span drops append
/// one line each until [`detach`] is called.
///
/// # Errors
/// Propagates the file-creation failure.
pub fn attach(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().expect("trace sink poisoned") = Some(BufWriter::new(file));
    ATTACHED.store(true, Ordering::Release);
    Ok(())
}

/// Detaches and flushes the trace sink, if any. Idempotent.
pub fn detach() {
    ATTACHED.store(false, Ordering::Release);
    if let Some(mut writer) = SINK.lock().expect("trace sink poisoned").take() {
        let _ = writer.flush();
    }
}

/// True when a JSONL sink is attached (the `HLSGNN_TRACE` environment
/// variable is consulted once, on first use).
pub fn attached() -> bool {
    ensure_env_init();
    ATTACHED.load(Ordering::Acquire)
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Per-thread cache of stage-name → histogram handle, so the span drop
    /// path skips the registry mutex after the first span of each stage.
    static STAGE_CACHE: RefCell<HashMap<&'static str, Arc<Histogram>>> =
        RefCell::new(HashMap::new());
}

/// An RAII stage timer; see the module docs. Create via [`crate::span!`].
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    start_us: u64,
    args: Option<Vec<(&'static str, String)>>,
}

impl Span {
    /// Starts a span. `args` is only invoked when a trace sink is attached.
    pub fn enter(name: &'static str, args: impl FnOnce() -> Vec<(&'static str, String)>) -> Span {
        if !crate::enabled() {
            return Span { name, start: None, start_us: 0, args: None };
        }
        let args = attached().then(args);
        DEPTH.with(|depth| depth.set(depth.get() + 1));
        let origin = epoch();
        let now = Instant::now();
        let start_us =
            u64::try_from(now.saturating_duration_since(origin).as_micros()).unwrap_or(u64::MAX);
        Span { name, start: Some(now), start_us, args }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        STAGE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            let histogram = cache.entry(self.name).or_insert_with(|| {
                crate::global().histogram(STAGE_HISTOGRAM, &[("stage", self.name)])
            });
            histogram.record(duration_us);
        });
        let depth = DEPTH.with(|depth| {
            let entered = depth.get();
            depth.set(entered.saturating_sub(1));
            entered
        });
        if let Some(args) = self.args.take() {
            write_event(self.name, depth, self.start_us, duration_us, &args);
        }
    }
}

/// Appends one JSONL event; drops the event silently if the sink vanished
/// (detached concurrently) or the write fails.
fn write_event(name: &str, depth: u32, start_us: u64, dur_us: u64, args: &[(&str, String)]) {
    let current = std::thread::current();
    let thread = match current.name() {
        Some(name) => name.to_owned(),
        None => format!("{:?}", current.id()),
    };
    let mut line = String::with_capacity(96);
    line.push_str("{\"span\":\"");
    escape_into(&mut line, name);
    line.push_str("\",\"thread\":\"");
    escape_into(&mut line, &thread);
    line.push_str("\",\"depth\":");
    line.push_str(&depth.to_string());
    line.push_str(",\"start_us\":");
    line.push_str(&start_us.to_string());
    line.push_str(",\"dur_us\":");
    line.push_str(&dur_us.to_string());
    if !args.is_empty() {
        line.push_str(",\"args\":{");
        for (index, (key, value)) in args.iter().enumerate() {
            if index > 0 {
                line.push(',');
            }
            line.push('"');
            escape_into(&mut line, key);
            line.push_str("\":\"");
            escape_into(&mut line, value);
            line.push('"');
        }
        line.push('}');
    }
    line.push_str("}\n");
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(writer) = sink.as_mut() {
        let _ = writer.write_all(line.as_bytes());
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", ch as u32));
            }
            ch => out.push(ch),
        }
    }
}
