//! Corpus-wide properties: every program the generators produce verifies
//! cleanly, and the analytic bounds never exceed the simulated ground truth.
//!
//! The deterministic sweeps below cover the fixed corpus (every real-world
//! kernel plus a seeded sample of each synthetic family); the proptest at the
//! bottom additionally fuzzes generator seeds so the guarantee does not
//! silently narrow to the checked-in seeds.

use hls_gnn_analyze::bounds::analyze_bounds;
use hls_gnn_analyze::verify;
use hls_ir::ast::Function;
use hls_ir::lower::lower_function;
use hls_progen::synthetic::{ProgramFamily, ProgramGenerator, SyntheticConfig};
use hls_sim::pipeline::analyze_loops;
use hls_sim::{run_flow, FpgaDevice};
use proptest::prelude::*;

fn decls(func: &Function) -> Vec<(hls_ir::ast::VarId, hls_ir::ValueType)> {
    func.vars().map(|(id, decl)| (id, decl.ty)).collect()
}

/// Asserts the full static-analysis contract for one behavioural function:
/// verification is clean and every analytic bound under-approximates the
/// scheduler's measurement.
fn assert_verified_and_bounded(origin: &str, func: &Function) {
    let device = FpgaDevice::default();
    let ir =
        lower_function(func).unwrap_or_else(|error| panic!("{origin}: lowering failed: {error}"));
    let diagnostics = verify::verify(&ir);
    assert!(diagnostics.is_empty(), "{origin}: verifier diagnostics: {diagnostics:?}");

    let flow =
        run_flow(func, &device).unwrap_or_else(|error| panic!("{origin}: flow failed: {error}"));
    let report = analyze_bounds(&flow.ir, &decls(func), &device);
    assert!(
        report.min_total_cycles <= u64::from(flow.schedule.total_cycles),
        "{origin}: cycle bound {} exceeds scheduled {}",
        report.min_total_cycles,
        flow.schedule.total_cycles
    );
    let pipeline = analyze_loops(&flow.ir, &flow.schedule, &device);
    for bound in &report.loops {
        let measured = pipeline
            .iter()
            .find(|info| info.header == bound.header)
            .unwrap_or_else(|| panic!("{origin}: loop bb{} missing", bound.header.index()));
        assert!(
            bound.min_recurrence_ii <= measured.recurrence_ii,
            "{origin}: recurrence bound {} exceeds measured {}",
            bound.min_recurrence_ii,
            measured.recurrence_ii
        );
        assert!(
            bound.port_pressure_ii <= measured.resource_ii,
            "{origin}: pressure bound {} exceeds measured {}",
            bound.port_pressure_ii,
            measured.resource_ii
        );
        assert!(
            bound.min_ii() <= measured.achieved_ii,
            "{origin}: II bound {} exceeds achieved {}",
            bound.min_ii(),
            measured.achieved_ii
        );
    }
}

#[test]
fn every_real_world_kernel_verifies_and_respects_the_bounds() {
    for kernel in hls_progen::all_kernels() {
        assert_verified_and_bounded(
            &format!("kernel {}/{}", kernel.suite, kernel.name),
            &kernel.function,
        );
    }
}

#[test]
fn every_synthetic_family_verifies_and_respects_the_bounds() {
    for family in [ProgramFamily::StraightLine, ProgramFamily::Control] {
        let config = match family {
            ProgramFamily::StraightLine => SyntheticConfig::straight_line(),
            ProgramFamily::Control => SyntheticConfig::control(),
        };
        let mut generator = ProgramGenerator::new(config, 0xC0FFEE);
        for func in generator.generate_many(32) {
            assert_verified_and_bounded(&format!("family {family:?}/{}", func.name), &func);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any generator seed yields programs that verify cleanly and whose
    /// analytic bounds stay below the simulated ground truth.
    #[test]
    fn arbitrary_seeds_verify_and_respect_the_bounds(seed in 0u64..u64::MAX) {
        for family in [ProgramFamily::StraightLine, ProgramFamily::Control] {
            let mut generator =
                ProgramGenerator::new(SyntheticConfig::tiny(family), seed);
            for func in generator.generate_many(3) {
                assert_verified_and_bounded(
                    &format!("seed {seed} family {family:?}/{}", func.name),
                    &func,
                );
            }
        }
    }
}
