//! `hls_gnn_analyze` — static analysis over the HLS IR.
//!
//! Three layers, each usable on its own:
//!
//! - the **verifier** (re-exported from [`hls_ir::verify`]): exhaustive
//!   structural invariants over [`hls_ir::ir::IrFunction`] — SSA dominance,
//!   per-opcode operand shape, terminator discipline, phi placement — with
//!   typed [`Diagnostic`]s locating every violation;
//! - the **dataflow framework** ([`dataflow`]): a generic forward/backward
//!   worklist solver over the CFG, plus the canonical clients — dominator
//!   tree, def-use chains, live variables and natural-loop-nest detection;
//! - the **bound analyses** ([`bounds`]): analytic *lower* bounds on the
//!   quantities the simulator measures — critical-path cycles from device
//!   operator latencies, recurrence-constrained minimum II from loop-carried
//!   dependence cycles, and memory-port pressure per array. Every bound is
//!   guaranteed to be `<=` the corresponding `hls_sim` ground truth, which
//!   makes them safe both as GNN features (`HLSGNN_FEATURES=analytic`) and
//!   as a design-space-exploration pre-filter.

pub mod bounds;
pub mod dataflow;

pub use bounds::{analyze_bounds, BoundsReport, LoopBounds};
pub use dataflow::{
    solve, DataflowAnalysis, DataflowSolution, DefUseChains, Direction, DominatorTree,
    LiveVariables, LoopInfo, LoopNest,
};
pub use hls_ir::verify::{self, Diagnostic, DiagnosticKind};

/// Verifies a function and maps failures onto the IR error type, so analysis
/// entry points compose with the rest of the pipeline's `Result` plumbing.
///
/// # Errors
/// Returns [`hls_ir::Error::Verification`] carrying every diagnostic when the
/// function is structurally invalid.
pub fn verified(ir: &hls_ir::ir::IrFunction) -> hls_ir::Result<()> {
    verify::verify_function(ir).map_err(hls_ir::Error::Verification)
}
