//! Generic dataflow framework over the IR control-flow graph.
//!
//! The solver is the classic iterative worklist algorithm: facts attached to
//! block entries and exits, a meet over predecessor (or successor) facts, and
//! a per-block transfer function, iterated to a fixed point. Blocks are
//! visited in reverse postorder for forward problems and postorder for
//! backward problems, so structured CFGs converge in a handful of passes.
//!
//! The canonical clients live here too: the dominator tree (shared with the
//! verifier), def-use chains, live variables, and natural-loop detection.
//! They are both useful on their own and serve as reference implementations
//! for new analyses.

use std::collections::VecDeque;

use hls_ir::ir::{BlockId, IrFunction, OpId};
use hls_ir::opcode::Opcode;
use hls_ir::verify::{dominates, immediate_dominators, reverse_postorder};

/// Direction a dataflow problem propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry block along CFG edges.
    Forward,
    /// Facts flow from exit blocks against CFG edges.
    Backward,
}

/// A dataflow problem: a fact lattice with a meet, plus a transfer function.
///
/// Facts must form a lattice under [`DataflowAnalysis::meet`] with
/// [`DataflowAnalysis::top`] as the identity, and the transfer function must
/// be monotone — the solver iterates until nothing changes and relies on
/// those properties to terminate.
pub trait DataflowAnalysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The initial fact for every block (the lattice top / meet identity).
    fn top(&self, ir: &IrFunction) -> Self::Fact;

    /// The fact at the CFG boundary: the entry block's input for forward
    /// problems, each exit block's output for backward problems.
    fn boundary(&self, ir: &IrFunction) -> Self::Fact {
        self.top(ir)
    }

    /// Combines facts arriving over multiple CFG edges.
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Pushes a fact through one block.
    fn transfer(&self, ir: &IrFunction, block: BlockId, fact: &Self::Fact) -> Self::Fact;
}

/// Fixed-point solution of a dataflow problem: one fact per block boundary.
#[derive(Debug, Clone)]
pub struct DataflowSolution<F> {
    /// Fact at each block's entry, indexed by block id.
    pub entry: Vec<F>,
    /// Fact at each block's exit, indexed by block id.
    pub exit: Vec<F>,
}

impl<F> DataflowSolution<F> {
    /// Fact holding at the entry of `block`.
    pub fn at_entry(&self, block: BlockId) -> &F {
        &self.entry[block.index()]
    }

    /// Fact holding at the exit of `block`.
    pub fn at_exit(&self, block: BlockId) -> &F {
        &self.exit[block.index()]
    }
}

/// Runs the worklist solver to a fixed point.
pub fn solve<A: DataflowAnalysis>(ir: &IrFunction, analysis: &A) -> DataflowSolution<A::Fact> {
    let block_count = ir.block_count();
    let mut entry: Vec<A::Fact> = vec![analysis.top(ir); block_count];
    let mut exit: Vec<A::Fact> = vec![analysis.top(ir); block_count];
    if block_count == 0 {
        return DataflowSolution { entry, exit };
    }

    let mut order = reverse_postorder(ir);
    if analysis.direction() == Direction::Backward {
        order.reverse();
    }
    // Unreachable blocks never enter the RPO; still give them a stable seed
    // pass so their facts are the transfer of top rather than raw top.
    for block in ir.blocks.iter().map(|b| b.id) {
        if !order.contains(&block) {
            order.push(block);
        }
    }

    let mut queued = vec![true; block_count];
    let mut worklist: VecDeque<BlockId> = order.iter().copied().collect();
    let boundary = analysis.boundary(ir);

    while let Some(block) = worklist.pop_front() {
        queued[block.index()] = false;
        let data = ir.block(block);
        match analysis.direction() {
            Direction::Forward => {
                let mut input = if data.preds.is_empty() {
                    boundary.clone()
                } else {
                    let mut acc = analysis.top(ir);
                    for &pred in &data.preds {
                        acc = analysis.meet(&acc, &exit[pred.index()]);
                    }
                    acc
                };
                std::mem::swap(&mut entry[block.index()], &mut input);
                let output = analysis.transfer(ir, block, &entry[block.index()]);
                if output != exit[block.index()] {
                    exit[block.index()] = output;
                    for &succ in &data.succs {
                        if !queued[succ.index()] {
                            queued[succ.index()] = true;
                            worklist.push_back(succ);
                        }
                    }
                }
            }
            Direction::Backward => {
                let mut input = if data.succs.is_empty() {
                    boundary.clone()
                } else {
                    let mut acc = analysis.top(ir);
                    for &succ in &data.succs {
                        acc = analysis.meet(&acc, &entry[succ.index()]);
                    }
                    acc
                };
                std::mem::swap(&mut exit[block.index()], &mut input);
                let output = analysis.transfer(ir, block, &exit[block.index()]);
                if output != entry[block.index()] {
                    entry[block.index()] = output;
                    for &pred in &data.preds {
                        if !queued[pred.index()] {
                            queued[pred.index()] = true;
                            worklist.push_back(pred);
                        }
                    }
                }
            }
        }
    }

    DataflowSolution { entry, exit }
}

/// Dominator tree of a function's CFG.
///
/// Thin, cached wrapper over the verifier's iterative dominator computation;
/// unreachable blocks have no dominator information.
#[derive(Debug, Clone)]
pub struct DominatorTree {
    idom: Vec<Option<BlockId>>,
}

impl DominatorTree {
    /// Builds the tree for a function.
    pub fn build(ir: &IrFunction) -> Self {
        DominatorTree { idom: immediate_dominators(ir) }
    }

    /// Immediate dominator of `block` (`None` for the entry block and for
    /// unreachable blocks).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        let parent = self.idom.get(block.index()).copied().flatten()?;
        if parent == block {
            None
        } else {
            Some(parent)
        }
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        dominates(&self.idom, a, b)
    }

    /// The raw immediate-dominator table, indexed by block id. The entry
    /// block maps to itself; unreachable blocks map to `None`.
    pub fn as_slice(&self) -> &[Option<BlockId>] {
        &self.idom
    }
}

/// Def-use chains: for every operation, the operations consuming its result.
#[derive(Debug, Clone)]
pub struct DefUseChains {
    users: Vec<Vec<OpId>>,
}

impl DefUseChains {
    /// Builds the chains for a function.
    pub fn build(ir: &IrFunction) -> Self {
        DefUseChains { users: ir.users() }
    }

    /// Operations consuming the result of `op`.
    pub fn users(&self, op: OpId) -> &[OpId] {
        &self.users[op.index()]
    }

    /// Number of uses of `op`'s result.
    pub fn use_count(&self, op: OpId) -> usize {
        self.users[op.index()].len()
    }

    /// Operations whose result is never consumed. Side-effecting and control
    /// operations (stores, ports, branches, returns) are excluded — a "dead"
    /// store is still observable.
    pub fn dead_values<'a>(&'a self, ir: &'a IrFunction) -> impl Iterator<Item = OpId> + 'a {
        ir.iter_ops()
            .filter(|op| {
                !matches!(
                    op.opcode,
                    Opcode::Store
                        | Opcode::WritePort
                        | Opcode::Br
                        | Opcode::Ret
                        | Opcode::Call
                        | Opcode::Alloca
                        | Opcode::ReadPort
                )
            })
            .filter(|op| self.users[op.id.index()].is_empty())
            .map(|op| op.id)
    }
}

/// Live-variable analysis: which operation results are live at each block
/// boundary. The fact is one bit per operation, indexed by [`OpId`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveVariables;

impl DataflowAnalysis for LiveVariables {
    type Fact = Vec<bool>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn top(&self, ir: &IrFunction) -> Vec<bool> {
        vec![false; ir.op_count()]
    }

    fn meet(&self, a: &Vec<bool>, b: &Vec<bool>) -> Vec<bool> {
        a.iter().zip(b.iter()).map(|(x, y)| *x || *y).collect()
    }

    fn transfer(&self, ir: &IrFunction, block: BlockId, live_out: &Vec<bool>) -> Vec<bool> {
        let mut live = live_out.clone();
        for &op_id in ir.block(block).ops.iter().rev() {
            live[op_id.index()] = false;
            let op = ir.op(op_id);
            for operand in &op.operands {
                live[operand.index()] = true;
            }
        }
        live
    }
}

impl LiveVariables {
    /// Convenience entry point returning live-in/live-out per block.
    pub fn solve(ir: &IrFunction) -> DataflowSolution<Vec<bool>> {
        solve(ir, &LiveVariables)
    }

    /// Maximum number of simultaneously live values at any block boundary —
    /// a cheap register-pressure proxy.
    pub fn max_pressure(solution: &DataflowSolution<Vec<bool>>) -> usize {
        solution
            .entry
            .iter()
            .chain(solution.exit.iter())
            .map(|fact| fact.iter().filter(|live| **live).count())
            .max()
            .unwrap_or(0)
    }
}

/// One natural loop of the CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopInfo {
    /// Header block (the target of at least one back edge).
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, header first, ascending thereafter.
    pub blocks: Vec<BlockId>,
    /// Nesting depth: 1 for outermost loops.
    pub depth: u32,
    /// Header of the innermost enclosing loop, if any.
    pub parent: Option<BlockId>,
}

impl LoopInfo {
    /// True when `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }
}

/// The natural-loop forest of a function.
#[derive(Debug, Clone)]
pub struct LoopNest {
    /// Loops in header order; parents precede children.
    pub loops: Vec<LoopInfo>,
}

impl LoopNest {
    /// Detects natural loops from back edges (`latch -> header` where the
    /// header dominates the latch) and nests them by body inclusion.
    pub fn build(ir: &IrFunction) -> Self {
        let dom = DominatorTree::build(ir);
        let mut loops: Vec<LoopInfo> = Vec::new();

        for block in &ir.blocks {
            for &succ in &block.succs {
                if !dom.dominates(succ, block.id) {
                    continue;
                }
                // `block -> succ` is a back edge; collect the natural loop by
                // walking predecessors backwards from the latch until the
                // header stops the walk.
                let header = succ;
                let mut body = vec![header];
                let mut stack = vec![block.id];
                while let Some(current) = stack.pop() {
                    if body.contains(&current) {
                        continue;
                    }
                    body.push(current);
                    for &pred in &ir.block(current).preds {
                        stack.push(pred);
                    }
                }
                body.sort_by_key(|b| b.index());
                body.retain(|b| *b != header);
                body.insert(0, header);

                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    // Several back edges share one header: merge the bodies.
                    existing.latches.push(block.id);
                    for b in body {
                        if !existing.blocks.contains(&b) {
                            existing.blocks.push(b);
                        }
                    }
                    existing.blocks[1..].sort_by_key(|b| b.index());
                } else {
                    loops.push(LoopInfo {
                        header,
                        latches: vec![block.id],
                        blocks: body,
                        depth: 1,
                        parent: None,
                    });
                }
            }
        }

        loops.sort_by_key(|l| l.header.index());

        // Nest: a loop's parent is the smallest strictly-enclosing loop.
        let snapshots: Vec<(BlockId, Vec<BlockId>)> =
            loops.iter().map(|l| (l.header, l.blocks.clone())).collect();
        for l in &mut loops {
            let mut best: Option<&(BlockId, Vec<BlockId>)> = None;
            for candidate in &snapshots {
                if candidate.0 != l.header
                    && candidate.1.contains(&l.header)
                    && best.is_none_or(|b| candidate.1.len() < b.1.len())
                {
                    best = Some(candidate);
                }
            }
            l.parent = best.map(|b| b.0);
        }
        let parents: Vec<(BlockId, Option<BlockId>)> =
            loops.iter().map(|l| (l.header, l.parent)).collect();
        for l in &mut loops {
            let mut depth = 1;
            let mut current = l.parent;
            while let Some(header) = current {
                depth += 1;
                current = parents.iter().find(|(h, _)| *h == header).and_then(|(_, p)| *p);
            }
            l.depth = depth;
        }

        LoopNest { loops }
    }

    /// The innermost loop containing `block`, if any.
    pub fn innermost(&self, block: BlockId) -> Option<&LoopInfo> {
        self.loops.iter().filter(|l| l.contains(block)).max_by_key(|l| l.depth)
    }

    /// Nesting depth of `block` (0 outside any loop).
    pub fn depth_of(&self, block: BlockId) -> u32 {
        self.innermost(block).map_or(0, |l| l.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::ast::{BinaryOp, Expr, Function, FunctionBuilder, Stmt};
    use hls_ir::lower::lower_function;
    use hls_ir::types::{ArrayType, ScalarType};

    fn loopy() -> Function {
        let mut f = FunctionBuilder::new("loopy");
        let x = f.array_param("x", ArrayType::new(ScalarType::i32(), 8));
        let acc = f.local("acc", ScalarType::signed(48));
        let i = f.local("i", ScalarType::i32());
        f.push(Stmt::for_loop(
            i,
            0,
            8,
            1,
            vec![Stmt::assign(
                acc,
                Expr::binary(BinaryOp::Add, Expr::var(acc), Expr::index(x, Expr::var(i))),
            )],
        ));
        f.ret(acc);
        f.finish().unwrap()
    }

    fn nested() -> Function {
        let mut f = FunctionBuilder::new("nested");
        let acc = f.local("acc", ScalarType::signed(48));
        let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
        f.push(Stmt::for_loop(
            i,
            0,
            4,
            1,
            vec![Stmt::for_loop(
                j,
                0,
                4,
                1,
                vec![Stmt::assign(acc, Expr::binary(BinaryOp::Add, Expr::var(acc), Expr::var(j)))],
            )],
        ));
        f.ret(acc);
        f.finish().unwrap()
    }

    #[test]
    fn dominator_tree_orders_structured_cfg() {
        let ir = lower_function(&loopy()).unwrap();
        let dom = DominatorTree::build(&ir);
        let entry = ir.blocks[0].id;
        for block in &ir.blocks {
            assert!(dom.dominates(entry, block.id));
            assert!(dom.dominates(block.id, block.id));
        }
        assert!(dom.idom(entry).is_none());
    }

    #[test]
    fn def_use_chains_match_operand_lists() {
        let ir = lower_function(&loopy()).unwrap();
        let chains = DefUseChains::build(&ir);
        for op in ir.iter_ops() {
            for operand in &op.operands {
                assert!(chains.users(*operand).contains(&op.id));
            }
        }
        // A `ret`'s operand is used; the ret itself defines nothing anyone uses.
        let ret = ir.iter_ops().find(|op| op.opcode == Opcode::Ret).unwrap();
        assert_eq!(chains.use_count(ret.id), 0);
    }

    #[test]
    fn liveness_keeps_loop_carried_values_live_in_the_body() {
        let ir = lower_function(&loopy()).unwrap();
        let live = LiveVariables::solve(&ir);
        let phi = ir.iter_ops().find(|op| op.opcode == Opcode::Phi).unwrap();
        // The accumulator phi is consumed by the body, so it is live into the
        // block where its latched update happens.
        let user_block = ir
            .iter_ops()
            .find(|op| op.operands.contains(&phi.id) && op.opcode != Opcode::Phi)
            .map(|op| op.block)
            .unwrap();
        assert!(live.at_entry(user_block)[phi.id.index()]);
        assert!(LiveVariables::max_pressure(&live) >= 1);
    }

    #[test]
    fn loop_nest_finds_single_loop() {
        let ir = lower_function(&loopy()).unwrap();
        let nest = LoopNest::build(&ir);
        assert_eq!(nest.loops.len(), 1);
        let l = &nest.loops[0];
        assert_eq!(l.depth, 1);
        assert!(l.parent.is_none());
        assert!(ir.block(l.header).is_loop_header);
        assert!(l.blocks.len() >= 2, "header plus at least the body/latch");
        for latch in &l.latches {
            assert!(l.contains(*latch));
        }
    }

    #[test]
    fn loop_nest_orders_nested_loops_by_depth() {
        let ir = lower_function(&nested()).unwrap();
        let nest = LoopNest::build(&ir);
        assert_eq!(nest.loops.len(), 2);
        let outer = nest.loops.iter().find(|l| l.depth == 1).unwrap();
        let inner = nest.loops.iter().find(|l| l.depth == 2).unwrap();
        assert_eq!(inner.parent, Some(outer.header));
        assert!(outer.blocks.len() > inner.blocks.len());
        assert!(inner.blocks.iter().all(|b| outer.contains(*b)));
        assert_eq!(nest.depth_of(inner.header), 2);
        assert_eq!(nest.depth_of(ir.blocks[0].id), 0);
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut f = FunctionBuilder::new("flat");
        let a = f.param("a", ScalarType::i32());
        let out = f.local("out", ScalarType::i32());
        f.assign(out, Expr::binary(BinaryOp::Add, Expr::var(a), Expr::constant(1)));
        f.ret(out);
        let ir = lower_function(&f.finish().unwrap()).unwrap();
        assert!(LoopNest::build(&ir).loops.is_empty());
        let chains = DefUseChains::build(&ir);
        assert_eq!(chains.dead_values(&ir).count(), 0, "everything feeds the return");
    }
}
