//! Analytic lower bounds on scheduled QoR, derived without running the flow.
//!
//! Every bound here is *sound* with respect to the `hls_sim` list scheduler:
//!
//! - [`BoundsReport::min_total_cycles`] never exceeds the scheduled
//!   `total_cycles` (and hence the HLS report's `latency_cycles`). Blocks
//!   execute as successive FSM super-states, so each block contributes at
//!   least one cycle plus the longest latency-weighted def-use chain inside
//!   it.
//! - [`LoopBounds::min_recurrence_ii`] never exceeds the pipelining
//!   analysis's recurrence-constrained II: a loop-carried dependence cycle
//!   must traverse its operator latencies once per iteration.
//! - [`LoopBounds::port_pressure_ii`] never exceeds the resource-constrained
//!   II: a single-ported memory serves one access per cycle, so the most
//!   contended array bounds the iteration rate.
//!
//! Soundness is what makes the bounds usable as machine-learning features
//! (they are monotone correlates of the labels, never optimistic noise
//! ceilings) and as a design-space-exploration pre-filter (a point whose
//! *lower* bound already violates a constraint can be discarded without
//! lowering or predicting it).

use std::collections::HashMap;

use hls_ir::ast::VarId;
use hls_ir::ir::{BlockId, IrFunction, OpId};
use hls_ir::opcode::Opcode;
use hls_ir::types::ValueType;
use hls_sim::device::FpgaDevice;
use hls_sim::library::characterize;

use crate::dataflow::LoopNest;

/// Analytic bounds for one natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    /// Header block of the loop.
    pub header: BlockId,
    /// Lower bound on the recurrence-constrained II, from the longest
    /// latency-weighted loop-carried dependence cycle (at least 1).
    pub min_recurrence_ii: u32,
    /// Lower bound on the resource-constrained II, from accesses to the most
    /// contended array per iteration (at least 1).
    pub port_pressure_ii: u32,
    /// Per-array access counts inside the loop body, ascending by variable.
    pub pressure_per_array: Vec<(VarId, u32)>,
}

impl LoopBounds {
    /// Lower bound on the achievable II: both constraints must hold.
    pub fn min_ii(&self) -> u32 {
        self.min_recurrence_ii.max(self.port_pressure_ii)
    }
}

/// Function-level analytic bounds plus the per-operation features derived
/// from them.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsReport {
    /// Lower bound on the scheduled `total_cycles`.
    pub min_total_cycles: u64,
    /// Per-loop II bounds, in header order.
    pub loops: Vec<LoopBounds>,
    /// Per-operation latency-weighted depth of the longest def-use chain
    /// ending at the operation within its block (indexed by [`OpId`]).
    pub op_depth: Vec<u32>,
    /// Per-operation flag: the operation sits on a loop-carried dependence
    /// cycle (indexed by [`OpId`]).
    pub on_recurrence: Vec<bool>,
    /// Per-operation memory-port pressure: for loads/stores inside a loop,
    /// the access count of their array in the innermost enclosing loop;
    /// 0 elsewhere (indexed by [`OpId`]).
    pub op_port_pressure: Vec<u32>,
}

impl BoundsReport {
    /// Lower bound on the achievable II of the innermost hottest loop
    /// (1 when the function has no loops).
    pub fn max_loop_min_ii(&self) -> u32 {
        self.loops.iter().map(LoopBounds::min_ii).max().unwrap_or(1)
    }

    /// The three analytic node features for one operation, in the order
    /// `[depth, on_recurrence, port_pressure]`.
    pub fn node_features(&self, op: OpId) -> [f32; 3] {
        let index = op.index();
        [
            self.op_depth.get(index).copied().unwrap_or(0) as f32,
            if self.on_recurrence.get(index).copied().unwrap_or(false) { 1.0 } else { 0.0 },
            self.op_port_pressure.get(index).copied().unwrap_or(0) as f32,
        ]
    }
}

fn declared_type(decls: &[(VarId, ValueType)], array: Option<VarId>) -> Option<ValueType> {
    let target = array?;
    decls.iter().find(|(var, _)| *var == target).map(|(_, ty)| *ty)
}

/// Computes the analytic bounds for a structurally valid function.
///
/// The analysis assumes the IR passes [`hls_ir::verify::verify_function`];
/// run the verifier first on untrusted input (the lint driver and the
/// simulator flow both do).
pub fn analyze_bounds(
    ir: &IrFunction,
    decls: &[(VarId, ValueType)],
    device: &FpgaDevice,
) -> BoundsReport {
    let op_count = ir.op_count();

    // Operator latencies from the device characterisation library — the same
    // table the scheduler uses, so the bounds and the ground truth cannot
    // drift apart.
    let latency: Vec<u32> = ir
        .iter_ops()
        .map(|op| characterize(op, declared_type(decls, op.array), device).latency)
        .collect();

    // Linear scheduling positions: blocks in id order, ops in block order —
    // exactly the order the list scheduler visits them. Def-use edges that go
    // forward in this order are guaranteed to constrain the schedule.
    let mut position = vec![usize::MAX; op_count];
    let mut cursor = 0usize;
    for block in &ir.blocks {
        for &op_id in &block.ops {
            position[op_id.index()] = cursor;
            cursor += 1;
        }
    }

    // Per-block latency-weighted chain depth, and its per-op form.
    let mut op_depth = vec![0u32; op_count];
    let mut min_total_cycles = 0u64;
    for block in &ir.blocks {
        let mut block_max = 0u32;
        for &op_id in &block.ops {
            let op = ir.op(op_id);
            let mut depth = 0u32;
            for operand in &op.operands {
                let same_block = ir.op(*operand).block == block.id;
                if same_block && position[operand.index()] < position[op_id.index()] {
                    depth = depth.max(op_depth[operand.index()]);
                }
            }
            depth += latency[op_id.index()];
            op_depth[op_id.index()] = depth;
            block_max = block_max.max(depth);
        }
        // Every block occupies at least one FSM state, plus one state per
        // cycle of registered latency along its longest chain.
        min_total_cycles += 1 + u64::from(block_max);
    }

    let nest = LoopNest::build(ir);
    let mut on_recurrence = vec![false; op_count];
    let mut loops = Vec::with_capacity(nest.loops.len());
    let mut op_port_pressure = vec![0u32; op_count];

    for info in &nest.loops {
        // --- Recurrence bound -------------------------------------------
        // For each header phi whose latched operand is defined inside the
        // loop, take the longest latency path phi -> ... -> latched along
        // forward def-use edges; the schedule must spend that many cycles
        // between consuming and re-producing the value each iteration.
        let mut min_recurrence_ii = 1u32;
        for &op_id in &ir.block(info.header).ops {
            let phi = ir.op(op_id);
            if phi.opcode != Opcode::Phi || phi.operands.len() < 2 {
                continue;
            }
            let latched = phi.operands[1];
            if !info.contains(ir.op(latched).block) {
                continue;
            }

            // Longest latency-weighted distance from the phi, following only
            // position-increasing edges (those are the ones the scheduler has
            // already resolved when it reaches the user).
            let mut dist: Vec<Option<u32>> = vec![None; op_count];
            dist[op_id.index()] = Some(0);
            let mut order: Vec<OpId> = ir
                .iter_ops()
                .filter(|op| position[op.id.index()] != usize::MAX)
                .map(|op| op.id)
                .collect();
            order.sort_by_key(|id| position[id.index()]);
            for user in &order {
                if position[user.index()] <= position[op_id.index()] {
                    continue;
                }
                let mut best: Option<u32> = None;
                for operand in &ir.op(*user).operands {
                    if position[operand.index()] < position[user.index()] {
                        if let Some(d) = dist[operand.index()] {
                            best = Some(best.unwrap_or(0).max(d));
                        }
                    }
                }
                if let Some(b) = best {
                    dist[user.index()] = Some(b + latency[user.index()]);
                }
            }

            if let Some(chain) = dist[latched.index()] {
                min_recurrence_ii = min_recurrence_ii.max(chain.max(1));
                // Mark the cycle: ops that the phi reaches and that reach the
                // latched value (backwards over the same forward edges).
                let mut reaches = vec![false; op_count];
                reaches[latched.index()] = true;
                for user in order.iter().rev() {
                    if !reaches[user.index()] {
                        continue;
                    }
                    for operand in &ir.op(*user).operands {
                        if position[operand.index()] < position[user.index()]
                            && dist[operand.index()].is_some()
                        {
                            reaches[operand.index()] = true;
                        }
                    }
                }
                for op in ir.iter_ops() {
                    if reaches[op.id.index()] && dist[op.id.index()].is_some() {
                        on_recurrence[op.id.index()] = true;
                    }
                }
            }
        }

        // --- Port-pressure bound ----------------------------------------
        // Count accesses over the contiguous `header..=latch` block range —
        // the scheduler's per-iteration window. The natural-loop body can be
        // a *superset* of that window: the front end places an outer loop's
        // latch (the increment block) at a lower index than its nested
        // loops, so the inner loops' memory traffic belongs to the inner
        // windows only. Counting the natural body would overshoot the
        // scheduler's own per-iteration measure and break the lower-bound
        // guarantee.
        let latch = info
            .latches
            .iter()
            .map(|b| b.index())
            .filter(|&index| index >= info.header.index())
            .max()
            .unwrap_or(info.header.index());
        let mut per_array: HashMap<VarId, u32> = HashMap::new();
        for index in info.header.index()..=latch {
            for &op_id in &ir.blocks[index].ops {
                let op = ir.op(op_id);
                if matches!(op.opcode, Opcode::Load | Opcode::Store) {
                    if let Some(array) = op.array {
                        *per_array.entry(array).or_insert(0) += 1;
                    }
                }
            }
        }
        let port_pressure_ii = per_array.values().copied().max().unwrap_or(1).max(1);
        let mut pressure_per_array: Vec<(VarId, u32)> = per_array.into_iter().collect();
        pressure_per_array.sort();

        loops.push(LoopBounds {
            header: info.header,
            min_recurrence_ii,
            port_pressure_ii,
            pressure_per_array,
        });
    }

    // Per-op pressure feature from the innermost enclosing loop.
    for op in ir.iter_ops() {
        if !matches!(op.opcode, Opcode::Load | Opcode::Store) {
            continue;
        }
        let Some(array) = op.array else { continue };
        let Some(inner) = nest.innermost(op.block) else { continue };
        if let Some(bound) = loops.iter().find(|l| l.header == inner.header) {
            if let Some((_, count)) = bound.pressure_per_array.iter().find(|(var, _)| *var == array)
            {
                op_port_pressure[op.id.index()] = *count;
            }
        }
    }

    BoundsReport { min_total_cycles, loops, op_depth, on_recurrence, op_port_pressure }
}

/// Effective port-pressure II when an array is split across `banks` equal
/// banks (cyclic or block partitioning): each bank serves one access per
/// cycle, so pressure divides by the bank count, rounded up.
pub fn banked_pressure(accesses: u32, banks: u32) -> u32 {
    accesses.div_ceil(banks.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::ast::{BinaryOp, Expr, Function, FunctionBuilder, Stmt};
    use hls_ir::lower::lower_function;
    use hls_ir::types::{ArrayType, ScalarType};
    use hls_sim::flow::run_flow;
    use hls_sim::pipeline::analyze_loops;

    fn decls(func: &Function) -> Vec<(VarId, ValueType)> {
        func.vars().map(|(id, d)| (id, d.ty)).collect()
    }

    fn reduction() -> Function {
        let mut f = FunctionBuilder::new("reduction");
        let x = f.array_param("x", ArrayType::new(ScalarType::i32(), 16));
        let acc = f.local("acc", ScalarType::signed(64));
        let i = f.local("i", ScalarType::i32());
        f.push(Stmt::for_loop(
            i,
            0,
            16,
            1,
            vec![Stmt::assign(
                acc,
                Expr::binary(
                    BinaryOp::Add,
                    Expr::var(acc),
                    Expr::binary(
                        BinaryOp::Mul,
                        Expr::index(x, Expr::var(i)),
                        Expr::index(x, Expr::var(i)),
                    ),
                ),
            )],
        ));
        f.ret(acc);
        f.finish().unwrap()
    }

    fn check_sound(func: &Function) {
        let device = FpgaDevice::default();
        let flow = run_flow(func, &device).unwrap();
        let report = analyze_bounds(&flow.ir, &decls(func), &device);
        assert!(
            report.min_total_cycles <= u64::from(flow.schedule.total_cycles),
            "cycle bound {} exceeds scheduled {}",
            report.min_total_cycles,
            flow.schedule.total_cycles
        );
        let pipeline = analyze_loops(&flow.ir, &flow.schedule, &device);
        for bound in &report.loops {
            let measured = pipeline
                .iter()
                .find(|info| info.header == bound.header)
                .expect("loop present in pipeline analysis");
            assert!(
                bound.min_recurrence_ii <= measured.recurrence_ii,
                "recurrence bound {} exceeds measured {}",
                bound.min_recurrence_ii,
                measured.recurrence_ii
            );
            assert!(
                bound.port_pressure_ii <= measured.resource_ii,
                "pressure bound {} exceeds measured {}",
                bound.port_pressure_ii,
                measured.resource_ii
            );
            assert!(bound.min_ii() <= measured.achieved_ii);
        }
    }

    #[test]
    fn bounds_are_sound_for_a_reduction_loop() {
        check_sound(&reduction());
    }

    #[test]
    fn reduction_loop_detects_port_pressure_and_recurrence() {
        let func = reduction();
        let device = FpgaDevice::default();
        let ir = lower_function(&func).unwrap();
        let report = analyze_bounds(&ir, &decls(&func), &device);
        assert_eq!(report.loops.len(), 1);
        // Two reads of `x` per iteration.
        assert_eq!(report.loops[0].port_pressure_ii, 2);
        assert!(report.on_recurrence.iter().any(|flag| *flag), "accumulator cycle marked");
        assert!(report.min_total_cycles >= ir.block_count() as u64);
    }

    #[test]
    fn straight_line_bound_counts_registered_latencies() {
        let mut f = FunctionBuilder::new("divchain");
        let a = f.param("a", ScalarType::i32());
        let b = f.param("b", ScalarType::i32());
        let out = f.local("out", ScalarType::i32());
        f.assign(out, Expr::binary(BinaryOp::Div, Expr::var(a), Expr::var(b)));
        f.ret(out);
        let func = f.finish().unwrap();
        let device = FpgaDevice::default();
        let ir = lower_function(&func).unwrap();
        let report = analyze_bounds(&ir, &decls(&func), &device);
        // A 32-bit divider has multi-cycle latency; the bound must see it.
        assert!(report.min_total_cycles > ir.block_count() as u64);
        assert!(report.loops.is_empty());
        check_sound(&func);
    }

    #[test]
    fn node_features_are_exposed_per_op() {
        let func = reduction();
        let device = FpgaDevice::default();
        let ir = lower_function(&func).unwrap();
        let report = analyze_bounds(&ir, &decls(&func), &device);
        let load = ir.iter_ops().find(|op| op.opcode == Opcode::Load).unwrap();
        let features = report.node_features(load.id);
        assert!(features[2] >= 2.0, "load feature carries the array pressure");
        assert_eq!(report.op_depth.len(), ir.op_count());
    }

    #[test]
    fn banked_pressure_divides_and_saturates() {
        assert_eq!(banked_pressure(8, 1), 8);
        assert_eq!(banked_pressure(8, 4), 2);
        assert_eq!(banked_pressure(8, 3), 3);
        assert_eq!(banked_pressure(1, 16), 1);
        assert_eq!(banked_pressure(4, 0), 4);
    }
}
