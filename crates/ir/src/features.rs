//! Table-1 node and edge features.
//!
//! The "off-the-shelf" approach of the paper uses exactly seven node features
//! available right after front-end compilation: node type, bitwidth, opcode
//! category, opcode, is-start-of-path, and cluster group; each edge carries a
//! discrete edge type and a back-edge flag. This module computes those
//! features from an extracted [`IrGraph`]; the ML-side encoding (embeddings,
//! normalisation) lives in the `hls-gnn-core` crate.

use crate::graph::{EdgeKind, IrGraph, NodeKind};
use crate::opcode::{Opcode, OpcodeCategory};

/// The seven off-the-shelf node features of Table 1, in integer-coded form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFeatures {
    /// Node type code (see [`NodeKind::code`]).
    pub node_type: usize,
    /// Raw bitwidth in bits (0 for block nodes), range `0..=256`.
    pub bitwidth: u16,
    /// Opcode category code, or [`NodeFeatures::OPCODE_CATEGORY_MISC`] for
    /// nodes without an opcode (block nodes).
    pub opcode_category: usize,
    /// Opcode code, or [`NodeFeatures::OPCODE_MISC`] for nodes without one.
    pub opcode: usize,
    /// 1 when the node starts a data path (no incoming data edges), else 0.
    pub is_start_of_path: u8,
    /// Cluster group: the basic-block index, or -1 for unclustered nodes.
    pub cluster_group: i32,
}

impl NodeFeatures {
    /// Vocabulary size of the node-type feature.
    pub const NODE_TYPE_VOCAB: usize = NodeKind::COUNT;
    /// Code used for "no opcode category" (block nodes).
    pub const OPCODE_CATEGORY_MISC: usize = OpcodeCategory::COUNT;
    /// Vocabulary size of the opcode-category feature (categories + misc).
    pub const OPCODE_CATEGORY_VOCAB: usize = OpcodeCategory::COUNT + 1;
    /// Code used for "no opcode" (block nodes).
    pub const OPCODE_MISC: usize = Opcode::COUNT;
    /// Vocabulary size of the opcode feature (opcodes + misc).
    pub const OPCODE_VOCAB: usize = Opcode::COUNT + 1;
    /// Number of bitwidth buckets produced by [`NodeFeatures::bitwidth_bucket`].
    pub const BITWIDTH_BUCKETS: usize = 9;
    /// Number of scalar features produced by [`NodeFeatures::to_raw`].
    pub const RAW_LEN: usize = 6;

    /// Buckets the bitwidth logarithmically: `{0, 1, 2-4, 5-8, 9-16, 17-32,
    /// 33-64, 65-128, 129-256}` → `0..9`. Bucketing keeps the embedding
    /// vocabulary small while preserving the precision scale that drives
    /// DSP/LUT mapping decisions.
    pub fn bitwidth_bucket(&self) -> usize {
        match self.bitwidth {
            0 => 0,
            1 => 1,
            2..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            17..=32 => 5,
            33..=64 => 6,
            65..=128 => 7,
            _ => 8,
        }
    }

    /// Flattens the features into raw `f32` values
    /// `[node_type, bitwidth_bucket, opcode_category, opcode, is_start_of_path, cluster_group]`.
    pub fn to_raw(&self) -> [f32; Self::RAW_LEN] {
        [
            self.node_type as f32,
            self.bitwidth_bucket() as f32,
            self.opcode_category as f32,
            self.opcode as f32,
            self.is_start_of_path as f32,
            self.cluster_group as f32,
        ]
    }
}

/// The two edge features of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeFeatures {
    /// Edge type code (see [`EdgeKind::code`]).
    pub edge_type: usize,
    /// 1 for loop back edges, else 0.
    pub is_back_edge: u8,
}

impl EdgeFeatures {
    /// Vocabulary size of the edge-type feature.
    pub const EDGE_TYPE_VOCAB: usize = EdgeKind::COUNT;
    /// Number of distinct relations when edge type and back-edge flag are
    /// combined into a single relation id (used by relational GNNs).
    pub const RELATION_VOCAB: usize = EdgeKind::COUNT * 2;

    /// Combined relation id `edge_type * 2 + is_back_edge`, used by RGCN,
    /// GGNN and FiLM layers.
    pub fn relation(&self) -> usize {
        self.edge_type * 2 + self.is_back_edge as usize
    }
}

/// Computes the Table-1 node features for every node of the graph.
pub fn node_features(graph: &IrGraph) -> Vec<NodeFeatures> {
    let data_in_degree = graph.in_degrees(Some(EdgeKind::Data));
    graph
        .nodes()
        .iter()
        .map(|node| {
            let (opcode_category, opcode) = match node.opcode {
                Some(op) => (op.category().code(), op.code()),
                None => (NodeFeatures::OPCODE_CATEGORY_MISC, NodeFeatures::OPCODE_MISC),
            };
            NodeFeatures {
                node_type: node.kind.code(),
                bitwidth: node.bitwidth,
                opcode_category,
                opcode,
                is_start_of_path: u8::from(
                    node.kind != NodeKind::Block && data_in_degree[node.id.index()] == 0,
                ),
                cluster_group: node.cluster,
            }
        })
        .collect()
}

/// Computes the Table-1 edge features for every edge of the graph (in the
/// same order as [`IrGraph::edges`]).
pub fn edge_features(graph: &IrGraph) -> Vec<EdgeFeatures> {
    graph
        .edges()
        .iter()
        .map(|edge| EdgeFeatures {
            edge_type: edge.kind.code(),
            is_back_edge: u8::from(edge.is_back_edge),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinaryOp, Expr, FunctionBuilder, Stmt};
    use crate::graph::{extract_graph, GraphKind};
    use crate::types::{ArrayType, ScalarType};

    fn cdfg() -> IrGraph {
        let mut f = FunctionBuilder::new("sum");
        let x = f.array_param("x", ArrayType::new(ScalarType::i32(), 8));
        let acc = f.local("acc", ScalarType::i32());
        let i = f.local("i", ScalarType::i32());
        f.assign(acc, Expr::constant(0));
        f.push(Stmt::for_loop(
            i,
            0,
            8,
            1,
            vec![Stmt::assign(
                acc,
                Expr::binary(BinaryOp::Add, Expr::var(acc), Expr::index(x, Expr::var(i))),
            )],
        ));
        f.ret(acc);
        extract_graph(&f.finish().unwrap(), GraphKind::Cdfg).unwrap()
    }

    #[test]
    fn feature_vectors_align_with_graph_size() {
        let g = cdfg();
        assert_eq!(node_features(&g).len(), g.node_count());
        assert_eq!(edge_features(&g).len(), g.edge_count());
    }

    #[test]
    fn port_nodes_start_paths() {
        let g = cdfg();
        let features = node_features(&g);
        for (node, feat) in g.nodes().iter().zip(&features) {
            if node.kind == NodeKind::Port && node.opcode == Some(Opcode::ReadPort) {
                assert_eq!(feat.is_start_of_path, 1, "input ports have no data predecessors");
            }
        }
    }

    #[test]
    fn block_nodes_use_misc_opcode_codes() {
        let g = cdfg();
        let features = node_features(&g);
        let block_feats: Vec<_> = g
            .nodes()
            .iter()
            .zip(&features)
            .filter(|(n, _)| n.kind == NodeKind::Block)
            .map(|(_, f)| f)
            .collect();
        assert!(!block_feats.is_empty());
        for feat in block_feats {
            assert_eq!(feat.opcode, NodeFeatures::OPCODE_MISC);
            assert_eq!(feat.opcode_category, NodeFeatures::OPCODE_CATEGORY_MISC);
            assert_eq!(feat.bitwidth, 0);
        }
    }

    #[test]
    fn bitwidth_buckets_are_monotonic_and_bounded() {
        let widths = [0u16, 1, 3, 8, 12, 32, 50, 100, 256];
        let mut last = 0;
        for (index, &w) in widths.iter().enumerate() {
            let f = NodeFeatures {
                node_type: 0,
                bitwidth: w,
                opcode_category: 0,
                opcode: 0,
                is_start_of_path: 0,
                cluster_group: 0,
            };
            let bucket = f.bitwidth_bucket();
            assert!(bucket < NodeFeatures::BITWIDTH_BUCKETS);
            if index > 0 {
                assert!(bucket >= last);
            }
            last = bucket;
        }
    }

    #[test]
    fn relation_ids_are_dense() {
        let g = cdfg();
        for feat in edge_features(&g) {
            assert!(feat.relation() < EdgeFeatures::RELATION_VOCAB);
        }
    }

    #[test]
    fn back_edges_are_reflected_in_edge_features() {
        let g = cdfg();
        let features = edge_features(&g);
        let back_edges = features.iter().filter(|f| f.is_back_edge == 1).count();
        assert_eq!(back_edges, g.back_edge_count());
        assert!(back_edges > 0);
    }

    #[test]
    fn raw_feature_vector_has_expected_layout() {
        let f = NodeFeatures {
            node_type: 2,
            bitwidth: 32,
            opcode_category: 1,
            opcode: 5,
            is_start_of_path: 1,
            cluster_group: -1,
        };
        let raw = f.to_raw();
        assert_eq!(raw.len(), NodeFeatures::RAW_LEN);
        assert_eq!(raw[0], 2.0);
        assert_eq!(raw[1], 5.0); // 32 bits -> bucket 5
        assert_eq!(raw[4], 1.0);
        assert_eq!(raw[5], -1.0);
    }
}
