//! Behavioural AST for the C-like input language.
//!
//! Programs are expressed as a single top-level [`Function`] containing
//! scalar/array declarations and structured statements (assignments, array
//! stores, `if`/`else`, counted `for` loops). The AST intentionally covers the
//! C subset that HLS tools synthesise well and that the paper's benchmark
//! generator (`ldrgen`) emits: integer arithmetic, bitwise logic, comparisons,
//! array accesses, bounded loops and branches.

use crate::types::{ArrayType, ScalarType, ValueType};
use crate::{Error, Result};

/// Identifier of a declared variable (scalar or array) within one [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the function's declaration list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Unary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Bitwise complement `~x`.
    Not,
}

/// Binary operators of the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinaryOp {
    /// Returns true for comparison operators (which produce 1-bit results).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal with an explicit width.
    Const {
        /// Literal value.
        value: i64,
        /// Width of the literal in bits.
        width: u16,
    },
    /// Read of a scalar variable.
    Var(VarId),
    /// Read of an array element `array[index]`.
    ArrayElem {
        /// The array variable.
        array: VarId,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        arg: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Ternary select `cond ? a : b`.
    Select {
        /// 1-bit condition.
        cond: Box<Expr>,
        /// Value if the condition is true.
        then_val: Box<Expr>,
        /// Value if the condition is false.
        else_val: Box<Expr>,
    },
}

impl Expr {
    /// A 32-bit integer literal.
    pub fn constant(value: i64) -> Expr {
        Expr::Const { value, width: 32 }
    }

    /// An integer literal with an explicit width.
    pub fn constant_with_width(value: i64, width: u16) -> Expr {
        Expr::Const { value, width }
    }

    /// A scalar variable read.
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// An array element read.
    pub fn index(array: VarId, index: Expr) -> Expr {
        Expr::ArrayElem { array, index: Box::new(index) }
    }

    /// A unary operation.
    pub fn unary(op: UnaryOp, arg: Expr) -> Expr {
        Expr::Unary { op, arg: Box::new(arg) }
    }

    /// A binary operation.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// A ternary select.
    pub fn select(cond: Expr, then_val: Expr, else_val: Expr) -> Expr {
        Expr::Select {
            cond: Box::new(cond),
            then_val: Box::new(then_val),
            else_val: Box::new(else_val),
        }
    }

    /// Number of nodes in the expression tree (used by the program generator
    /// to bound expression complexity).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const { .. } | Expr::Var(_) => 1,
            Expr::ArrayElem { index, .. } => 1 + index.size(),
            Expr::Unary { arg, .. } => 1 + arg.size(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
            Expr::Select { cond, then_val, else_val } => {
                1 + cond.size() + then_val.size() + else_val.size()
            }
        }
    }

    fn visit_vars(&self, visit: &mut impl FnMut(VarId, bool)) {
        match self {
            Expr::Const { .. } => {}
            Expr::Var(v) => visit(*v, false),
            Expr::ArrayElem { array, index } => {
                visit(*array, true);
                index.visit_vars(visit);
            }
            Expr::Unary { arg, .. } => arg.visit_vars(visit),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_vars(visit);
                rhs.visit_vars(visit);
            }
            Expr::Select { cond, then_val, else_val } => {
                cond.visit_vars(visit);
                then_val.visit_vars(visit);
                else_val.visit_vars(visit);
            }
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Scalar assignment `target = value;`.
    Assign {
        /// Destination scalar.
        target: VarId,
        /// Assigned expression.
        value: Expr,
    },
    /// Array element store `array[index] = value;`.
    Store {
        /// Destination array.
        array: VarId,
        /// Index expression.
        index: Expr,
        /// Stored expression.
        value: Expr,
    },
    /// Two-armed conditional.
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements executed when the condition is true.
        then_body: Vec<Stmt>,
        /// Statements executed when the condition is false (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// Counted `for` loop with compile-time bounds (the HLS-friendly form).
    For {
        /// Induction variable (must be a scalar declaration).
        induction: VarId,
        /// Initial value of the induction variable.
        start: i64,
        /// Exclusive upper bound.
        end: i64,
        /// Step added each iteration (must be non-zero).
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Function return.
    Return {
        /// Returned expression, if any.
        value: Option<Expr>,
    },
}

impl Stmt {
    /// Builds an `if`/`else` statement.
    pub fn if_else(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then_body, else_body }
    }

    /// Builds a counted `for` loop.
    pub fn for_loop(induction: VarId, start: i64, end: i64, step: i64, body: Vec<Stmt>) -> Stmt {
        Stmt::For { induction, start, end, step: if step == 0 { 1 } else { step }, body }
    }

    /// Builds a scalar assignment.
    pub fn assign(target: VarId, value: Expr) -> Stmt {
        Stmt::Assign { target, value }
    }

    /// Builds an array store.
    pub fn store(array: VarId, index: Expr, value: Expr) -> Stmt {
        Stmt::Store { array, index, value }
    }

    /// Returns true if this statement (recursively) contains control flow.
    pub fn has_control_flow(&self) -> bool {
        matches!(self, Stmt::If { .. } | Stmt::For { .. })
    }

    fn count(&self) -> usize {
        match self {
            Stmt::Assign { .. } | Stmt::Store { .. } | Stmt::Return { .. } => 1,
            Stmt::If { then_body, else_body, .. } => {
                1 + then_body.iter().map(Stmt::count).sum::<usize>()
                    + else_body.iter().map(Stmt::count).sum::<usize>()
            }
            Stmt::For { body, .. } => 1 + body.iter().map(Stmt::count).sum::<usize>(),
        }
    }
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Source-level name.
    pub name: String,
    /// Value type.
    pub ty: ValueType,
    /// True if the variable is a top-level function argument (an I/O port).
    pub is_param: bool,
}

/// A synthesisable top-level function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// All declarations (parameters first, then locals).
    pub decls: Vec<VarDecl>,
    /// Function body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Type of a declared variable.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this function.
    pub fn var_type(&self, id: VarId) -> ValueType {
        self.decls[id.0].ty
    }

    /// Name of a declared variable.
    pub fn var_name(&self, id: VarId) -> &str {
        &self.decls[id.0].name
    }

    /// Iterator over all declared variables and their declarations.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &VarDecl)> {
        self.decls.iter().enumerate().map(|(index, decl)| (VarId(index), decl))
    }

    /// Iterator over the parameter variable ids.
    pub fn params(&self) -> impl Iterator<Item = VarId> + '_ {
        self.decls.iter().enumerate().filter(|(_, d)| d.is_param).map(|(i, _)| VarId(i))
    }

    /// Total number of statements, counted recursively.
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::count).sum()
    }

    /// True if the function contains loops or branches (and therefore lowers
    /// to a CDFG rather than a plain DFG).
    pub fn has_control_flow(&self) -> bool {
        fn walk(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| matches!(s, Stmt::If { .. } | Stmt::For { .. }))
        }
        walk(&self.body)
    }

    fn check_expr(&self, expr: &Expr) -> Result<()> {
        let mut err = None;
        expr.visit_vars(&mut |var, used_as_array| {
            if err.is_some() {
                return;
            }
            if var.0 >= self.decls.len() {
                err = Some(Error::UndeclaredVariable(format!("var#{}", var.0)));
                return;
            }
            let decl = &self.decls[var.0];
            if decl.ty.is_array() != used_as_array {
                err = Some(Error::ShapeMismatch(format!(
                    "variable `{}` used as {} but declared as {}",
                    decl.name,
                    if used_as_array { "array" } else { "scalar" },
                    decl.ty
                )));
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn check_stmts(&self, stmts: &[Stmt]) -> Result<()> {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, value } => {
                    self.check_scalar(*target)?;
                    self.check_expr(value)?;
                }
                Stmt::Store { array, index, value } => {
                    self.check_array(*array)?;
                    self.check_expr(index)?;
                    self.check_expr(value)?;
                }
                Stmt::If { cond, then_body, else_body } => {
                    self.check_expr(cond)?;
                    self.check_stmts(then_body)?;
                    self.check_stmts(else_body)?;
                }
                Stmt::For { induction, body, .. } => {
                    self.check_scalar(*induction)?;
                    self.check_stmts(body)?;
                }
                Stmt::Return { value } => {
                    if let Some(value) = value {
                        self.check_expr(value)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn check_scalar(&self, id: VarId) -> Result<()> {
        let decl = self
            .decls
            .get(id.0)
            .ok_or_else(|| Error::UndeclaredVariable(format!("var#{}", id.0)))?;
        if decl.ty.is_array() {
            return Err(Error::ShapeMismatch(format!(
                "variable `{}` is an array but is used as a scalar",
                decl.name
            )));
        }
        Ok(())
    }

    fn check_array(&self, id: VarId) -> Result<()> {
        let decl = self
            .decls
            .get(id.0)
            .ok_or_else(|| Error::UndeclaredVariable(format!("var#{}", id.0)))?;
        if !decl.ty.is_array() {
            return Err(Error::ShapeMismatch(format!(
                "variable `{}` is a scalar but is used as an array",
                decl.name
            )));
        }
        Ok(())
    }

    /// Validates declarations and variable usage across the whole body.
    ///
    /// # Errors
    /// Returns [`Error::EmptyFunction`] for an empty body,
    /// [`Error::UndeclaredVariable`] or [`Error::ShapeMismatch`] for invalid
    /// variable references.
    pub fn validate(&self) -> Result<()> {
        if self.body.is_empty() {
            return Err(Error::EmptyFunction(self.name.clone()));
        }
        self.check_stmts(&self.body)
    }
}

/// Incremental builder for a [`Function`].
///
/// The builder keeps parameters and locals in declaration order and offers
/// small conveniences (`assign`, `store`, `ret`, `push`) for the common
/// statement kinds; structured statements are built with
/// [`Stmt::for_loop`]/[`Stmt::if_else`] and appended with [`FunctionBuilder::push`].
#[derive(Debug, Clone)]
pub struct FunctionBuilder {
    name: String,
    decls: Vec<VarDecl>,
    body: Vec<Stmt>,
}

impl FunctionBuilder {
    /// Starts building a function with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder { name: name.into(), decls: Vec::new(), body: Vec::new() }
    }

    fn declare(&mut self, name: impl Into<String>, ty: ValueType, is_param: bool) -> VarId {
        let id = VarId(self.decls.len());
        self.decls.push(VarDecl { name: name.into(), ty, is_param });
        id
    }

    /// Declares a scalar input parameter (an I/O port of the design).
    pub fn param(&mut self, name: impl Into<String>, ty: ScalarType) -> VarId {
        self.declare(name, ValueType::Scalar(ty), true)
    }

    /// Declares an array parameter (an AXI/BRAM interface of the design).
    pub fn array_param(&mut self, name: impl Into<String>, ty: ArrayType) -> VarId {
        self.declare(name, ValueType::Array(ty), true)
    }

    /// Declares a scalar local variable.
    pub fn local(&mut self, name: impl Into<String>, ty: ScalarType) -> VarId {
        self.declare(name, ValueType::Scalar(ty), false)
    }

    /// Declares a local array.
    pub fn local_array(&mut self, name: impl Into<String>, ty: ArrayType) -> VarId {
        self.declare(name, ValueType::Array(ty), false)
    }

    /// Appends a scalar assignment.
    pub fn assign(&mut self, target: VarId, value: Expr) {
        self.body.push(Stmt::Assign { target, value });
    }

    /// Appends an array store.
    pub fn store(&mut self, array: VarId, index: Expr, value: Expr) {
        self.body.push(Stmt::Store { array, index, value });
    }

    /// Appends an arbitrary statement (used for loops and branches).
    pub fn push(&mut self, stmt: Stmt) {
        self.body.push(stmt);
    }

    /// Appends `return var;`.
    pub fn ret(&mut self, var: VarId) {
        self.body.push(Stmt::Return { value: Some(Expr::Var(var)) });
    }

    /// Appends `return expr;`.
    pub fn ret_expr(&mut self, value: Expr) {
        self.body.push(Stmt::Return { value: Some(value) });
    }

    /// Number of statements appended so far (top level only).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True if no statements have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Finishes the function, validating declarations and variable usage.
    ///
    /// In debug builds the function is additionally lowered once:
    /// [`crate::lower::lower_function`] verifies its own output against the
    /// structural invariants of [`crate::verify`], so any builder-constructed
    /// program that cannot produce valid IR is rejected at construction time.
    ///
    /// # Errors
    /// Propagates the errors of [`Function::validate`] (and, in debug
    /// builds, of [`crate::lower::lower_function`]).
    pub fn finish(self) -> Result<Function> {
        let func = Function { name: self.name, decls: self.decls, body: self.body };
        func.validate()?;
        #[cfg(debug_assertions)]
        crate::lower::lower_function(&func)?;
        Ok(func)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_function() -> Function {
        let mut f = FunctionBuilder::new("axpy");
        let a = f.param("a", ScalarType::i32());
        let x = f.param("x", ScalarType::i32());
        let y = f.param("y", ScalarType::i32());
        let out = f.local("out", ScalarType::i32());
        f.assign(
            out,
            Expr::binary(
                BinaryOp::Add,
                Expr::binary(BinaryOp::Mul, Expr::var(a), Expr::var(x)),
                Expr::var(y),
            ),
        );
        f.ret(out);
        f.finish().expect("valid function")
    }

    #[test]
    fn builder_produces_valid_function() {
        let f = simple_function();
        assert_eq!(f.name, "axpy");
        assert_eq!(f.params().count(), 3);
        assert_eq!(f.stmt_count(), 2);
        assert!(!f.has_control_flow());
    }

    #[test]
    fn control_flow_detection() {
        let mut f = FunctionBuilder::new("loopy");
        let n = f.param("n", ScalarType::i32());
        let acc = f.local("acc", ScalarType::i32());
        let i = f.local("i", ScalarType::i32());
        f.assign(acc, Expr::constant(0));
        f.push(Stmt::for_loop(
            i,
            0,
            8,
            1,
            vec![Stmt::assign(acc, Expr::binary(BinaryOp::Add, Expr::var(acc), Expr::var(n)))],
        ));
        f.ret(acc);
        let f = f.finish().expect("valid function");
        assert!(f.has_control_flow());
        assert_eq!(f.stmt_count(), 4);
    }

    #[test]
    fn empty_function_is_rejected() {
        let f = FunctionBuilder::new("empty");
        assert!(matches!(f.finish(), Err(Error::EmptyFunction(_))));
    }

    #[test]
    fn array_used_as_scalar_is_rejected() {
        let mut f = FunctionBuilder::new("bad");
        let arr = f.array_param("arr", ArrayType::new(ScalarType::i32(), 8));
        let out = f.local("out", ScalarType::i32());
        // `arr` (an array) used as a scalar operand.
        f.assign(out, Expr::binary(BinaryOp::Add, Expr::var(arr), Expr::constant(1)));
        assert!(matches!(f.finish(), Err(Error::ShapeMismatch(_))));
    }

    #[test]
    fn scalar_used_as_array_is_rejected() {
        let mut f = FunctionBuilder::new("bad2");
        let x = f.param("x", ScalarType::i32());
        let out = f.local("out", ScalarType::i32());
        f.assign(out, Expr::index(x, Expr::constant(0)));
        assert!(matches!(f.finish(), Err(Error::ShapeMismatch(_))));
    }

    #[test]
    fn zero_step_loops_are_normalised() {
        match Stmt::for_loop(VarId(0), 0, 4, 0, vec![]) {
            Stmt::For { step, .. } => assert_eq!(step, 1),
            _ => panic!("expected For"),
        }
    }

    #[test]
    fn expr_size_counts_nodes() {
        let e = Expr::binary(
            BinaryOp::Add,
            Expr::constant(1),
            Expr::select(Expr::constant(1), Expr::constant(2), Expr::constant(3)),
        );
        assert_eq!(e.size(), 6);
    }
}
