//! Operation-level IR produced by lowering the behavioural AST.
//!
//! The IR is a list of operations organised into basic blocks, close to what
//! an HLS front end produces after parsing and `-O1`-style simplification.
//! Scalar data flow is in SSA form (every [`IrOp`] defines at most one value);
//! control flow is explicit through block successor lists and `br` operations.

use crate::ast::VarId;
use crate::opcode::Opcode;
use crate::types::{BitWidth, Signedness};
use std::fmt;

/// Identifier of an operation within an [`IrFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// Creates an operation id from a raw index (mostly useful in tests and
    /// downstream tooling that builds IR programmatically).
    pub fn new(index: usize) -> Self {
        OpId(index)
    }

    /// Index of the operation in the function's operation list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a basic block within an [`IrFunction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) usize);

impl BlockId {
    /// Creates a block id from a raw index.
    pub fn new(index: usize) -> Self {
        BlockId(index)
    }

    /// Index of the block in the function's block list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A single IR operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrOp {
    /// Identifier of this operation.
    pub id: OpId,
    /// Opcode.
    pub opcode: Opcode,
    /// Result bitwidth (1 for control operations without a result).
    pub width: BitWidth,
    /// Signedness of the result.
    pub signedness: Signedness,
    /// Data operands (identifiers of defining operations).
    pub operands: Vec<OpId>,
    /// Block that contains the operation.
    pub block: BlockId,
    /// The array variable touched by memory operations (`load`/`store`/`gep`/`alloca`).
    pub array: Option<VarId>,
    /// Literal value for `const` operations.
    pub const_value: Option<i64>,
    /// Source variable this operation defines, when known (used for debugging
    /// and for port naming).
    pub source_var: Option<VarId>,
}

impl IrOp {
    /// Result bitwidth in bits.
    pub fn bits(&self) -> u16 {
        self.width.bits()
    }

    /// True if the operation defines no datapath value (pure control).
    pub fn is_control(&self) -> bool {
        self.opcode.is_control()
    }
}

impl fmt::Display for IrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{} = {} {}", self.id.0, self.opcode, self.width)?;
        for operand in &self.operands {
            write!(f, " %{}", operand.0)?;
        }
        if let Some(value) = self.const_value {
            write!(f, " #{value}")?;
        }
        Ok(())
    }
}

/// A basic block: a straight-line sequence of operations with a single entry
/// and a single exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// Identifier of this block.
    pub id: BlockId,
    /// Operations in program order.
    pub ops: Vec<OpId>,
    /// Successor blocks in the control-flow graph.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks in the control-flow graph.
    pub preds: Vec<BlockId>,
    /// True if the block is the header of a natural loop.
    pub is_loop_header: bool,
    /// Loop nesting depth of the block (0 outside any loop).
    pub loop_depth: usize,
}

impl BasicBlock {
    fn new(id: BlockId, loop_depth: usize) -> Self {
        BasicBlock {
            id,
            ops: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
            is_loop_header: false,
            loop_depth,
        }
    }
}

/// A lowered function: operations, blocks, and control-flow structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrFunction {
    /// Function name (copied from the AST).
    pub name: String,
    /// All operations, indexed by [`OpId`].
    pub ops: Vec<IrOp>,
    /// All basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
}

impl IrFunction {
    /// Creates an empty function with a single entry block.
    pub fn new(name: impl Into<String>) -> Self {
        let mut f = IrFunction { name: name.into(), ops: Vec::new(), blocks: Vec::new() };
        f.new_block(0);
        f
    }

    /// Creates a new (empty) basic block at the given loop depth and returns its id.
    pub fn new_block(&mut self, loop_depth: usize) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(BasicBlock::new(id, loop_depth));
        id
    }

    /// Adds a control-flow edge between two blocks.
    pub fn add_cfg_edge(&mut self, from: BlockId, to: BlockId) {
        if !self.blocks[from.0].succs.contains(&to) {
            self.blocks[from.0].succs.push(to);
        }
        if !self.blocks[to.0].preds.contains(&from) {
            self.blocks[to.0].preds.push(from);
        }
    }

    /// Appends an operation to a block and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn push_op(
        &mut self,
        block: BlockId,
        opcode: Opcode,
        width: BitWidth,
        signedness: Signedness,
        operands: Vec<OpId>,
        array: Option<VarId>,
        const_value: Option<i64>,
    ) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(IrOp {
            id,
            opcode,
            width,
            signedness,
            operands,
            block,
            array,
            const_value,
            source_var: None,
        });
        self.blocks[block.0].ops.push(id);
        id
    }

    /// Accesses an operation by id.
    pub fn op(&self, id: OpId) -> &IrOp {
        &self.ops[id.0]
    }

    /// Accesses an operation by id, returning `None` for dangling ids.
    ///
    /// Consumers of untrusted IR (the scheduler, the verifier) use this
    /// instead of [`IrFunction::op`] so a corrupt operand list surfaces as a
    /// typed error rather than an index panic.
    pub fn get_op(&self, id: OpId) -> Option<&IrOp> {
        self.ops.get(id.0)
    }

    /// Accesses a block by id, returning `None` for dangling ids.
    pub fn get_block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.0)
    }

    /// Mutable access to an operation by id.
    pub fn op_mut(&mut self, id: OpId) -> &mut IrOp {
        &mut self.ops[id.0]
    }

    /// Accesses a block by id.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Mutable access to a block by id.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0]
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// True if the function has more than one basic block, i.e. it lowers to a
    /// CDFG rather than a DFG.
    pub fn has_control_flow(&self) -> bool {
        self.blocks.len() > 1
    }

    /// Maximum loop nesting depth over all blocks.
    pub fn max_loop_depth(&self) -> usize {
        self.blocks.iter().map(|b| b.loop_depth).max().unwrap_or(0)
    }

    /// Computes, for every operation, the list of operations that use its result.
    pub fn users(&self) -> Vec<Vec<OpId>> {
        let mut users = vec![Vec::new(); self.ops.len()];
        for op in &self.ops {
            for &operand in &op.operands {
                users[operand.0].push(op.id);
            }
        }
        users
    }

    /// Iterator over all operations in creation (program) order.
    pub fn iter_ops(&self) -> impl Iterator<Item = &IrOp> {
        self.ops.iter()
    }

    /// Validates referential integrity of operands, blocks and CFG edges.
    ///
    /// # Panics
    /// Never panics; returns a description of the first violation found.
    pub fn check_integrity(&self) -> Result<(), String> {
        for op in &self.ops {
            if op.block.0 >= self.blocks.len() {
                return Err(format!("op %{} references missing block {}", op.id.0, op.block.0));
            }
            if !self.blocks[op.block.0].ops.contains(&op.id) {
                return Err(format!("op %{} missing from its block op list", op.id.0));
            }
            for operand in &op.operands {
                if operand.0 >= self.ops.len() {
                    return Err(format!(
                        "op %{} references missing operand %{}",
                        op.id.0, operand.0
                    ));
                }
            }
        }
        for block in &self.blocks {
            for succ in &block.succs {
                if succ.0 >= self.blocks.len() {
                    return Err(format!(
                        "block {} references missing successor {}",
                        block.id.0, succ.0
                    ));
                }
                if !self.blocks[succ.0].preds.contains(&block.id) {
                    return Err(format!(
                        "cfg edge {} -> {} missing reverse pred link",
                        block.id.0, succ.0
                    ));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for IrFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "function @{} ({} ops, {} blocks)",
            self.name,
            self.op_count(),
            self.block_count()
        )?;
        for block in &self.blocks {
            writeln!(
                f,
                "bb{} (depth {}{}):",
                block.id.0,
                block.loop_depth,
                if block.is_loop_header { ", header" } else { "" }
            )?;
            for &op in &block.ops {
                writeln!(f, "  {}", self.op(op))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BitWidth;

    fn tiny_ir() -> IrFunction {
        let mut f = IrFunction::new("tiny");
        let entry = BlockId(0);
        let a = f.push_op(
            entry,
            Opcode::ReadPort,
            BitWidth::new(32),
            Signedness::Signed,
            vec![],
            None,
            None,
        );
        let b = f.push_op(
            entry,
            Opcode::ReadPort,
            BitWidth::new(32),
            Signedness::Signed,
            vec![],
            None,
            None,
        );
        let m = f.push_op(
            entry,
            Opcode::Mul,
            BitWidth::new(64),
            Signedness::Signed,
            vec![a, b],
            None,
            None,
        );
        f.push_op(
            entry,
            Opcode::WritePort,
            BitWidth::new(64),
            Signedness::Signed,
            vec![m],
            None,
            None,
        );
        f
    }

    #[test]
    fn push_op_maintains_block_membership() {
        let f = tiny_ir();
        assert_eq!(f.op_count(), 4);
        assert_eq!(f.block(BlockId(0)).ops.len(), 4);
        assert!(f.check_integrity().is_ok());
        assert!(!f.has_control_flow());
    }

    #[test]
    fn users_are_reverse_of_operands() {
        let f = tiny_ir();
        let users = f.users();
        // The multiply (op 2) uses ops 0 and 1.
        assert_eq!(users[0], vec![OpId(2)]);
        assert_eq!(users[1], vec![OpId(2)]);
        // The write port (op 3) uses the multiply.
        assert_eq!(users[2], vec![OpId(3)]);
        assert!(users[3].is_empty());
    }

    #[test]
    fn cfg_edges_are_symmetric() {
        let mut f = IrFunction::new("cfg");
        let b1 = f.new_block(0);
        let b2 = f.new_block(1);
        f.add_cfg_edge(BlockId(0), b1);
        f.add_cfg_edge(b1, b2);
        f.add_cfg_edge(b2, b1);
        assert!(f.check_integrity().is_ok());
        assert!(f.has_control_flow());
        assert_eq!(f.block(b1).preds, vec![BlockId(0), b2]);
        assert_eq!(f.max_loop_depth(), 1);
    }

    #[test]
    fn duplicate_cfg_edges_are_deduplicated() {
        let mut f = IrFunction::new("dup");
        let b1 = f.new_block(0);
        f.add_cfg_edge(BlockId(0), b1);
        f.add_cfg_edge(BlockId(0), b1);
        assert_eq!(f.block(BlockId(0)).succs.len(), 1);
        assert_eq!(f.block(b1).preds.len(), 1);
    }

    #[test]
    fn display_contains_ops_and_blocks() {
        let f = tiny_ir();
        let text = f.to_string();
        assert!(text.contains("function @tiny"));
        assert!(text.contains("mul"));
        assert!(text.contains("bb0"));
    }
}
