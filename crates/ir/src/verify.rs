//! Structural verification of lowered IR functions.
//!
//! The verifier makes "valid IR" an enforceable precondition for every
//! consumer (scheduling, graph extraction, feature encoding) instead of an
//! implicit one: it checks referential integrity, block termination, SSA
//! dominance, per-opcode operand arity and width rules, and the metadata
//! contracts (`array` on memory ops, `const_value` on constants) that the
//! rest of the pipeline silently relies on.
//!
//! Two usage modes:
//!
//! - **Debug assertion** — [`crate::lower::lower_function`] and
//!   [`crate::ast::FunctionBuilder::finish`] verify their output in debug
//!   builds; a failure there is a compiler bug and panics.
//! - **Hard gate** — untrusted IR (generated programs, template
//!   instantiations, anything arriving over the network) is verified with
//!   [`verify_function`] and rejected with typed [`Diagnostic`]s.
//!
//! The dominance rules encode two documented exceptions to plain SSA
//! def-dominates-use, both artifacts of the structured lowering:
//!
//! - `mux` value operands merge values from the `then`/`else` arms, which do
//!   not dominate the merge block; they must instead dominate at least one
//!   predecessor of the merge block (or be defined earlier in it).
//! - `phi` operands merge the preheader value with the latched value carried
//!   over the back edge; each operand must dominate some predecessor of the
//!   header (or be defined earlier in the header itself, where init
//!   constants are materialised).

use crate::ir::{BlockId, IrFunction, IrOp, OpId};
use crate::opcode::Opcode;
use crate::types::Signedness;
use std::fmt;

/// Category of a structural violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// An op/block index points outside the function, an op is missing from
    /// its block's op list, or a CFG edge lacks its reverse link.
    BrokenReference,
    /// An operand references an operation id that does not exist.
    DanglingOperand,
    /// A block does not end with a `br`/`ret` terminator.
    MissingTerminator,
    /// A terminator appears before the end of its block.
    MisplacedTerminator,
    /// A terminator's successor count does not match its kind (`ret` → 0,
    /// unconditional `br` → 1, conditional `br` → 2).
    BadSuccessors,
    /// An operation has the wrong number of operands for its opcode.
    BadArity,
    /// A value is used in a position its definition does not dominate.
    SsaDominance,
    /// A `phi` outside a loop header, or after non-phi operations.
    PhiPlacement,
    /// A `phi` with more operands than its block has predecessors (or none).
    PhiArity,
    /// An operation with a zero-bit result width.
    ZeroWidth,
    /// A widening cast that narrows, or a truncation that widens.
    BadCastWidth,
    /// An operand of the wrong kind (e.g. a `load` address that is not a
    /// `getelementptr`, or a `gep` base that is not an array port).
    BadOperandKind,
    /// A memory operation without its `array` tag.
    MissingArray,
    /// A `const` operation without a literal value.
    MissingConstValue,
    /// A comparison or control op with a result that is not 1-bit unsigned.
    BadResultWidth,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DiagnosticKind::BrokenReference => "broken-reference",
            DiagnosticKind::DanglingOperand => "dangling-operand",
            DiagnosticKind::MissingTerminator => "missing-terminator",
            DiagnosticKind::MisplacedTerminator => "misplaced-terminator",
            DiagnosticKind::BadSuccessors => "bad-successors",
            DiagnosticKind::BadArity => "bad-arity",
            DiagnosticKind::SsaDominance => "ssa-dominance",
            DiagnosticKind::PhiPlacement => "phi-placement",
            DiagnosticKind::PhiArity => "phi-arity",
            DiagnosticKind::ZeroWidth => "zero-width",
            DiagnosticKind::BadCastWidth => "bad-cast-width",
            DiagnosticKind::BadOperandKind => "bad-operand-kind",
            DiagnosticKind::MissingArray => "missing-array",
            DiagnosticKind::MissingConstValue => "missing-const-value",
            DiagnosticKind::BadResultWidth => "bad-result-width",
        };
        f.write_str(name)
    }
}

/// One structural violation, located at an operation and/or block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Violation category.
    pub kind: DiagnosticKind,
    /// Offending operation, when the violation is op-level.
    pub op: Option<OpId>,
    /// Block containing the violation, when known.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    fn op_level(kind: DiagnosticKind, op: &IrOp, message: String) -> Self {
        Diagnostic { kind, op: Some(op.id), block: Some(op.block), message }
    }

    fn block_level(kind: DiagnosticKind, block: BlockId, message: String) -> Self {
        Diagnostic { kind, op: None, block: Some(block), message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(block) = self.block {
            write!(f, " bb{}", block.index())?;
        }
        if let Some(op) = self.op {
            write!(f, " %{}", op.index())?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Verifies a function and returns every violation found.
///
/// An empty result means the function satisfies all structural invariants.
/// If referential integrity is broken (dangling indices), only those
/// diagnostics are reported: the deeper passes cannot run on such IR.
pub fn verify(ir: &IrFunction) -> Vec<Diagnostic> {
    let referential = check_references(ir);
    if !referential.is_empty() {
        return referential;
    }
    let mut diagnostics = Vec::new();
    check_terminators(ir, &mut diagnostics);
    check_operations(ir, &mut diagnostics);
    check_dominance(ir, &mut diagnostics);
    diagnostics
}

/// Verifies a function, failing with the list of violations.
///
/// # Errors
/// Returns every [`Diagnostic`] found when the function is malformed.
pub fn verify_function(ir: &IrFunction) -> Result<(), Vec<Diagnostic>> {
    let diagnostics = verify(ir);
    if diagnostics.is_empty() {
        Ok(())
    } else {
        Err(diagnostics)
    }
}

/// Referential integrity: every id in bounds, ownership and CFG links
/// symmetric. Failing any of these makes further analysis unsafe.
fn check_references(ir: &IrFunction) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for op in &ir.ops {
        if op.block.index() >= ir.block_count() {
            out.push(Diagnostic {
                kind: DiagnosticKind::BrokenReference,
                op: Some(op.id),
                block: None,
                message: format!(
                    "op %{} tagged with missing block {}",
                    op.id.index(),
                    op.block.index()
                ),
            });
            continue;
        }
        if !ir.block(op.block).ops.contains(&op.id) {
            out.push(Diagnostic::op_level(
                DiagnosticKind::BrokenReference,
                op,
                format!("op %{} missing from the op list of bb{}", op.id.index(), op.block.index()),
            ));
        }
        for operand in &op.operands {
            if operand.index() >= ir.op_count() {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::DanglingOperand,
                    op,
                    format!("operand %{} does not exist", operand.index()),
                ));
            }
        }
    }
    for block in &ir.blocks {
        for &member in &block.ops {
            if member.index() >= ir.op_count() {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::BrokenReference,
                    block.id,
                    format!("bb{} lists missing op %{}", block.id.index(), member.index()),
                ));
            } else if ir.op(member).block != block.id {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::BrokenReference,
                    block.id,
                    format!(
                        "op %{} listed in bb{} but tagged with bb{}",
                        member.index(),
                        block.id.index(),
                        ir.op(member).block.index()
                    ),
                ));
            }
        }
        for &succ in &block.succs {
            if succ.index() >= ir.block_count() {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::BrokenReference,
                    block.id,
                    format!("bb{} branches to missing bb{}", block.id.index(), succ.index()),
                ));
            } else if !ir.block(succ).preds.contains(&block.id) {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::BrokenReference,
                    block.id,
                    format!(
                        "edge bb{} -> bb{} lacks its reverse pred link",
                        block.id.index(),
                        succ.index()
                    ),
                ));
            }
        }
        for &pred in &block.preds {
            if pred.index() >= ir.block_count() {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::BrokenReference,
                    block.id,
                    format!("bb{} lists missing predecessor bb{}", block.id.index(), pred.index()),
                ));
            } else if !ir.block(pred).succs.contains(&block.id) {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::BrokenReference,
                    block.id,
                    format!(
                        "edge bb{} -> bb{} lacks its forward succ link",
                        pred.index(),
                        block.id.index()
                    ),
                ));
            }
        }
    }
    out
}

fn is_terminator(opcode: Opcode) -> bool {
    matches!(opcode, Opcode::Br | Opcode::Ret)
}

/// Every block ends with exactly one terminator whose successor count
/// matches its kind.
fn check_terminators(ir: &IrFunction, out: &mut Vec<Diagnostic>) {
    for block in &ir.blocks {
        let Some((&last, body)) = block.ops.split_last() else {
            out.push(Diagnostic::block_level(
                DiagnosticKind::MissingTerminator,
                block.id,
                format!("bb{} is empty", block.id.index()),
            ));
            continue;
        };
        for &op_id in body {
            if is_terminator(ir.op(op_id).opcode) {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::MisplacedTerminator,
                    ir.op(op_id),
                    format!(
                        "terminator %{} is not the last op of bb{}",
                        op_id.index(),
                        block.id.index()
                    ),
                ));
            }
        }
        let terminator = ir.op(last);
        let expected_succs = match terminator.opcode {
            Opcode::Ret => 0,
            Opcode::Br if terminator.operands.is_empty() => 1,
            Opcode::Br => 2,
            _ => {
                out.push(Diagnostic::block_level(
                    DiagnosticKind::MissingTerminator,
                    block.id,
                    format!(
                        "bb{} ends with `{}` instead of a terminator",
                        block.id.index(),
                        terminator.opcode
                    ),
                ));
                continue;
            }
        };
        if block.succs.len() != expected_succs {
            out.push(Diagnostic::op_level(
                DiagnosticKind::BadSuccessors,
                terminator,
                format!(
                    "bb{} has {} successor(s) but its terminator `{}` requires {}",
                    block.id.index(),
                    block.succs.len(),
                    terminator.opcode,
                    expected_succs
                ),
            ));
        }
    }
}

/// Expected operand count per opcode. `None` means unconstrained.
fn expected_arity(opcode: Opcode) -> Option<(usize, usize)> {
    use Opcode::*;
    match opcode {
        Const | ReadPort | Alloca | Ret => Some((0, 0)),
        Br => Some((0, 1)),
        WritePort | Neg | Not | ZExt | SExt | Trunc | PartSelect | Load => Some((1, 1)),
        Add | Sub | Mul | SDiv | UDiv | SRem | URem | And | Or | Xor | Shl | LShr | AShr | ICmp
        | GetElementPtr | Store | BitConcat => Some((2, 2)),
        Select | Mux => Some((3, 3)),
        Phi | Call => None,
    }
}

/// Per-opcode local rules: arity, result widths, cast direction, metadata
/// (`array` / `const_value`), and operand kinds for memory addressing.
fn check_operations(ir: &IrFunction, out: &mut Vec<Diagnostic>) {
    for op in &ir.ops {
        if op.bits() == 0 {
            out.push(Diagnostic::op_level(
                DiagnosticKind::ZeroWidth,
                op,
                format!("op %{} has a zero-bit result", op.id.index()),
            ));
        }
        if let Some((min, max)) = expected_arity(op.opcode) {
            let n = op.operands.len();
            if n < min || n > max {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::BadArity,
                    op,
                    format!("`{}` takes {min}..={max} operands, got {n}", op.opcode),
                ));
                continue; // operand-shape rules below assume the arity holds
            }
        }
        match op.opcode {
            Opcode::Const if op.const_value.is_none() => {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::MissingConstValue,
                    op,
                    format!("const %{} has no literal value", op.id.index()),
                ));
            }
            Opcode::Load | Opcode::Store | Opcode::GetElementPtr | Opcode::Alloca
                if op.array.is_none() =>
            {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::MissingArray,
                    op,
                    format!("memory op `{}` %{} has no array tag", op.opcode, op.id.index()),
                ));
            }
            Opcode::Load => {
                check_address_operand(ir, op, op.operands[0], out);
            }
            Opcode::Store => {
                check_address_operand(ir, op, op.operands[1], out);
            }
            Opcode::GetElementPtr => {
                let base = ir.op(op.operands[0]);
                let base_is_array = matches!(base.opcode, Opcode::ReadPort | Opcode::Alloca)
                    && base.array == op.array;
                if !base_is_array {
                    out.push(Diagnostic::op_level(
                        DiagnosticKind::BadOperandKind,
                        op,
                        format!(
                            "gep %{} base %{} is not the port/alloca of its array",
                            op.id.index(),
                            base.id.index()
                        ),
                    ));
                }
            }
            Opcode::Trunc => {
                let source = ir.op(op.operands[0]);
                if op.bits() >= source.bits() {
                    out.push(Diagnostic::op_level(
                        DiagnosticKind::BadCastWidth,
                        op,
                        format!("trunc %{} widens {} -> {}", op.id.index(), source.width, op.width),
                    ));
                }
            }
            Opcode::ZExt | Opcode::SExt => {
                let source = ir.op(op.operands[0]);
                if op.bits() <= source.bits() {
                    out.push(Diagnostic::op_level(
                        DiagnosticKind::BadCastWidth,
                        op,
                        format!(
                            "`{}` %{} narrows {} -> {}",
                            op.opcode,
                            op.id.index(),
                            source.width,
                            op.width
                        ),
                    ));
                }
            }
            Opcode::ICmp if op.bits() != 1 || op.signedness != Signedness::Unsigned => {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::BadResultWidth,
                    op,
                    format!("icmp %{} result must be a 1-bit unsigned flag", op.id.index()),
                ));
            }
            Opcode::Br | Opcode::Ret if op.bits() != 1 => {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::BadResultWidth,
                    op,
                    format!("control op `{}` %{} must be 1-bit", op.opcode, op.id.index()),
                ));
            }
            Opcode::Phi => check_phi(ir, op, out),
            _ => {}
        }
    }
}

fn check_address_operand(ir: &IrFunction, op: &IrOp, address: OpId, out: &mut Vec<Diagnostic>) {
    let addr = ir.op(address);
    if addr.opcode != Opcode::GetElementPtr || addr.array != op.array {
        out.push(Diagnostic::op_level(
            DiagnosticKind::BadOperandKind,
            op,
            format!(
                "`{}` %{} address %{} is not a gep of the same array",
                op.opcode,
                op.id.index(),
                address.index()
            ),
        ));
    }
}

fn check_phi(ir: &IrFunction, op: &IrOp, out: &mut Vec<Diagnostic>) {
    let block = ir.block(op.block);
    if !block.is_loop_header {
        out.push(Diagnostic::op_level(
            DiagnosticKind::PhiPlacement,
            op,
            format!("phi %{} outside a loop header", op.id.index()),
        ));
    }
    // Phis live in the header prefix: only other phis and their init
    // constants may precede them.
    for &earlier in block.ops.iter().take_while(|&&id| id != op.id) {
        if !matches!(ir.op(earlier).opcode, Opcode::Phi | Opcode::Const) {
            out.push(Diagnostic::op_level(
                DiagnosticKind::PhiPlacement,
                op,
                format!("phi %{} appears after non-phi op %{}", op.id.index(), earlier.index()),
            ));
            break;
        }
    }
    let n = op.operands.len();
    if n == 0 || n > block.preds.len().max(1) {
        out.push(Diagnostic::op_level(
            DiagnosticKind::PhiArity,
            op,
            format!(
                "phi %{} has {n} operand(s) for {} predecessor(s)",
                op.id.index(),
                block.preds.len()
            ),
        ));
    }
}

/// Blocks reachable from the entry block.
pub fn reachable_blocks(ir: &IrFunction) -> Vec<bool> {
    let mut reachable = vec![false; ir.block_count()];
    if ir.block_count() == 0 {
        return reachable;
    }
    let mut stack = vec![BlockId::new(0)];
    reachable[0] = true;
    while let Some(block) = stack.pop() {
        for &succ in &ir.block(block).succs {
            if !reachable[succ.index()] {
                reachable[succ.index()] = true;
                stack.push(succ);
            }
        }
    }
    reachable
}

/// Reverse postorder over the blocks reachable from the entry.
pub fn reverse_postorder(ir: &IrFunction) -> Vec<BlockId> {
    let mut visited = vec![false; ir.block_count()];
    let mut postorder = Vec::new();
    // Iterative DFS with an explicit phase marker (enter/exit).
    let mut stack = vec![(BlockId::new(0), false)];
    if ir.block_count() == 0 {
        return postorder;
    }
    while let Some((block, expanded)) = stack.pop() {
        if expanded {
            postorder.push(block);
            continue;
        }
        if visited[block.index()] {
            continue;
        }
        visited[block.index()] = true;
        stack.push((block, true));
        for &succ in ir.block(block).succs.iter().rev() {
            if !visited[succ.index()] {
                stack.push((succ, false));
            }
        }
    }
    postorder.reverse();
    postorder
}

/// Immediate dominators of all blocks (Cooper–Harvey–Kennedy iteration over
/// the reverse postorder). The entry block is its own idom; unreachable
/// blocks get `None`.
pub fn immediate_dominators(ir: &IrFunction) -> Vec<Option<BlockId>> {
    let rpo = reverse_postorder(ir);
    let mut rpo_index = vec![usize::MAX; ir.block_count()];
    for (index, &block) in rpo.iter().enumerate() {
        rpo_index[block.index()] = index;
    }
    let mut idom: Vec<Option<BlockId>> = vec![None; ir.block_count()];
    if ir.block_count() == 0 {
        return idom;
    }
    idom[0] = Some(BlockId::new(0));

    let intersect = |idom: &[Option<BlockId>], a: BlockId, b: BlockId| -> BlockId {
        let (mut a, mut b) = (a, b);
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed block has an idom");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed block has an idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &block in rpo.iter().skip(1) {
            let preds = &ir.block(block).preds;
            let mut new_idom: Option<BlockId> = None;
            for &pred in preds {
                if idom[pred.index()].is_none() {
                    continue; // unreachable or not yet processed
                }
                new_idom = Some(match new_idom {
                    None => pred,
                    Some(current) => intersect(&idom, pred, current),
                });
            }
            if let Some(new_idom) = new_idom {
                if idom[block.index()] != Some(new_idom) {
                    idom[block.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
    }
    idom
}

/// True if block `a` dominates block `b` under the given idom vector.
pub fn dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut current = b;
    loop {
        if current == a {
            return true;
        }
        match idom[current.index()] {
            Some(parent) if parent != current => current = parent,
            _ => return false,
        }
    }
}

/// SSA def-dominates-use over the reachable CFG, with the documented
/// `mux`/`phi` join exceptions.
fn check_dominance(ir: &IrFunction, out: &mut Vec<Diagnostic>) {
    let reachable = reachable_blocks(ir);
    let idom = immediate_dominators(ir);

    // Position of every op inside its block, for same-block ordering checks.
    let mut position = vec![0usize; ir.op_count()];
    for block in &ir.blocks {
        for (index, &op_id) in block.ops.iter().enumerate() {
            position[op_id.index()] = index;
        }
    }

    let defined_before = |def: OpId, user: &IrOp| -> bool {
        let def_op = ir.op(def);
        if def_op.block == user.block {
            position[def.index()] < position[user.id.index()]
        } else {
            reachable[def_op.block.index()] && dominates(&idom, def_op.block, user.block)
        }
    };
    // Join rule: the operand is defined earlier in the same block, or its
    // block dominates at least one predecessor of the user's block.
    let reaches_join = |def: OpId, user: &IrOp| -> bool {
        let def_op = ir.op(def);
        if def_op.block == user.block && position[def.index()] < position[user.id.index()] {
            return true;
        }
        ir.block(user.block).preds.iter().any(|&pred| {
            reachable[def_op.block.index()]
                && reachable[pred.index()]
                && dominates(&idom, def_op.block, pred)
        })
    };

    for op in &ir.ops {
        if !reachable[op.block.index()] {
            continue; // unreachable code is checked locally but not for SSA
        }
        let join_operands: &[OpId] = match op.opcode {
            Opcode::Phi => &op.operands,
            // mux [cond, then-value, else-value]: the condition obeys plain
            // dominance, the merged values obey the join rule.
            Opcode::Mux if op.operands.len() == 3 => &op.operands[1..],
            _ => &[],
        };
        for &operand in &op.operands {
            let is_join = join_operands.contains(&operand);
            let ok = if is_join { reaches_join(operand, op) } else { defined_before(operand, op) };
            if !ok {
                out.push(Diagnostic::op_level(
                    DiagnosticKind::SsaDominance,
                    op,
                    format!(
                        "op %{} uses %{} which does not dominate it",
                        op.id.index(),
                        operand.index()
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinaryOp, Expr, FunctionBuilder, Stmt};
    use crate::lower::lower_function;
    use crate::types::{ArrayType, ScalarType};

    fn loopy_ir() -> IrFunction {
        let mut f = FunctionBuilder::new("dot");
        let x = f.array_param("x", ArrayType::new(ScalarType::i32(), 16));
        let y = f.array_param("y", ArrayType::new(ScalarType::i32(), 16));
        let acc = f.local("acc", ScalarType::signed(64));
        let i = f.local("i", ScalarType::i32());
        f.assign(acc, Expr::constant(0));
        f.push(Stmt::for_loop(
            i,
            0,
            16,
            1,
            vec![Stmt::assign(
                acc,
                Expr::binary(
                    BinaryOp::Add,
                    Expr::var(acc),
                    Expr::binary(
                        BinaryOp::Mul,
                        Expr::index(x, Expr::var(i)),
                        Expr::index(y, Expr::var(i)),
                    ),
                ),
            )],
        ));
        f.ret(acc);
        lower_function(&f.finish().unwrap()).unwrap()
    }

    fn branchy_ir() -> IrFunction {
        let mut f = FunctionBuilder::new("absdiff");
        let a = f.param("a", ScalarType::i32());
        let b = f.param("b", ScalarType::i32());
        let out = f.local("out", ScalarType::i32());
        f.push(Stmt::if_else(
            Expr::binary(BinaryOp::Gt, Expr::var(a), Expr::var(b)),
            vec![Stmt::assign(out, Expr::binary(BinaryOp::Sub, Expr::var(a), Expr::var(b)))],
            vec![Stmt::assign(out, Expr::binary(BinaryOp::Sub, Expr::var(b), Expr::var(a)))],
        ));
        f.ret(out);
        lower_function(&f.finish().unwrap()).unwrap()
    }

    #[test]
    fn lowered_functions_verify_cleanly() {
        assert_eq!(verify(&loopy_ir()), vec![]);
        assert_eq!(verify(&branchy_ir()), vec![]);
    }

    #[test]
    fn dominators_of_a_loop() {
        let ir = loopy_ir();
        let idom = immediate_dominators(&ir);
        // Entry dominates everything; the header dominates body and exit.
        let header = ir.blocks.iter().find(|b| b.is_loop_header).expect("loop header present").id;
        for block in &ir.blocks {
            assert!(dominates(&idom, BlockId::new(0), block.id));
        }
        for &succ in &ir.block(header).succs {
            assert!(dominates(&idom, header, succ));
        }
        assert!(!dominates(&idom, header, BlockId::new(0)));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let ir = branchy_ir();
        let rpo = reverse_postorder(&ir);
        assert_eq!(rpo[0], BlockId::new(0));
        assert_eq!(rpo.len(), ir.block_count());
    }

    fn first_kind(ir: &IrFunction) -> DiagnosticKind {
        let diagnostics = verify(ir);
        assert!(!diagnostics.is_empty(), "expected a diagnostic for:\n{ir}");
        diagnostics[0].kind
    }

    #[test]
    fn dropped_terminator_is_missing_terminator() {
        let mut ir = loopy_ir();
        let last_block = BlockId::new(ir.block_count() - 1);
        let dropped = ir.block_mut(last_block).ops.pop().unwrap();
        // Keep referential integrity intact: remove the op entirely is not
        // possible without reindexing, so retag it into the block it left.
        assert_eq!(ir.op(dropped).opcode, Opcode::Ret);
        ir.block_mut(last_block).ops.insert(0, dropped);
        assert_eq!(first_kind(&ir), DiagnosticKind::MisplacedTerminator);
    }

    #[test]
    fn dangling_operand_is_reported() {
        let mut ir = loopy_ir();
        let victim = ir.iter_ops().find(|op| op.opcode == Opcode::Add).unwrap().id;
        ir.op_mut(victim).operands[0] = OpId::new(99_999);
        assert_eq!(first_kind(&ir), DiagnosticKind::DanglingOperand);
    }

    #[test]
    fn broken_phi_arity_is_reported() {
        let mut ir = loopy_ir();
        let phi = ir.iter_ops().find(|op| op.opcode == Opcode::Phi).unwrap().id;
        let extra = ir.op(phi).operands[0];
        ir.op_mut(phi).operands.push(extra);
        ir.op_mut(phi).operands.push(extra);
        let diagnostics = verify(&ir);
        assert!(diagnostics.iter().any(|d| d.kind == DiagnosticKind::PhiArity), "{diagnostics:?}");
    }

    #[test]
    fn swapped_store_operands_are_reported() {
        let mut f = FunctionBuilder::new("fill");
        let dst = f.array_param("dst", ArrayType::new(ScalarType::i32(), 8));
        let v = f.param("v", ScalarType::i32());
        f.store(dst, Expr::constant(3), Expr::var(v));
        f.ret(v);
        let mut ir = lower_function(&f.finish().unwrap()).unwrap();
        let store = ir.iter_ops().find(|op| op.opcode == Opcode::Store).unwrap().id;
        ir.op_mut(store).operands.swap(0, 1);
        assert_eq!(first_kind(&ir), DiagnosticKind::BadOperandKind);
    }

    #[test]
    fn use_before_def_is_an_ssa_violation() {
        let mut ir = branchy_ir();
        // Rewire the first op of the entry block to consume the last value
        // defined in the function: a same-block/later or cross-block use
        // that cannot dominate it.
        let last = OpId::new(ir.op_count() - 1);
        let victim = ir.iter_ops().find(|op| op.opcode == Opcode::Sub).unwrap().id;
        ir.op_mut(victim).operands[0] = last;
        let diagnostics = verify(&ir);
        assert!(
            diagnostics.iter().any(|d| d.kind == DiagnosticKind::SsaDominance),
            "{diagnostics:?}"
        );
    }

    #[test]
    fn missing_metadata_is_reported() {
        let mut ir = loopy_ir();
        let load = ir.iter_ops().find(|op| op.opcode == Opcode::Load).unwrap().id;
        ir.op_mut(load).array = None;
        let diagnostics = verify(&ir);
        assert!(diagnostics.iter().any(|d| d.kind == DiagnosticKind::MissingArray));

        let mut ir = loopy_ir();
        let constant = ir.iter_ops().find(|op| op.opcode == Opcode::Const).unwrap().id;
        ir.op_mut(constant).const_value = None;
        let diagnostics = verify(&ir);
        assert!(diagnostics.iter().any(|d| d.kind == DiagnosticKind::MissingConstValue));
    }

    #[test]
    fn diagnostics_render_location_and_kind() {
        let mut ir = loopy_ir();
        let victim = ir.iter_ops().find(|op| op.opcode == Opcode::Add).unwrap().id;
        ir.op_mut(victim).operands[0] = OpId::new(99_999);
        let text = verify(&ir)[0].to_string();
        assert!(text.contains("dangling-operand"), "{text}");
        assert!(text.contains(&format!("%{}", victim.index())), "{text}");
    }
}
