//! Opcode vocabulary of the operation-level IR.
//!
//! The vocabulary follows the LLVM-derived opcodes that Vitis HLS exposes in
//! its IR dumps and that the paper lists as node features (`load`, `add`,
//! `mux`, `xor`, `icmp`, `sdiv`, `partselect`, `br`, ...). The opcode and its
//! coarse category are two of the seven "off-the-shelf" node features.

use std::fmt;

/// Coarse opcode category, the `Opcode type` feature of Table 1
/// ("binary_unary, bitwise, memory, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpcodeCategory {
    /// Arithmetic binary/unary operations (add, sub, mul, div, rem, neg).
    BinaryUnary,
    /// Bitwise logic and shifts (and, or, xor, not, shl, shr).
    Bitwise,
    /// Memory accesses and address computation (load, store, gep, alloca).
    Memory,
    /// Comparison and selection (icmp, select, mux, phi).
    CmpSelect,
    /// Bitwidth casts and bit-level manipulation (zext, sext, trunc, partselect, concat).
    Cast,
    /// Control transfer (br, ret, call).
    Control,
    /// Constants and I/O ports.
    ConstPort,
}

impl OpcodeCategory {
    /// All categories, in a stable order used for integer encoding.
    pub const ALL: [OpcodeCategory; 7] = [
        OpcodeCategory::BinaryUnary,
        OpcodeCategory::Bitwise,
        OpcodeCategory::Memory,
        OpcodeCategory::CmpSelect,
        OpcodeCategory::Cast,
        OpcodeCategory::Control,
        OpcodeCategory::ConstPort,
    ];

    /// Number of categories (the embedding vocabulary size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable integer code of the category.
    pub fn code(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("category present in ALL")
    }
}

impl fmt::Display for OpcodeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpcodeCategory::BinaryUnary => "binary_unary",
            OpcodeCategory::Bitwise => "bitwise",
            OpcodeCategory::Memory => "memory",
            OpcodeCategory::CmpSelect => "cmp_select",
            OpcodeCategory::Cast => "cast",
            OpcodeCategory::Control => "control",
            OpcodeCategory::ConstPort => "const_port",
        };
        f.write_str(name)
    }
}

/// Operation opcode, modelled on the LLVM/Vitis HLS IR vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Opcode {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Signed division.
    SDiv,
    /// Unsigned division.
    UDiv,
    /// Signed remainder.
    SRem,
    /// Unsigned remainder.
    URem,
    /// Arithmetic negation.
    Neg,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not.
    Not,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Integer comparison (eq/ne/lt/le/gt/ge collapse to one opcode as in Vitis IR).
    ICmp,
    /// Two-way select driven by a 1-bit condition.
    Select,
    /// Multiplexer merging values at a control-flow join.
    Mux,
    /// SSA phi node at a loop header.
    Phi,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Address computation for an array element.
    GetElementPtr,
    /// Local array allocation.
    Alloca,
    /// Zero extension.
    ZExt,
    /// Sign extension.
    SExt,
    /// Truncation.
    Trunc,
    /// Bit-range selection.
    PartSelect,
    /// Bit concatenation.
    BitConcat,
    /// Conditional or unconditional branch.
    Br,
    /// Function return.
    Ret,
    /// Call to a sub-function (treated as a black box).
    Call,
    /// Integer constant.
    Const,
    /// Read of a top-level input port (function argument).
    ReadPort,
    /// Write of a top-level output port (return value / output argument).
    WritePort,
}

impl Opcode {
    /// All opcodes in a stable order used for integer encoding.
    pub const ALL: [Opcode; 34] = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::SDiv,
        Opcode::UDiv,
        Opcode::SRem,
        Opcode::URem,
        Opcode::Neg,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Not,
        Opcode::Shl,
        Opcode::LShr,
        Opcode::AShr,
        Opcode::ICmp,
        Opcode::Select,
        Opcode::Mux,
        Opcode::Phi,
        Opcode::Load,
        Opcode::Store,
        Opcode::GetElementPtr,
        Opcode::Alloca,
        Opcode::ZExt,
        Opcode::SExt,
        Opcode::Trunc,
        Opcode::PartSelect,
        Opcode::BitConcat,
        Opcode::Br,
        Opcode::Ret,
        Opcode::Call,
        Opcode::Const,
        Opcode::ReadPort,
        Opcode::WritePort,
    ];

    /// Number of opcodes (the embedding vocabulary size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable integer code of the opcode.
    pub fn code(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("opcode present in ALL")
    }

    /// Coarse category of the opcode (the `Opcode type` feature).
    pub fn category(self) -> OpcodeCategory {
        use Opcode::*;
        match self {
            Add | Sub | Mul | SDiv | UDiv | SRem | URem | Neg => OpcodeCategory::BinaryUnary,
            And | Or | Xor | Not | Shl | LShr | AShr => OpcodeCategory::Bitwise,
            Load | Store | GetElementPtr | Alloca => OpcodeCategory::Memory,
            ICmp | Select | Mux | Phi => OpcodeCategory::CmpSelect,
            ZExt | SExt | Trunc | PartSelect | BitConcat => OpcodeCategory::Cast,
            Br | Ret | Call => OpcodeCategory::Control,
            Const | ReadPort | WritePort => OpcodeCategory::ConstPort,
        }
    }

    /// True for operations that perform multi-bit arithmetic and are candidates
    /// for DSP-block mapping.
    pub fn is_arithmetic(self) -> bool {
        matches!(self.category(), OpcodeCategory::BinaryUnary)
    }

    /// True for memory operations.
    pub fn is_memory(self) -> bool {
        matches!(self.category(), OpcodeCategory::Memory)
    }

    /// True for pure control operations that consume no datapath resources.
    pub fn is_control(self) -> bool {
        matches!(self.category(), OpcodeCategory::Control)
    }

    /// Mnemonic as printed in IR dumps.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            SDiv => "sdiv",
            UDiv => "udiv",
            SRem => "srem",
            URem => "urem",
            Neg => "neg",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            LShr => "lshr",
            AShr => "ashr",
            ICmp => "icmp",
            Select => "select",
            Mux => "mux",
            Phi => "phi",
            Load => "load",
            Store => "store",
            GetElementPtr => "getelementptr",
            Alloca => "alloca",
            ZExt => "zext",
            SExt => "sext",
            Trunc => "trunc",
            PartSelect => "partselect",
            BitConcat => "bitconcat",
            Br => "br",
            Ret => "ret",
            Call => "call",
            Const => "const",
            ReadPort => "read_port",
            WritePort => "write_port",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn opcode_codes_are_unique_and_dense() {
        let codes: HashSet<usize> = Opcode::ALL.iter().map(|op| op.code()).collect();
        assert_eq!(codes.len(), Opcode::COUNT);
        assert!(codes.iter().all(|&c| c < Opcode::COUNT));
    }

    #[test]
    fn category_codes_are_unique_and_dense() {
        let codes: HashSet<usize> = OpcodeCategory::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes.len(), OpcodeCategory::COUNT);
        assert!(codes.iter().all(|&c| c < OpcodeCategory::COUNT));
    }

    #[test]
    fn every_opcode_has_a_category() {
        for op in Opcode::ALL {
            // `category` must not panic and the category must round-trip to a code.
            let cat = op.category();
            assert!(cat.code() < OpcodeCategory::COUNT, "{op} -> {cat}");
        }
    }

    #[test]
    fn category_assignment_matches_paper_examples() {
        assert_eq!(Opcode::Add.category(), OpcodeCategory::BinaryUnary);
        assert_eq!(Opcode::Xor.category(), OpcodeCategory::Bitwise);
        assert_eq!(Opcode::Load.category(), OpcodeCategory::Memory);
        assert_eq!(Opcode::ICmp.category(), OpcodeCategory::CmpSelect);
        assert_eq!(Opcode::PartSelect.category(), OpcodeCategory::Cast);
        assert_eq!(Opcode::Br.category(), OpcodeCategory::Control);
    }

    #[test]
    fn classification_helpers() {
        assert!(Opcode::Mul.is_arithmetic());
        assert!(!Opcode::Xor.is_arithmetic());
        assert!(Opcode::Store.is_memory());
        assert!(Opcode::Br.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn mnemonics_are_nonempty_and_unique() {
        let names: HashSet<&str> = Opcode::ALL.iter().map(|op| op.mnemonic()).collect();
        assert_eq!(names.len(), Opcode::COUNT);
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
