//! `hls-ir` — intermediate-representation substrate for HLS performance prediction.
//!
//! This crate models the part of an HLS front end that the DAC'22 paper
//! *"High-Level Synthesis Performance Prediction using GNNs"* relies on:
//! a C-like behavioural description is lowered to an operation-level IR and
//! exported as a **data-flow graph** (DFG, from a single basic block) or a
//! **control-data-flow graph** (CDFG, from programs with loops and branches).
//! Each node and edge carries the feature set of Table 1 of the paper
//! (node type, bitwidth, opcode category, opcode, is-start-of-path, cluster
//! group; edge type and back-edge flag).
//!
//! # Example
//!
//! ```
//! use hls_ir::ast::{FunctionBuilder, BinaryOp, Expr};
//! use hls_ir::types::ScalarType;
//! use hls_ir::graph::GraphKind;
//!
//! # fn main() -> Result<(), hls_ir::Error> {
//! let mut f = FunctionBuilder::new("mac");
//! let a = f.param("a", ScalarType::i32());
//! let b = f.param("b", ScalarType::i32());
//! let acc = f.local("acc", ScalarType::i32());
//! f.assign(acc, Expr::binary(BinaryOp::Mul, Expr::var(a), Expr::var(b)));
//! f.ret(acc);
//! let func = f.finish()?;
//! let graph = hls_ir::graph::extract_graph(&func, GraphKind::Dfg)?;
//! assert!(graph.node_count() > 0);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod features;
pub mod graph;
pub mod ir;
pub mod lower;
pub mod opcode;
pub mod types;
pub mod verify;

use std::fmt;

pub use ast::{BinaryOp, Expr, Function, FunctionBuilder, Stmt, UnaryOp, VarId};
pub use features::{EdgeFeatures, NodeFeatures};
pub use graph::{EdgeKind, GraphKind, IrEdge, IrGraph, IrNode, NodeId, NodeKind};
pub use ir::{BlockId, IrFunction, IrOp, OpId};
pub use opcode::{Opcode, OpcodeCategory};
pub use types::{BitWidth, ScalarType, ValueType};
pub use verify::{verify_function, Diagnostic, DiagnosticKind};

/// Errors produced while building, lowering, or exporting IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A variable was referenced before being declared.
    UndeclaredVariable(String),
    /// A variable was used with an incompatible shape (scalar vs. array).
    ShapeMismatch(String),
    /// The requested graph kind cannot be extracted from this function
    /// (e.g. a DFG was requested but the function contains control flow).
    UnsupportedGraphKind(String),
    /// A function was built without any statements.
    EmptyFunction(String),
    /// An internal invariant was violated during lowering.
    Lowering(String),
    /// The IR failed structural verification (see [`verify`]).
    Verification(Vec<verify::Diagnostic>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UndeclaredVariable(name) => write!(f, "undeclared variable `{name}`"),
            Error::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            Error::UnsupportedGraphKind(msg) => write!(f, "unsupported graph kind: {msg}"),
            Error::EmptyFunction(name) => write!(f, "function `{name}` has no statements"),
            Error::Lowering(msg) => write!(f, "lowering error: {msg}"),
            Error::Verification(diagnostics) => {
                write!(f, "invalid IR ({} violation(s))", diagnostics.len())?;
                for diagnostic in diagnostics {
                    write!(f, "; {diagnostic}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
