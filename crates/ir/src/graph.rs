//! DFG / CDFG extraction from the operation-level IR.
//!
//! The graphs produced here are the *only* input the paper's predictors see:
//! data-flow graphs (DFGs) extracted from basic blocks and control-data-flow
//! graphs (CDFGs) extracted from programs with loops and branches. CDFGs add
//! block nodes, control edges and back edges on top of the data-flow
//! structure.

use std::collections::HashMap;

use crate::ast::{Function, VarId};
use crate::ir::{IrFunction, OpId};
use crate::lower::lower_function;
use crate::opcode::Opcode;
use crate::{Error, Result};

/// Which graph abstraction to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Pure data-flow graph from a single basic block (a DAG).
    Dfg,
    /// Control-data-flow graph with block nodes, control edges and back edges.
    Cdfg,
}

impl GraphKind {
    /// Short lowercase name (`"dfg"` / `"cdfg"`), used in reports and file names.
    pub fn name(self) -> &'static str {
        match self {
            GraphKind::Dfg => "dfg",
            GraphKind::Cdfg => "cdfg",
        }
    }
}

/// Coarse node category (the `Node type` feature of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeKind {
    /// Datapath operation.
    Operation,
    /// Basic-block / control-state node (CDFG only).
    Block,
    /// Top-level I/O port.
    Port,
    /// Miscellaneous node (constants, allocations).
    Misc,
}

impl NodeKind {
    /// All node kinds, in a stable order used for integer encoding.
    pub const ALL: [NodeKind; 4] =
        [NodeKind::Operation, NodeKind::Block, NodeKind::Port, NodeKind::Misc];

    /// Number of node kinds (embedding vocabulary size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable integer code.
    pub fn code(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("kind present in ALL")
    }
}

/// Edge category (the `edge type` feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EdgeKind {
    /// Data dependency.
    Data,
    /// Control dependency (CDFG only).
    Control,
    /// Memory-ordering dependency between accesses to the same array.
    Memory,
}

impl EdgeKind {
    /// All edge kinds, in a stable order used for integer encoding.
    pub const ALL: [EdgeKind; 3] = [EdgeKind::Data, EdgeKind::Control, EdgeKind::Memory];

    /// Number of edge kinds (embedding vocabulary size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable integer code.
    pub fn code(self) -> usize {
        Self::ALL.iter().position(|k| *k == self).expect("kind present in ALL")
    }
}

/// Identifier of a node within an [`IrGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of the node in the graph's node list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A node of the IR graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrNode {
    /// Identifier of this node.
    pub id: NodeId,
    /// Node category.
    pub kind: NodeKind,
    /// Opcode, for operation/port/misc nodes that originate from an IR operation.
    pub opcode: Option<Opcode>,
    /// Result bitwidth in bits (0 for block nodes).
    pub bitwidth: u16,
    /// Cluster group of the node: the basic-block index, or -1 for nodes that
    /// do not belong to a specific block (ports, constants in the paper's
    /// "misc" bucket).
    pub cluster: i32,
    /// The IR operation this node was created from, if any.
    pub op: Option<OpId>,
    /// The array variable touched by this node, if it is a memory node.
    pub array: Option<VarId>,
}

/// A directed edge of the IR graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrEdge {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge category.
    pub kind: EdgeKind,
    /// True for loop back edges (data or control).
    pub is_back_edge: bool,
}

/// An extracted DFG or CDFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrGraph {
    /// Name of the originating function.
    pub name: String,
    /// Whether this is a DFG or a CDFG.
    pub kind: GraphKind,
    nodes: Vec<IrNode>,
    edges: Vec<IrEdge>,
}

impl IrGraph {
    /// Builds a graph from raw parts; mostly useful in tests and generators.
    pub fn from_parts(
        name: impl Into<String>,
        kind: GraphKind,
        nodes: Vec<IrNode>,
        edges: Vec<IrEdge>,
    ) -> Self {
        IrGraph { name: name.into(), kind, nodes, edges }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[IrNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[IrEdge] {
        &self.edges
    }

    /// Accesses a node by id.
    pub fn node(&self, id: NodeId) -> &IrNode {
        &self.nodes[id.0]
    }

    /// Finds the graph node created from a given IR operation, if any.
    pub fn node_of_op(&self, op: OpId) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.op == Some(op)).map(|n| n.id)
    }

    /// In-degree of every node, optionally restricted to one edge kind.
    pub fn in_degrees(&self, kind: Option<EdgeKind>) -> Vec<usize> {
        let mut degrees = vec![0usize; self.nodes.len()];
        for edge in &self.edges {
            if kind.is_none_or(|k| edge.kind == k) {
                degrees[edge.dst.0] += 1;
            }
        }
        degrees
    }

    /// Out-degree of every node, optionally restricted to one edge kind.
    pub fn out_degrees(&self, kind: Option<EdgeKind>) -> Vec<usize> {
        let mut degrees = vec![0usize; self.nodes.len()];
        for edge in &self.edges {
            if kind.is_none_or(|k| edge.kind == k) {
                degrees[edge.src.0] += 1;
            }
        }
        degrees
    }

    /// Forward adjacency list (successors) over all edges.
    pub fn successors(&self) -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for edge in &self.edges {
            adj[edge.src.0].push(edge.dst);
        }
        adj
    }

    /// Backward adjacency list (predecessors) over all edges.
    pub fn predecessors(&self) -> Vec<Vec<NodeId>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for edge in &self.edges {
            adj[edge.dst.0].push(edge.src);
        }
        adj
    }

    /// Number of back edges in the graph (0 for DFGs).
    pub fn back_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.is_back_edge).count()
    }

    /// Returns true if the graph restricted to non-back edges is acyclic.
    pub fn is_dag_ignoring_back_edges(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Topological order over non-back edges, or `None` if a cycle remains.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut adj = vec![Vec::new(); n];
        for edge in &self.edges {
            if edge.is_back_edge {
                continue;
            }
            adj[edge.src.0].push(edge.dst.0);
            indegree[edge.dst.0] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(node) = stack.pop() {
            order.push(NodeId(node));
            for &next in &adj[node] {
                indegree[next] -= 1;
                if indegree[next] == 0 {
                    stack.push(next);
                }
            }
        }
        if order.len() == n {
            Some(order)
        } else {
            None
        }
    }

    /// Length (in edges) of the longest path over non-back data edges.
    /// This approximates the depth of the combinational structure and is used
    /// by tests and by the HLS simulator's sanity checks.
    pub fn longest_data_path(&self) -> usize {
        let order = match self.topological_order() {
            Some(order) => order,
            None => return 0,
        };
        let mut dist = vec![0usize; self.nodes.len()];
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for edge in &self.edges {
            if edge.kind == EdgeKind::Data && !edge.is_back_edge {
                adj[edge.src.0].push(edge.dst.0);
            }
        }
        let mut best = 0;
        for node in order {
            for &next in &adj[node.0] {
                if dist[node.0] + 1 > dist[next] {
                    dist[next] = dist[node.0] + 1;
                    best = best.max(dist[next]);
                }
            }
        }
        best
    }

    /// Validates node/edge referential integrity.
    pub fn check_integrity(&self) -> std::result::Result<(), String> {
        for (index, node) in self.nodes.iter().enumerate() {
            if node.id.0 != index {
                return Err(format!("node id {} stored at index {index}", node.id.0));
            }
        }
        for edge in &self.edges {
            if edge.src.0 >= self.nodes.len() || edge.dst.0 >= self.nodes.len() {
                return Err(format!("edge {}->{} out of range", edge.src.0, edge.dst.0));
            }
        }
        Ok(())
    }
}

/// Lowers an AST function and extracts the requested graph kind.
///
/// # Errors
/// Returns [`Error::UnsupportedGraphKind`] when a DFG is requested for a
/// function containing control flow, plus any lowering error.
pub fn extract_graph(func: &Function, kind: GraphKind) -> Result<IrGraph> {
    let ir = lower_function(func)?;
    extract_from_ir(&ir, kind)
}

/// Extracts a graph from an already-lowered IR function.
///
/// # Errors
/// Returns [`Error::UnsupportedGraphKind`] when a DFG is requested for a
/// function containing control flow.
pub fn extract_from_ir(ir: &IrFunction, kind: GraphKind) -> Result<IrGraph> {
    match kind {
        GraphKind::Dfg => {
            if ir.has_control_flow() {
                return Err(Error::UnsupportedGraphKind(format!(
                    "function `{}` contains control flow; extract a CDFG instead",
                    ir.name
                )));
            }
            Ok(build_graph(ir, GraphKind::Dfg))
        }
        GraphKind::Cdfg => Ok(build_graph(ir, GraphKind::Cdfg)),
    }
}

fn node_kind_for(opcode: Opcode) -> NodeKind {
    match opcode {
        Opcode::ReadPort | Opcode::WritePort => NodeKind::Port,
        Opcode::Const | Opcode::Alloca => NodeKind::Misc,
        _ => NodeKind::Operation,
    }
}

fn build_graph(ir: &IrFunction, kind: GraphKind) -> IrGraph {
    let cdfg = kind == GraphKind::Cdfg;
    let mut nodes: Vec<IrNode> = Vec::new();
    let mut edges: Vec<IrEdge> = Vec::new();
    let mut op_to_node: HashMap<OpId, NodeId> = HashMap::new();

    // Operation / port / misc nodes.
    for op in ir.iter_ops() {
        if !cdfg && op.is_control() {
            // Pure DFGs omit branch/return terminators.
            continue;
        }
        let node_kind = node_kind_for(op.opcode);
        let cluster = match node_kind {
            NodeKind::Port | NodeKind::Misc => -1,
            _ => op.block.index() as i32,
        };
        let id = NodeId(nodes.len());
        nodes.push(IrNode {
            id,
            kind: node_kind,
            opcode: Some(op.opcode),
            bitwidth: op.bits(),
            cluster,
            op: Some(op.id),
            array: op.array,
        });
        op_to_node.insert(op.id, id);
    }

    // Block nodes (CDFG only).
    let mut block_nodes: HashMap<usize, NodeId> = HashMap::new();
    if cdfg && ir.has_control_flow() {
        for block in &ir.blocks {
            let id = NodeId(nodes.len());
            nodes.push(IrNode {
                id,
                kind: NodeKind::Block,
                opcode: None,
                bitwidth: 0,
                cluster: block.id.index() as i32,
                op: None,
                array: None,
            });
            block_nodes.insert(block.id.index(), id);
        }
    }

    // Data edges from operand relationships; a back edge is a use of a value
    // defined later in program order (the phi latch operand).
    for op in ir.iter_ops() {
        let Some(&dst) = op_to_node.get(&op.id) else { continue };
        for &operand in &op.operands {
            let Some(&src) = op_to_node.get(&operand) else { continue };
            edges.push(IrEdge {
                src,
                dst,
                kind: EdgeKind::Data,
                is_back_edge: operand.index() > op.id.index(),
            });
        }
    }

    // Memory-ordering edges: store -> next accesses of the same array.
    let mut last_store: HashMap<VarId, OpId> = HashMap::new();
    for op in ir.iter_ops() {
        let Some(array) = op.array else { continue };
        match op.opcode {
            Opcode::Load => {
                if let Some(&store) = last_store.get(&array) {
                    if let (Some(&src), Some(&dst)) =
                        (op_to_node.get(&store), op_to_node.get(&op.id))
                    {
                        edges.push(IrEdge {
                            src,
                            dst,
                            kind: EdgeKind::Memory,
                            is_back_edge: false,
                        });
                    }
                }
            }
            Opcode::Store => {
                if let Some(&store) = last_store.get(&array) {
                    if let (Some(&src), Some(&dst)) =
                        (op_to_node.get(&store), op_to_node.get(&op.id))
                    {
                        edges.push(IrEdge {
                            src,
                            dst,
                            kind: EdgeKind::Memory,
                            is_back_edge: false,
                        });
                    }
                }
                last_store.insert(array, op.id);
            }
            _ => {}
        }
    }

    // Control edges (CDFG only): block node -> ops in the block, and block
    // terminator -> successor block node (back edge when jumping backwards).
    if cdfg && ir.has_control_flow() {
        for block in &ir.blocks {
            let block_node = block_nodes[&block.id.index()];
            for &op in &block.ops {
                if let Some(&node) = op_to_node.get(&op) {
                    let node_kind = nodes[node.0].kind;
                    if node_kind == NodeKind::Operation {
                        edges.push(IrEdge {
                            src: block_node,
                            dst: node,
                            kind: EdgeKind::Control,
                            is_back_edge: false,
                        });
                    }
                }
            }
            // Terminator of the block, if any (the last branch/return op).
            let terminator = block
                .ops
                .iter()
                .rev()
                .find(|&&op| ir.op(op).is_control())
                .and_then(|op| op_to_node.get(op))
                .copied();
            for &succ in &block.succs {
                let succ_node = block_nodes[&succ.index()];
                let is_back_edge = succ.index() <= block.id.index();
                let src = terminator.unwrap_or(block_node);
                edges.push(IrEdge { src, dst: succ_node, kind: EdgeKind::Control, is_back_edge });
            }
        }
    }

    IrGraph { name: ir.name.clone(), kind, nodes, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinaryOp, Expr, FunctionBuilder, Stmt};
    use crate::types::{ArrayType, ScalarType};

    fn straightline_graph() -> IrGraph {
        let mut f = FunctionBuilder::new("mac");
        let a = f.param("a", ScalarType::i32());
        let b = f.param("b", ScalarType::i32());
        let c = f.param("c", ScalarType::i32());
        let out = f.local("out", ScalarType::signed(64));
        f.assign(
            out,
            Expr::binary(
                BinaryOp::Add,
                Expr::binary(BinaryOp::Mul, Expr::var(a), Expr::var(b)),
                Expr::var(c),
            ),
        );
        f.ret(out);
        extract_graph(&f.finish().unwrap(), GraphKind::Dfg).unwrap()
    }

    fn loopy_graph() -> IrGraph {
        let mut f = FunctionBuilder::new("dot");
        let x = f.array_param("x", ArrayType::new(ScalarType::i32(), 16));
        let acc = f.local("acc", ScalarType::signed(64));
        let i = f.local("i", ScalarType::i32());
        f.assign(acc, Expr::constant(0));
        f.push(Stmt::for_loop(
            i,
            0,
            16,
            1,
            vec![Stmt::assign(
                acc,
                Expr::binary(BinaryOp::Add, Expr::var(acc), Expr::index(x, Expr::var(i))),
            )],
        ));
        f.ret(acc);
        extract_graph(&f.finish().unwrap(), GraphKind::Cdfg).unwrap()
    }

    #[test]
    fn dfg_is_a_dag_without_back_edges() {
        let g = straightline_graph();
        assert!(g.check_integrity().is_ok());
        assert_eq!(g.kind, GraphKind::Dfg);
        assert_eq!(g.back_edge_count(), 0);
        assert!(g.is_dag_ignoring_back_edges());
        assert!(g.topological_order().is_some());
        assert!(g.longest_data_path() >= 2);
    }

    #[test]
    fn dfg_extraction_rejects_control_flow() {
        let mut f = FunctionBuilder::new("loopy");
        let i = f.local("i", ScalarType::i32());
        let acc = f.local("acc", ScalarType::i32());
        f.push(Stmt::for_loop(i, 0, 4, 1, vec![Stmt::assign(acc, Expr::var(i))]));
        f.ret(acc);
        let func = f.finish().unwrap();
        assert!(matches!(
            extract_graph(&func, GraphKind::Dfg),
            Err(Error::UnsupportedGraphKind(_))
        ));
        assert!(extract_graph(&func, GraphKind::Cdfg).is_ok());
    }

    #[test]
    fn cdfg_has_block_nodes_control_edges_and_back_edges() {
        let g = loopy_graph();
        assert!(g.check_integrity().is_ok());
        assert!(g.nodes().iter().any(|n| n.kind == NodeKind::Block));
        assert!(g.edges().iter().any(|e| e.kind == EdgeKind::Control));
        assert!(g.back_edge_count() > 0, "loop must create back edges");
        // Removing back edges must make it acyclic again.
        assert!(g.is_dag_ignoring_back_edges());
    }

    #[test]
    fn ports_and_constants_are_tagged() {
        let g = straightline_graph();
        assert!(g.nodes().iter().any(|n| n.kind == NodeKind::Port));
        let ports = g.nodes().iter().filter(|n| n.kind == NodeKind::Port).count();
        // 3 input ports + 1 output port.
        assert_eq!(ports, 4);
        assert!(g.nodes().iter().filter(|n| n.kind == NodeKind::Port).all(|n| n.cluster == -1));
    }

    #[test]
    fn node_of_op_round_trips() {
        let g = straightline_graph();
        for node in g.nodes() {
            if let Some(op) = node.op {
                assert_eq!(g.node_of_op(op), Some(node.id));
            }
        }
    }

    #[test]
    fn memory_edges_connect_store_to_load() {
        let mut f = FunctionBuilder::new("rmw");
        let buf = f.array_param("buf", ArrayType::new(ScalarType::i32(), 8));
        let x = f.local("x", ScalarType::i32());
        f.store(buf, Expr::constant(0), Expr::constant(42));
        f.assign(x, Expr::index(buf, Expr::constant(0)));
        f.ret(x);
        let g = extract_graph(&f.finish().unwrap(), GraphKind::Dfg).unwrap();
        assert!(g.edges().iter().any(|e| e.kind == EdgeKind::Memory));
    }

    #[test]
    fn degrees_match_edge_counts() {
        let g = loopy_graph();
        let total_in: usize = g.in_degrees(None).iter().sum();
        let total_out: usize = g.out_degrees(None).iter().sum();
        assert_eq!(total_in, g.edge_count());
        assert_eq!(total_out, g.edge_count());
    }
}
