//! Value types used by the behavioural AST and the IR.
//!
//! HLS designs are dominated by arbitrary-precision integers (`ap_int<N>` /
//! `ap_uint<N>` in Vitis HLS); the bitwidth of each operation is one of the
//! node features used by the predictors (Table 1 of the paper), so the type
//! system tracks it explicitly.

use std::fmt;

/// Maximum bitwidth supported by the IR, matching the `0..=256` range listed
/// in Table 1 of the paper.
pub const MAX_BITWIDTH: u16 = 256;

/// A validated bitwidth in `1..=256` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitWidth(u16);

impl BitWidth {
    /// Creates a new bitwidth, clamping to the supported `1..=256` range.
    ///
    /// Clamping (rather than erroring) mirrors how HLS front ends saturate
    /// user-specified precisions to the widest supported type.
    pub fn new(bits: u16) -> Self {
        BitWidth(bits.clamp(1, MAX_BITWIDTH))
    }

    /// Returns the width in bits.
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Creates a bitwidth without clamping.
    ///
    /// Only the verifier's test harnesses need out-of-range widths (to prove
    /// the `zero-width` diagnostic fires); normal construction must go
    /// through [`BitWidth::new`].
    #[doc(hidden)]
    pub fn raw(bits: u16) -> Self {
        BitWidth(bits)
    }

    /// Width of the result of adding two values of widths `a` and `b`
    /// (one extra carry bit, saturated at [`MAX_BITWIDTH`]).
    pub fn add_result(a: BitWidth, b: BitWidth) -> BitWidth {
        BitWidth::new(a.0.max(b.0).saturating_add(1))
    }

    /// Width of the result of multiplying two values of widths `a` and `b`.
    pub fn mul_result(a: BitWidth, b: BitWidth) -> BitWidth {
        BitWidth::new(a.0.saturating_add(b.0))
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl From<u16> for BitWidth {
    fn from(bits: u16) -> Self {
        BitWidth::new(bits)
    }
}

/// Signedness of a scalar integer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Signedness {
    /// Two's-complement signed integer.
    #[default]
    Signed,
    /// Unsigned integer.
    Unsigned,
}

/// A scalar integer type with explicit bitwidth, modelled on `ap_(u)int<N>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarType {
    /// Signedness of the value.
    pub signedness: Signedness,
    /// Width of the value in bits.
    pub width: BitWidth,
}

impl ScalarType {
    /// Creates a new scalar type.
    pub fn new(signedness: Signedness, width: impl Into<BitWidth>) -> Self {
        ScalarType { signedness, width: width.into() }
    }

    /// Signed integer of the given width.
    pub fn signed(bits: u16) -> Self {
        ScalarType::new(Signedness::Signed, bits)
    }

    /// Unsigned integer of the given width.
    pub fn unsigned(bits: u16) -> Self {
        ScalarType::new(Signedness::Unsigned, bits)
    }

    /// `int` — 32-bit signed.
    pub fn i32() -> Self {
        ScalarType::signed(32)
    }

    /// `short` — 16-bit signed.
    pub fn i16() -> Self {
        ScalarType::signed(16)
    }

    /// `char` — 8-bit signed.
    pub fn i8() -> Self {
        ScalarType::signed(8)
    }

    /// `unsigned int` — 32-bit unsigned.
    pub fn u32() -> Self {
        ScalarType::unsigned(32)
    }

    /// 1-bit unsigned value used for comparison results.
    pub fn bool() -> Self {
        ScalarType::unsigned(1)
    }

    /// Returns true if the type is signed.
    pub fn is_signed(&self) -> bool {
        self.signedness == Signedness::Signed
    }

    /// Returns the bitwidth of the type.
    pub fn bits(&self) -> u16 {
        self.width.bits()
    }
}

impl Default for ScalarType {
    fn default() -> Self {
        ScalarType::i32()
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.signedness {
            Signedness::Signed => "int",
            Signedness::Unsigned => "uint",
        };
        write!(f, "{prefix}{}", self.width.bits())
    }
}

/// A statically sized one-dimensional array, modelling C arrays mapped to
/// BRAM/LUTRAM/registers by the HLS tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayType {
    /// Element type.
    pub elem: ScalarType,
    /// Number of elements.
    pub len: usize,
}

impl ArrayType {
    /// Creates a new array type.
    pub fn new(elem: ScalarType, len: usize) -> Self {
        ArrayType { elem, len: len.max(1) }
    }

    /// Total storage in bits.
    pub fn total_bits(&self) -> u64 {
        self.elem.bits() as u64 * self.len as u64
    }
}

impl fmt::Display for ArrayType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.elem, self.len)
    }
}

/// A value type: either a scalar or an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// A scalar integer.
    Scalar(ScalarType),
    /// A fixed-size array.
    Array(ArrayType),
}

impl ValueType {
    /// Returns the scalar type if this is a scalar.
    pub fn as_scalar(&self) -> Option<ScalarType> {
        match self {
            ValueType::Scalar(s) => Some(*s),
            ValueType::Array(_) => None,
        }
    }

    /// Returns the array type if this is an array.
    pub fn as_array(&self) -> Option<ArrayType> {
        match self {
            ValueType::Scalar(_) => None,
            ValueType::Array(a) => Some(*a),
        }
    }

    /// Element bitwidth: the scalar width, or the array element width.
    pub fn elem_bits(&self) -> u16 {
        match self {
            ValueType::Scalar(s) => s.bits(),
            ValueType::Array(a) => a.elem.bits(),
        }
    }

    /// Returns true if this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, ValueType::Array(_))
    }
}

impl From<ScalarType> for ValueType {
    fn from(s: ScalarType) -> Self {
        ValueType::Scalar(s)
    }
}

impl From<ArrayType> for ValueType {
    fn from(a: ArrayType) -> Self {
        ValueType::Array(a)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Scalar(s) => s.fmt(f),
            ValueType::Array(a) => a.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitwidth_clamps_to_supported_range() {
        assert_eq!(BitWidth::new(0).bits(), 1);
        assert_eq!(BitWidth::new(32).bits(), 32);
        assert_eq!(BitWidth::new(1000).bits(), MAX_BITWIDTH);
    }

    #[test]
    fn bitwidth_result_rules() {
        let a = BitWidth::new(32);
        let b = BitWidth::new(16);
        assert_eq!(BitWidth::add_result(a, b).bits(), 33);
        assert_eq!(BitWidth::mul_result(a, b).bits(), 48);
        let wide = BitWidth::new(200);
        assert_eq!(BitWidth::mul_result(wide, wide).bits(), MAX_BITWIDTH);
    }

    #[test]
    fn scalar_type_constructors() {
        assert_eq!(ScalarType::i32().bits(), 32);
        assert!(ScalarType::i32().is_signed());
        assert!(!ScalarType::u32().is_signed());
        assert_eq!(ScalarType::bool().bits(), 1);
        assert_eq!(ScalarType::default(), ScalarType::i32());
    }

    #[test]
    fn array_type_total_bits() {
        let arr = ArrayType::new(ScalarType::i16(), 64);
        assert_eq!(arr.total_bits(), 16 * 64);
        assert_eq!(ArrayType::new(ScalarType::i8(), 0).len, 1);
    }

    #[test]
    fn value_type_accessors() {
        let s: ValueType = ScalarType::i32().into();
        let a: ValueType = ArrayType::new(ScalarType::i8(), 16).into();
        assert!(s.as_scalar().is_some());
        assert!(s.as_array().is_none());
        assert!(a.is_array());
        assert_eq!(a.elem_bits(), 8);
        assert_eq!(s.elem_bits(), 32);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ScalarType::i32().to_string(), "int32");
        assert_eq!(ScalarType::unsigned(5).to_string(), "uint5");
        assert_eq!(ArrayType::new(ScalarType::i8(), 4).to_string(), "int8[4]");
        assert_eq!(BitWidth::new(7).to_string(), "7b");
    }
}
