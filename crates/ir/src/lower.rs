//! Lowering from the behavioural AST to the operation-level IR.
//!
//! The lowering mirrors what an HLS front end does after parsing and early
//! optimisation: scalar variables are renamed into SSA values, `if`/`else`
//! joins become `mux` operations, loops become header blocks with `phi`
//! operations, and array accesses become `getelementptr` + `load`/`store`
//! pairs against a memory interface port.

use std::collections::{BTreeSet, HashMap};

use crate::ast::{BinaryOp, Expr, Function, Stmt, UnaryOp, VarId};
use crate::ir::{BlockId, IrFunction, OpId};
use crate::opcode::Opcode;
use crate::types::{BitWidth, ScalarType, Signedness, ValueType};
use crate::{Error, Result};

/// Lowers a validated AST function into the operation-level IR.
///
/// # Errors
/// Returns [`Error::Lowering`] if the function references arrays that were
/// never declared as such, and propagates validation errors from
/// [`Function::validate`].
pub fn lower_function(func: &Function) -> Result<IrFunction> {
    let _span = hls_gnn_obs::span!("lower", kernel = func.name);
    func.validate()?;
    let mut lowerer = Lowerer::new(func);
    lowerer.lower_params();
    lowerer.lower_stmts(&func.body.clone())?;
    let ir = lowerer.finish();
    ir.check_integrity().map_err(Error::Lowering)?;
    // Lowering output failing structural verification is a compiler bug, not
    // an input error: assert it in debug builds (release trusts lowering and
    // gates only untrusted IR, e.g. in `hls_sim::run_flow_on_ir`).
    #[cfg(debug_assertions)]
    if let Err(diagnostics) = crate::verify::verify_function(&ir) {
        let report: Vec<String> = diagnostics.iter().map(|d| d.to_string()).collect();
        panic!(
            "lower_function produced invalid IR for `{}`:\n{}\n{ir}",
            ir.name,
            report.join("\n")
        );
    }
    Ok(ir)
}

struct Lowerer<'a> {
    src: &'a Function,
    ir: IrFunction,
    current: BlockId,
    scalar_env: HashMap<VarId, OpId>,
    array_env: HashMap<VarId, OpId>,
    loop_depth: usize,
    /// True once the current block hit a `ret`; statements lowered while
    /// sealed are dead code and are dropped.
    sealed: bool,
}

impl<'a> Lowerer<'a> {
    fn new(src: &'a Function) -> Self {
        let ir = IrFunction::new(&src.name);
        Lowerer {
            src,
            ir,
            current: BlockId(0),
            scalar_env: HashMap::new(),
            array_env: HashMap::new(),
            loop_depth: 0,
            sealed: false,
        }
    }

    fn finish(mut self) -> IrFunction {
        // Terminate every block that still falls off the end (a function
        // without a trailing `return`, or a merge block both arms returned
        // out of): control reaching it means the function is done.
        for index in 0..self.ir.block_count() {
            let block = BlockId(index);
            let unterminated = match self.ir.block(block).ops.last() {
                Some(&op) => !matches!(self.ir.op(op).opcode, Opcode::Br | Opcode::Ret),
                None => true,
            };
            if unterminated {
                self.ir.push_op(
                    block,
                    Opcode::Ret,
                    BitWidth::new(1),
                    Signedness::Unsigned,
                    vec![],
                    None,
                    None,
                );
            }
        }
        self.ir
    }

    fn decl_scalar_type(&self, var: VarId) -> ScalarType {
        match self.src.var_type(var) {
            ValueType::Scalar(s) => s,
            ValueType::Array(a) => a.elem,
        }
    }

    fn push(
        &mut self,
        opcode: Opcode,
        width: BitWidth,
        signedness: Signedness,
        operands: Vec<OpId>,
        array: Option<VarId>,
        const_value: Option<i64>,
    ) -> OpId {
        self.ir.push_op(self.current, opcode, width, signedness, operands, array, const_value)
    }

    fn lower_params(&mut self) {
        for var in self.src.params().collect::<Vec<_>>() {
            let ty = self.src.var_type(var);
            match ty {
                ValueType::Scalar(s) => {
                    let op = self.push(Opcode::ReadPort, s.width, s.signedness, vec![], None, None);
                    self.ir.op_mut(op).source_var = Some(var);
                    self.scalar_env.insert(var, op);
                }
                ValueType::Array(a) => {
                    let op = self.push(
                        Opcode::ReadPort,
                        a.elem.width,
                        a.elem.signedness,
                        vec![],
                        Some(var),
                        None,
                    );
                    self.ir.op_mut(op).source_var = Some(var);
                    self.array_env.insert(var, op);
                }
            }
        }
        // Local arrays become explicit allocations.
        for (index, decl) in self.src.decls.iter().enumerate() {
            if decl.is_param {
                continue;
            }
            if let ValueType::Array(a) = decl.ty {
                let var = crate::ast::VarId(index);
                let op = self.push(
                    Opcode::Alloca,
                    a.elem.width,
                    a.elem.signedness,
                    vec![],
                    Some(var),
                    None,
                );
                self.ir.op_mut(op).source_var = Some(var);
                self.array_env.insert(var, op);
            }
        }
    }

    fn constant(&mut self, value: i64, width: u16) -> OpId {
        self.push(
            Opcode::Const,
            BitWidth::new(width),
            Signedness::Signed,
            vec![],
            None,
            Some(value),
        )
    }

    fn scalar_value(&mut self, var: VarId) -> (OpId, ScalarType) {
        let ty = self.decl_scalar_type(var);
        if let Some(&op) = self.scalar_env.get(&var) {
            return (op, ty);
        }
        // Reading an uninitialised local: materialise a zero constant, as HLS
        // front ends do after `-O1` (undef folded to 0).
        let op = self.constant(0, ty.bits());
        self.scalar_env.insert(var, op);
        (op, ty)
    }

    fn array_base(&mut self, var: VarId) -> Result<OpId> {
        self.array_env.get(&var).copied().ok_or_else(|| {
            Error::Lowering(format!("array `{}` has no base op", self.src.var_name(var)))
        })
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<(OpId, ScalarType)> {
        match expr {
            Expr::Const { value, width } => {
                let op = self.constant(*value, *width);
                Ok((op, ScalarType::signed(*width)))
            }
            Expr::Var(var) => Ok(self.scalar_value(*var)),
            Expr::ArrayElem { array, index } => {
                let base = self.array_base(*array)?;
                let (index_op, _) = self.lower_expr(index)?;
                let elem = self.decl_scalar_type(*array);
                let gep = self.push(
                    Opcode::GetElementPtr,
                    BitWidth::new(32),
                    Signedness::Unsigned,
                    vec![base, index_op],
                    Some(*array),
                    None,
                );
                let load = self.push(
                    Opcode::Load,
                    elem.width,
                    elem.signedness,
                    vec![gep],
                    Some(*array),
                    None,
                );
                Ok((load, elem))
            }
            Expr::Unary { op, arg } => {
                let (arg_op, ty) = self.lower_expr(arg)?;
                let opcode = match op {
                    UnaryOp::Neg => Opcode::Neg,
                    UnaryOp::Not => Opcode::Not,
                };
                let out = self.push(opcode, ty.width, ty.signedness, vec![arg_op], None, None);
                Ok((out, ty))
            }
            Expr::Binary { op, lhs, rhs } => {
                let (lhs_op, lhs_ty) = self.lower_expr(lhs)?;
                let (rhs_op, rhs_ty) = self.lower_expr(rhs)?;
                let signed = lhs_ty.is_signed() || rhs_ty.is_signed();
                let signedness = if signed { Signedness::Signed } else { Signedness::Unsigned };
                let max_bits = lhs_ty.bits().max(rhs_ty.bits());
                let (opcode, width, out_sign) = match op {
                    BinaryOp::Add => {
                        (Opcode::Add, BitWidth::add_result(lhs_ty.width, rhs_ty.width), signedness)
                    }
                    BinaryOp::Sub => {
                        (Opcode::Sub, BitWidth::add_result(lhs_ty.width, rhs_ty.width), signedness)
                    }
                    BinaryOp::Mul => {
                        (Opcode::Mul, BitWidth::mul_result(lhs_ty.width, rhs_ty.width), signedness)
                    }
                    BinaryOp::Div => {
                        (if signed { Opcode::SDiv } else { Opcode::UDiv }, lhs_ty.width, signedness)
                    }
                    BinaryOp::Rem => {
                        (if signed { Opcode::SRem } else { Opcode::URem }, lhs_ty.width, signedness)
                    }
                    BinaryOp::And => (Opcode::And, BitWidth::new(max_bits), signedness),
                    BinaryOp::Or => (Opcode::Or, BitWidth::new(max_bits), signedness),
                    BinaryOp::Xor => (Opcode::Xor, BitWidth::new(max_bits), signedness),
                    BinaryOp::Shl => (Opcode::Shl, lhs_ty.width, lhs_ty.signedness),
                    BinaryOp::Shr => (
                        if lhs_ty.is_signed() { Opcode::AShr } else { Opcode::LShr },
                        lhs_ty.width,
                        lhs_ty.signedness,
                    ),
                    BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
                    | BinaryOp::Eq
                    | BinaryOp::Ne => (Opcode::ICmp, BitWidth::new(1), Signedness::Unsigned),
                };
                let out = self.push(opcode, width, out_sign, vec![lhs_op, rhs_op], None, None);
                Ok((out, ScalarType::new(out_sign, width)))
            }
            Expr::Select { cond, then_val, else_val } => {
                let (cond_op, _) = self.lower_expr(cond)?;
                let (then_op, then_ty) = self.lower_expr(then_val)?;
                let (else_op, else_ty) = self.lower_expr(else_val)?;
                let bits = then_ty.bits().max(else_ty.bits());
                let signedness = if then_ty.is_signed() || else_ty.is_signed() {
                    Signedness::Signed
                } else {
                    Signedness::Unsigned
                };
                let out = self.push(
                    Opcode::Select,
                    BitWidth::new(bits),
                    signedness,
                    vec![cond_op, then_op, else_op],
                    None,
                    None,
                );
                Ok((out, ScalarType::new(signedness, bits)))
            }
        }
    }

    /// Coerces a value to the declared width of `target`, inserting a cast
    /// operation when the widths differ.
    fn coerce_to(&mut self, value: OpId, value_ty: ScalarType, target: VarId) -> OpId {
        let target_ty = self.decl_scalar_type(target);
        if target_ty.bits() == value_ty.bits() {
            return value;
        }
        let opcode = if target_ty.bits() < value_ty.bits() {
            Opcode::Trunc
        } else if value_ty.is_signed() {
            Opcode::SExt
        } else {
            Opcode::ZExt
        };
        self.push(opcode, target_ty.width, target_ty.signedness, vec![value], None, None)
    }

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for stmt in stmts {
            if self.sealed {
                break; // dead code after a `return`
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Assign { target, value } => {
                let (value_op, value_ty) = self.lower_expr(value)?;
                let coerced = self.coerce_to(value_op, value_ty, *target);
                self.ir.op_mut(coerced).source_var = Some(*target);
                self.scalar_env.insert(*target, coerced);
                Ok(())
            }
            Stmt::Store { array, index, value } => {
                let base = self.array_base(*array)?;
                let (index_op, _) = self.lower_expr(index)?;
                let (value_op, _) = self.lower_expr(value)?;
                let elem = self.decl_scalar_type(*array);
                let gep = self.push(
                    Opcode::GetElementPtr,
                    BitWidth::new(32),
                    Signedness::Unsigned,
                    vec![base, index_op],
                    Some(*array),
                    None,
                );
                self.push(
                    Opcode::Store,
                    elem.width,
                    elem.signedness,
                    vec![value_op, gep],
                    Some(*array),
                    None,
                );
                Ok(())
            }
            Stmt::Return { value } => {
                if let Some(value) = value {
                    let (value_op, value_ty) = self.lower_expr(value)?;
                    self.push(
                        Opcode::WritePort,
                        value_ty.width,
                        value_ty.signedness,
                        vec![value_op],
                        None,
                        None,
                    );
                }
                self.push(Opcode::Ret, BitWidth::new(1), Signedness::Unsigned, vec![], None, None);
                self.sealed = true;
                Ok(())
            }
            Stmt::If { cond, then_body, else_body } => self.lower_if(cond, then_body, else_body),
            Stmt::For { induction, start, end, step, body } => {
                self.lower_for(*induction, *start, *end, *step, body)
            }
        }
    }

    fn lower_if(&mut self, cond: &Expr, then_body: &[Stmt], else_body: &[Stmt]) -> Result<()> {
        let (cond_op, _) = self.lower_expr(cond)?;
        self.push(Opcode::Br, BitWidth::new(1), Signedness::Unsigned, vec![cond_op], None, None);
        let branch_block = self.current;

        let then_block = self.ir.new_block(self.loop_depth);
        let else_block = self.ir.new_block(self.loop_depth);
        let merge_block = self.ir.new_block(self.loop_depth);
        self.ir.add_cfg_edge(branch_block, then_block);
        self.ir.add_cfg_edge(branch_block, else_block);

        let env_before = self.scalar_env.clone();

        // Then arm. An arm that returned is sealed: it does not branch to the
        // merge block and its values do not take part in the merge.
        self.current = then_block;
        self.lower_stmts(then_body)?;
        let then_sealed = self.sealed;
        if !then_sealed {
            self.push(Opcode::Br, BitWidth::new(1), Signedness::Unsigned, vec![], None, None);
            self.ir.add_cfg_edge(self.current, merge_block);
        }
        self.sealed = false;
        let env_then = self.scalar_env.clone();

        // Else arm.
        self.scalar_env = env_before.clone();
        self.current = else_block;
        self.lower_stmts(else_body)?;
        let else_sealed = self.sealed;
        if !else_sealed {
            self.push(Opcode::Br, BitWidth::new(1), Signedness::Unsigned, vec![], None, None);
            self.ir.add_cfg_edge(self.current, merge_block);
        }
        self.sealed = false;
        let env_else = self.scalar_env.clone();

        self.current = merge_block;
        if then_sealed || else_sealed {
            // At most one arm reaches the merge: adopt its environment
            // directly (both sealed leaves the merge dead and re-seals).
            self.scalar_env = match (then_sealed, else_sealed) {
                (false, true) => env_then,
                (true, false) => env_else,
                _ => {
                    self.sealed = true;
                    env_before
                }
            };
            return Ok(());
        }

        // Merge arm: insert mux operations for values that diverged.
        let mut merged: BTreeSet<VarId> = BTreeSet::new();
        merged.extend(env_then.keys().copied());
        merged.extend(env_else.keys().copied());
        for var in merged {
            let then_val = env_then.get(&var).copied();
            let else_val = env_else.get(&var).copied();
            match (then_val, else_val) {
                (Some(t), Some(e)) if t == e => {
                    self.scalar_env.insert(var, t);
                }
                (t, e) => {
                    let ty = self.decl_scalar_type(var);
                    let t = match t {
                        Some(op) => op,
                        None => self.constant(0, ty.bits()),
                    };
                    let e = match e {
                        Some(op) => op,
                        None => self.constant(0, ty.bits()),
                    };
                    let mux = self.push(
                        Opcode::Mux,
                        ty.width,
                        ty.signedness,
                        vec![cond_op, t, e],
                        None,
                        None,
                    );
                    self.ir.op_mut(mux).source_var = Some(var);
                    self.scalar_env.insert(var, mux);
                }
            }
        }
        Ok(())
    }

    fn lower_for(
        &mut self,
        induction: VarId,
        start: i64,
        end: i64,
        step: i64,
        body: &[Stmt],
    ) -> Result<()> {
        let induction_ty = self.decl_scalar_type(induction);
        let init = self.constant(start, induction_ty.bits());
        self.scalar_env.insert(induction, init);
        let env_at_preheader = self.scalar_env.clone();
        self.push(Opcode::Br, BitWidth::new(1), Signedness::Unsigned, vec![], None, None);
        let preheader = self.current;

        let header = self.ir.new_block(self.loop_depth + 1);
        self.ir.block_mut(header).is_loop_header = true;
        let body_block = self.ir.new_block(self.loop_depth + 1);
        let exit_block = self.ir.new_block(self.loop_depth);
        self.ir.add_cfg_edge(preheader, header);

        // Variables live across the back edge get phi nodes in the header.
        let mut modified = collect_assigned(body);
        modified.insert(induction);

        self.current = header;
        let mut phis: Vec<(VarId, OpId)> = Vec::new();
        for &var in &modified {
            let ty = self.decl_scalar_type(var);
            let init_val = match self.scalar_env.get(&var) {
                Some(&op) => op,
                None => self.constant(0, ty.bits()),
            };
            let phi = self.push(Opcode::Phi, ty.width, ty.signedness, vec![init_val], None, None);
            self.ir.op_mut(phi).source_var = Some(var);
            self.scalar_env.insert(var, phi);
            phis.push((var, phi));
        }
        let induction_phi = self.scalar_env[&induction];
        let bound = self.constant(end, induction_ty.bits());
        let cmp = self.push(
            Opcode::ICmp,
            BitWidth::new(1),
            Signedness::Unsigned,
            vec![induction_phi, bound],
            None,
            None,
        );
        self.push(Opcode::Br, BitWidth::new(1), Signedness::Unsigned, vec![cmp], None, None);
        self.ir.add_cfg_edge(header, body_block);
        self.ir.add_cfg_edge(header, exit_block);

        // Loop body. A body that returned is sealed: no induction step, no
        // back edge, and the phis keep their single init operand.
        self.current = body_block;
        self.loop_depth += 1;
        self.lower_stmts(body)?;
        let body_sealed = self.sealed;
        if !body_sealed {
            let step_const = self.constant(step, induction_ty.bits());
            let current_induction = self.scalar_env[&induction];
            let next = self.push(
                Opcode::Add,
                induction_ty.width,
                induction_ty.signedness,
                vec![current_induction, step_const],
                None,
                None,
            );
            self.ir.op_mut(next).source_var = Some(induction);
            self.scalar_env.insert(induction, next);
            self.push(Opcode::Br, BitWidth::new(1), Signedness::Unsigned, vec![], None, None);
            self.ir.add_cfg_edge(self.current, header);
        }
        self.sealed = false;
        self.loop_depth -= 1;

        // Patch phi back-edge operands with the latched values.
        if !body_sealed {
            for (var, phi) in &phis {
                let latched = self.scalar_env[var];
                if latched != *phi {
                    self.ir.op_mut(*phi).operands.push(latched);
                }
            }
        }

        // After the loop, the pre-loop environment holds again with the
        // header phi values for everything the body modified. Restoring the
        // snapshot (instead of keeping the body's environment) discards
        // values materialised inside the body — e.g. zero constants for
        // uninitialised locals — which do not dominate the exit block.
        self.current = exit_block;
        self.scalar_env = env_at_preheader;
        for (var, phi) in phis {
            self.scalar_env.insert(var, phi);
        }
        Ok(())
    }
}

/// Collects the set of scalar variables assigned anywhere in `stmts`
/// (including nested control flow and loop induction variables).
fn collect_assigned(stmts: &[Stmt]) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    fn walk(stmts: &[Stmt], out: &mut BTreeSet<VarId>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, .. } => {
                    out.insert(*target);
                }
                Stmt::Store { .. } | Stmt::Return { .. } => {}
                Stmt::If { then_body, else_body, .. } => {
                    walk(then_body, out);
                    walk(else_body, out);
                }
                Stmt::For { induction, body, .. } => {
                    out.insert(*induction);
                    walk(body, out);
                }
            }
        }
    }
    walk(stmts, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::FunctionBuilder;
    use crate::types::{ArrayType, ScalarType};

    fn straightline() -> Function {
        let mut f = FunctionBuilder::new("mac");
        let a = f.param("a", ScalarType::i32());
        let b = f.param("b", ScalarType::i32());
        let c = f.param("c", ScalarType::i32());
        let out = f.local("out", ScalarType::signed(64));
        f.assign(
            out,
            Expr::binary(
                BinaryOp::Add,
                Expr::binary(BinaryOp::Mul, Expr::var(a), Expr::var(b)),
                Expr::var(c),
            ),
        );
        f.ret(out);
        f.finish().unwrap()
    }

    fn loopy() -> Function {
        let mut f = FunctionBuilder::new("dot");
        let x = f.array_param("x", ArrayType::new(ScalarType::i32(), 16));
        let y = f.array_param("y", ArrayType::new(ScalarType::i32(), 16));
        let acc = f.local("acc", ScalarType::signed(64));
        let i = f.local("i", ScalarType::i32());
        f.assign(acc, Expr::constant(0));
        f.push(Stmt::for_loop(
            i,
            0,
            16,
            1,
            vec![Stmt::assign(
                acc,
                Expr::binary(
                    BinaryOp::Add,
                    Expr::var(acc),
                    Expr::binary(
                        BinaryOp::Mul,
                        Expr::index(x, Expr::var(i)),
                        Expr::index(y, Expr::var(i)),
                    ),
                ),
            )],
        ));
        f.ret(acc);
        f.finish().unwrap()
    }

    #[test]
    fn straightline_lowers_to_single_block() {
        let ir = lower_function(&straightline()).unwrap();
        assert_eq!(ir.block_count(), 1);
        assert!(!ir.has_control_flow());
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::Mul));
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::WritePort));
        // The add result (65 bits) is truncated to the 64-bit local.
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::Trunc));
    }

    #[test]
    fn loop_lowering_creates_header_and_back_edge() {
        let ir = lower_function(&loopy()).unwrap();
        assert!(ir.has_control_flow());
        assert!(ir.blocks.iter().any(|b| b.is_loop_header));
        assert_eq!(ir.max_loop_depth(), 1);
        // The header's phi ops must have two operands (init + latched value).
        let phi_ops: Vec<_> = ir.iter_ops().filter(|op| op.opcode == Opcode::Phi).collect();
        assert!(!phi_ops.is_empty());
        assert!(phi_ops.iter().all(|op| op.operands.len() == 2));
        // A back edge exists: some block with a larger id points to a smaller one.
        let has_back_edge = ir.blocks.iter().any(|b| {
            b.succs.iter().any(|s| s.index() < b.id.index() || ir.block(*s).is_loop_header)
        });
        assert!(has_back_edge);
    }

    #[test]
    fn if_lowering_inserts_mux() {
        let mut f = FunctionBuilder::new("absdiff");
        let a = f.param("a", ScalarType::i32());
        let b = f.param("b", ScalarType::i32());
        let out = f.local("out", ScalarType::i32());
        f.push(Stmt::if_else(
            Expr::binary(BinaryOp::Gt, Expr::var(a), Expr::var(b)),
            vec![Stmt::assign(out, Expr::binary(BinaryOp::Sub, Expr::var(a), Expr::var(b)))],
            vec![Stmt::assign(out, Expr::binary(BinaryOp::Sub, Expr::var(b), Expr::var(a)))],
        ));
        f.ret(out);
        let ir = lower_function(&f.finish().unwrap()).unwrap();
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::Mux));
        assert_eq!(ir.block_count(), 4);
    }

    #[test]
    fn array_access_lowers_to_gep_load_store() {
        let mut f = FunctionBuilder::new("copy");
        let src = f.array_param("src", ArrayType::new(ScalarType::i16(), 8));
        let dst = f.array_param("dst", ArrayType::new(ScalarType::i16(), 8));
        let i = f.local("i", ScalarType::i32());
        f.push(Stmt::for_loop(
            i,
            0,
            8,
            1,
            vec![Stmt::store(dst, Expr::var(i), Expr::index(src, Expr::var(i)))],
        ));
        let ir = lower_function(&f.finish().unwrap()).unwrap();
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::GetElementPtr));
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::Load));
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::Store));
        // Memory ops are tagged with the array they touch.
        assert!(ir
            .iter_ops()
            .filter(|op| op.opcode == Opcode::Load || op.opcode == Opcode::Store)
            .all(|op| op.array.is_some()));
    }

    #[test]
    fn uninitialised_local_reads_become_zero_constants() {
        let mut f = FunctionBuilder::new("uninit");
        let x = f.local("x", ScalarType::i32());
        let y = f.local("y", ScalarType::i32());
        f.assign(y, Expr::binary(BinaryOp::Add, Expr::var(x), Expr::constant(1)));
        f.ret(y);
        let ir = lower_function(&f.finish().unwrap()).unwrap();
        assert!(ir.iter_ops().any(|op| op.opcode == Opcode::Const && op.const_value == Some(0)));
    }

    #[test]
    fn collect_assigned_sees_nested_targets() {
        let f = loopy();
        let vars = collect_assigned(&f.body);
        // `acc` and `i` are assigned; arrays are not.
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn lowering_is_deterministic() {
        let a = lower_function(&loopy()).unwrap();
        let b = lower_function(&loopy()).unwrap();
        assert_eq!(a, b);
    }
}
