//! Deterministic, thread-confined parallel execution for training and
//! evaluation.
//!
//! The autodiff tape ([`gnn_tensor::Var`]) is a thread-local arena with
//! `Rc`-held parameter leaves and is therefore `!Send`: a live model can
//! never cross a thread boundary. The
//! runtime sidesteps that by confining every model to the worker thread that
//! constructs it — a job receives only `Send` inputs (a job index, plain-data
//! snapshots, sample slices shared by reference) and returns only `Send`
//! outputs (metric arrays, rows, snapshots), so the coordinator never holds a
//! tape built on another thread.
//!
//! Determinism: [`run_jobs`] returns results in job order, regardless of
//! which worker executed which job or how the OS interleaved them. There is
//! no work stealing — workers claim the next job index from a shared atomic
//! cursor and each job's RNG state is derived purely from its seed, so every
//! metric is bit-identical to the serial path for any worker count.
//! `HLSGNN_WORKERS=1` is exactly the legacy serial code path (no threads are
//! spawned at all).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::approach::GnnPredictor;
use crate::dataset::GraphSample;
use crate::predictor::Predictor;
use crate::task::TargetMetric;
use crate::Result;

/// Worker-count configuration for the parallel runtime.
///
/// Constructed explicitly ([`ParallelConfig::with_workers`],
/// [`ParallelConfig::serial`]) or from the `HLSGNN_WORKERS` environment
/// variable ([`ParallelConfig::from_env`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    workers: NonZeroUsize,
}

impl ParallelConfig {
    /// The environment variable the bench binaries and default configs read
    /// the worker count from.
    pub const ENV_VAR: &'static str = "HLSGNN_WORKERS";

    /// One worker: the exact legacy serial behaviour (no threads spawned).
    pub fn serial() -> Self {
        ParallelConfig::with_workers(1)
    }

    /// A fixed worker count; `0` is clamped to `1`.
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig { workers: NonZeroUsize::new(workers.max(1)).expect("clamped to >= 1") }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        ParallelConfig {
            workers: std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is non-zero")),
        }
    }

    /// Reads the worker count from `HLSGNN_WORKERS`. Unset, empty or `0`
    /// means "all available hardware threads"; `1` selects the exact serial
    /// path; anything unparseable warns on stderr and falls back to the
    /// default (consistent with how `HLSGNN_SCALE` treats typos).
    ///
    /// The variable is read once per process: repeated calls return the
    /// cached result (and a typo warns once, not once per experiment
    /// config).
    pub fn from_env() -> Self {
        static CACHE: std::sync::OnceLock<ParallelConfig> = std::sync::OnceLock::new();
        CACHE
            .get_or_init(|| Self::from_env_value(&std::env::var(Self::ENV_VAR).unwrap_or_default()))
            .clone()
    }

    /// The parsing behind [`ParallelConfig::from_env`], separated from the
    /// process environment so it can be tested without races on env state.
    fn from_env_value(raw: &str) -> Self {
        let raw = raw.trim();
        if raw.is_empty() {
            return Self::available();
        }
        match raw.parse::<usize>() {
            Ok(0) => Self::available(),
            Ok(workers) => Self::with_workers(workers),
            Err(_) => {
                eprintln!(
                    "warning: unrecognised {} value `{raw}`; falling back to all available \
                     hardware threads (expected a worker count, 0 or unset = all, 1 = serial)",
                    Self::ENV_VAR
                );
                Self::available()
            }
        }
    }

    /// The configured worker count (always at least 1).
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// True when the configuration selects the exact legacy serial path.
    pub fn is_serial(&self) -> bool {
        self.workers() == 1
    }
}

impl Default for ParallelConfig {
    /// All available hardware threads ([`ParallelConfig::available`]) — pure,
    /// no environment read. Entry points that honour `HLSGNN_WORKERS` call
    /// [`ParallelConfig::from_env`] explicitly.
    fn default() -> Self {
        ParallelConfig::available()
    }
}

/// Fusion-width configuration for the fused graph mini-batching engine.
///
/// The *fusion width* is how many graphs share one autodiff tape:
/// [`gnn::GraphBatch`] disjoint-unions that many graphs into a block-diagonal
/// super-graph, so a mini-batch costs one forward/backward pass instead of
/// one per graph. The width never changes the SGD protocol — mini-batch
/// boundaries, shuffling and loss scaling follow `TrainConfig::batch_size`
/// exactly; it only controls how each mini-batch's tape is built.
///
/// * [`BatchConfig::default_fused`] (the `HLSGNN_BATCH`-unset default) fuses
///   each whole mini-batch (training) or inference chunk into one tape.
/// * [`BatchConfig::legacy`] (`HLSGNN_BATCH=1`) is the exact pre-fusion code
///   path: one tape per graph, gradients accumulated across the mini-batch.
///   Bit-identical to the historical behaviour.
/// * [`BatchConfig::with_width`] (`HLSGNN_BATCH=N`) caps the fusion width at
///   `N` graphs per tape regardless of the configured batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchConfig {
    /// `None` = fuse the configured batch size; `Some(n)` = force width `n`.
    width_override: Option<NonZeroUsize>,
    /// `None` = derive the per-tape node budget from the hidden dimension;
    /// `Some(n)` = cap every fused tape at `n` nodes.
    node_budget_override: Option<NonZeroUsize>,
}

impl BatchConfig {
    /// The environment variable the default entry points read the fusion
    /// width from.
    pub const ENV_VAR: &'static str = "HLSGNN_BATCH";

    /// The environment variable overriding the per-tape node budget.
    pub const NODE_BUDGET_ENV_VAR: &'static str = "HLSGNN_BATCH_NODES";

    /// The default working-set target of one fused tape, in `f32` elements of
    /// one `nodes × hidden` intermediate: 1 048 576 floats = 4 MiB. The old
    /// 24 576-float (96 KiB) budget dodged an allocator cliff — the previous
    /// engine allocated a fresh buffer per op, and past glibc's
    /// `MMAP_THRESHOLD` each allocation became an mmap/munmap round trip with
    /// page-fault zeroing. The arena tape records every op into one flat
    /// buffer that is recycled across steps, so that cliff no longer exists;
    /// the budget's remaining job is to bound the peak memory of a fused tape
    /// (a few × this many floats across the layer stack's intermediates).
    pub const DEFAULT_BUDGET_FLOATS: usize = 1_048_576;

    /// Default cap on the nodes of one fused tape regardless of hidden width.
    /// Re-measured on the arena-tape engine (standard-scale RGCN training
    /// sweeps on a single worker): wall-clock *improves* monotonically as the
    /// budget grows — 128-node tapes ≈ 75 s, 512 ≈ 70 s, 4096 ≈ 61 s —
    /// because bigger fused kernels amortise per-chunk encode/fuse overhead
    /// and there is no longer a per-op allocation penalty for large
    /// intermediates. The cap therefore sits high enough that the fusion
    /// width (the mini-batch size), not the node budget, is what normally
    /// closes a chunk; it survives only as a memory guard for degenerate
    /// corpora of huge graphs.
    pub const MAX_FUSED_NODES: usize = 4096;

    /// Fuse each mini-batch up to the derived node budget (the default).
    pub fn default_fused() -> Self {
        BatchConfig { width_override: None, node_budget_override: None }
    }

    /// One tape per graph: the exact legacy per-graph code path.
    pub fn legacy() -> Self {
        BatchConfig::with_width(1)
    }

    /// Forces a fixed fusion width; `0` is treated as "no override" (fuse the
    /// configured batch size).
    pub fn with_width(width: usize) -> Self {
        BatchConfig { width_override: NonZeroUsize::new(width), node_budget_override: None }
    }

    /// Caps every fused tape at `nodes` nodes instead of the derived budget;
    /// `0` restores the derived budget.
    pub fn with_node_budget(mut self, nodes: usize) -> Self {
        self.node_budget_override = NonZeroUsize::new(nodes);
        self
    }

    /// Reads the fusion configuration from `HLSGNN_BATCH` (width: unset,
    /// empty or `0` = the configured batch size; `1` = the exact legacy
    /// per-graph path) and `HLSGNN_BATCH_NODES` (per-tape node budget: unset
    /// or `0` = derived from the hidden dimension). Unparseable values warn
    /// on stderr and fall back to the default. Read once per process
    /// (consistent with [`ParallelConfig::from_env`]).
    pub fn from_env() -> Self {
        static CACHE: std::sync::OnceLock<BatchConfig> = std::sync::OnceLock::new();
        *CACHE.get_or_init(|| {
            Self::from_env_values(
                &std::env::var(Self::ENV_VAR).unwrap_or_default(),
                &std::env::var(Self::NODE_BUDGET_ENV_VAR).unwrap_or_default(),
            )
        })
    }

    /// The parsing behind [`BatchConfig::from_env`], separated from the
    /// process environment so it can be tested without races on env state.
    fn from_env_values(raw_width: &str, raw_budget: &str) -> Self {
        let parse = |raw: &str, what: &str, meaning: &str| -> Option<NonZeroUsize> {
            let raw = raw.trim();
            if raw.is_empty() {
                return None;
            }
            match raw.parse::<usize>() {
                Ok(value) => NonZeroUsize::new(value),
                Err(_) => {
                    eprintln!(
                        "warning: unrecognised {what} value `{raw}`; falling back to the \
                         default ({meaning})"
                    );
                    None
                }
            }
        };
        BatchConfig {
            width_override: parse(
                raw_width,
                Self::ENV_VAR,
                "expected a fusion width, 0 or unset = batch size, 1 = legacy per-graph tapes",
            ),
            node_budget_override: parse(
                raw_budget,
                Self::NODE_BUDGET_ENV_VAR,
                "expected a per-tape node budget, 0 or unset = derived from the hidden dimension",
            ),
        }
    }

    /// The fusion width to use for a configured mini-batch size (always at
    /// least 1).
    pub fn effective_width(&self, configured_batch_size: usize) -> usize {
        match self.width_override {
            Some(width) => width.get(),
            None => configured_batch_size.max(1),
        }
    }

    /// True when the configuration selects the exact legacy per-graph path
    /// for the given configured batch size.
    pub fn is_legacy(&self, configured_batch_size: usize) -> bool {
        self.effective_width(configured_batch_size) == 1
    }

    /// Maximum node count of one fused tape for a model of the given hidden
    /// dimension: [`BatchConfig::MAX_FUSED_NODES`], shrunk further for very
    /// wide models so a `nodes × hidden` intermediate stays under
    /// [`BatchConfig::DEFAULT_BUDGET_FLOATS`]. Overridable via
    /// [`BatchConfig::with_node_budget`] / `HLSGNN_BATCH_NODES`. Always at
    /// least 1.
    pub fn node_budget(&self, hidden_dim: usize) -> usize {
        match self.node_budget_override {
            Some(nodes) => nodes.get(),
            None => {
                Self::MAX_FUSED_NODES.min(Self::DEFAULT_BUDGET_FLOATS / hidden_dim.max(1)).max(1)
            }
        }
    }

    /// Deterministically packs a run of samples (given their node counts, in
    /// order) into fused chunks: a chunk closes once it holds
    /// [`BatchConfig::effective_width`] graphs or fusing the next graph would
    /// exceed the node budget. Every chunk holds at least one graph (a graph
    /// larger than the whole budget still forms its own chunk). Returns the
    /// chunk lengths; they sum to `sizes.len()`.
    pub fn plan_chunks(
        &self,
        sizes: &[usize],
        configured_batch_size: usize,
        hidden_dim: usize,
    ) -> Vec<usize> {
        let width = self.effective_width(configured_batch_size);
        let budget = self.node_budget(hidden_dim);
        let mut lengths = Vec::new();
        let mut count = 0usize;
        let mut nodes = 0usize;
        for &size in sizes {
            if count > 0 && (count >= width || nodes + size > budget) {
                lengths.push(count);
                count = 0;
                nodes = 0;
            }
            count += 1;
            nodes += size;
        }
        if count > 0 {
            lengths.push(count);
        }
        lengths
    }
}

/// Runs `jobs` independent jobs and returns their results in job order.
///
/// With one worker (or at most one job) this is a plain serial loop — the
/// exact legacy behaviour. Otherwise `min(workers, jobs)` scoped threads each
/// claim the next unclaimed job index from an atomic cursor, run the job
/// thread-confined, and ship the `Send` result back to the coordinator,
/// which reorders by index. Job closures typically construct, train and
/// evaluate a model entirely on the worker thread; the `!Send` tape never
/// crosses threads.
///
/// # Panics
/// Propagates a panic from any job.
pub fn run_jobs<R, F>(config: &ParallelConfig, jobs: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if config.is_serial() || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let abort = AtomicBool::new(false);
    run_jobs_cancellable(config, jobs, &abort, job)
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed"))
        .collect()
}

/// The shared worker pool behind [`run_jobs`] and [`try_run_jobs`]: workers
/// claim monotonically increasing job indices from an atomic cursor and stop
/// claiming once `abort` is raised, so cancelled (never-claimed) slots form a
/// suffix of the returned vector.
fn run_jobs_cancellable<R, F>(
    config: &ParallelConfig,
    jobs: usize,
    abort: &AtomicBool,
    job: F,
) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // Raises `abort` if dropped by a panic unwinding through a job, so the
    // other workers stop claiming instead of finishing the whole job list
    // before the panic propagates out of the scope.
    struct AbortOnPanic<'a>(&'a AtomicBool);
    impl Drop for AbortOnPanic<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Relaxed);
        }
    }

    let workers = config.workers().min(jobs);
    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    let (job, cursor) = (&job, &cursor);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut completed = Vec::new();
                    while !abort.load(Ordering::Relaxed) {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs {
                            break;
                        }
                        let guard = AbortOnPanic(abort);
                        let result = job(index);
                        std::mem::forget(guard);
                        completed.push((index, result));
                    }
                    completed
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("runtime worker panicked") {
                results[index] = Some(result);
            }
        }
    });
    results
}

/// [`run_jobs`] for fallible jobs. A failure cancels the jobs not yet
/// claimed (no point training five more models once one combo has already
/// failed), and the returned error is the *lowest-indexed* one — jobs are
/// claimed in index order, so that is exactly the error the legacy serial
/// loop surfaced first, independent of scheduling. With one worker this *is*
/// the legacy loop: it short-circuits at the first error.
///
/// # Errors
/// The first (by job index) error any job produced.
pub fn try_run_jobs<T, F>(config: &ParallelConfig, jobs: usize, job: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if config.is_serial() || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let abort = AtomicBool::new(false);
    let slots = run_jobs_cancellable(config, jobs, &abort, |index| {
        let result = job(index);
        if result.is_err() {
            abort.store(true, Ordering::Relaxed);
        }
        result
    });
    let mut out = Vec::with_capacity(jobs);
    for slot in slots {
        match slot {
            Some(Ok(value)) => out.push(value),
            Some(Err(error)) => return Err(error),
            // Cancelled slots form a suffix behind a failed (lower-indexed)
            // job, so the `Err` arm above always returns before reaching one.
            None => unreachable!("job cancelled without a preceding failure"),
        }
    }
    Ok(out)
}

/// Shards a batched prediction across workers for large inference sets.
///
/// The trained state is exported once as a plain-`Matrix`, `Send + Sync`
/// snapshot ([`Predictor::snapshot`]); each worker rehydrates its own
/// thread-confined [`GnnPredictor`] from the shared snapshot and predicts a
/// contiguous shard. Inference is deterministic per sample, so the
/// concatenated result is bit-identical to `predictor.predict_batch(samples)`
/// at any worker count.
///
/// Falls back to the serial path when the configuration is serial, the batch
/// is trivial, or the predictor cannot be snapshotted (an untrained model
/// reports its per-sample errors exactly as before).
pub fn predict_batch_sharded<P>(
    predictor: &P,
    samples: &[GraphSample],
    config: &ParallelConfig,
) -> Vec<Result<[f64; TargetMetric::COUNT]>>
where
    P: Predictor + ?Sized,
{
    if config.is_serial() || samples.len() < 2 {
        return predictor.predict_batch(samples);
    }
    let Ok(snapshot) = predictor.snapshot() else {
        return predictor.predict_batch(samples);
    };
    let shard_size = samples.len().div_ceil(config.workers().min(samples.len()));
    let shards: Vec<&[GraphSample]> = samples.chunks(shard_size).collect();
    let snapshot = &snapshot;
    run_jobs(config, shards.len(), move |index| {
        let shard = shards[index];
        match GnnPredictor::from_saved(snapshot) {
            Ok(rehydrated) => rehydrated.predict_batch(shard),
            Err(error) => shard.iter().map(|_| Err(error.clone())).collect(),
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_value_parsing_covers_the_grammar() {
        assert_eq!(ParallelConfig::from_env_value(""), ParallelConfig::available());
        assert_eq!(ParallelConfig::from_env_value("  "), ParallelConfig::available());
        assert_eq!(ParallelConfig::from_env_value("0"), ParallelConfig::available());
        assert_eq!(ParallelConfig::from_env_value("1"), ParallelConfig::serial());
        assert_eq!(ParallelConfig::from_env_value(" 4 "), ParallelConfig::with_workers(4));
        // Garbage warns and falls back instead of panicking or masking.
        assert_eq!(ParallelConfig::from_env_value("many"), ParallelConfig::available());
        assert!(ParallelConfig::serial().is_serial());
        assert!(!ParallelConfig::with_workers(3).is_serial());
        assert_eq!(ParallelConfig::with_workers(0).workers(), 1);
        assert!(ParallelConfig::available().workers() >= 1);
    }

    #[test]
    fn batch_env_parsing_covers_the_grammar() {
        assert_eq!(BatchConfig::from_env_values("", ""), BatchConfig::default_fused());
        assert_eq!(BatchConfig::from_env_values("0", " "), BatchConfig::default_fused());
        assert_eq!(BatchConfig::from_env_values("1", ""), BatchConfig::legacy());
        assert_eq!(BatchConfig::from_env_values(" 8 ", ""), BatchConfig::with_width(8));
        assert_eq!(
            BatchConfig::from_env_values("8", "512"),
            BatchConfig::with_width(8).with_node_budget(512)
        );
        // Garbage warns and falls back instead of panicking or masking.
        assert_eq!(BatchConfig::from_env_values("many", "wide"), BatchConfig::default_fused());
        assert!(BatchConfig::legacy().is_legacy(16));
        assert!(!BatchConfig::default_fused().is_legacy(16));
        assert!(BatchConfig::default_fused().is_legacy(1));
        assert_eq!(BatchConfig::with_width(0), BatchConfig::default_fused());
        assert_eq!(BatchConfig::default_fused().effective_width(16), 16);
        assert_eq!(BatchConfig::with_width(4).effective_width(16), 4);
    }

    #[test]
    fn node_budget_derivation_and_overrides() {
        let config = BatchConfig::default_fused();
        // Narrow models cap at MAX_FUSED_NODES, very wide models shrink so
        // one nodes × hidden intermediate stays within the float budget.
        assert_eq!(config.node_budget(16), BatchConfig::MAX_FUSED_NODES);
        assert_eq!(config.node_budget(32), BatchConfig::MAX_FUSED_NODES);
        assert_eq!(config.node_budget(300), BatchConfig::DEFAULT_BUDGET_FLOATS / 300);
        assert_eq!(config.node_budget(usize::MAX), 1);
        assert_eq!(config.with_node_budget(64).node_budget(300), 64);
        assert_eq!(config.with_node_budget(64).with_node_budget(0).node_budget(300), 3495);
    }

    #[test]
    fn chunk_planning_respects_width_and_budget_and_covers_all_samples() {
        let config = BatchConfig::default_fused().with_node_budget(100);
        // Width cap.
        assert_eq!(config.plan_chunks(&[10; 7], 3, 16), vec![3, 3, 1]);
        // Budget cap (40+40 fits, a third 40 would overflow).
        assert_eq!(config.plan_chunks(&[40; 5], 16, 16), vec![2, 2, 1]);
        // An over-budget graph still forms its own chunk.
        assert_eq!(config.plan_chunks(&[250, 10, 10], 16, 16), vec![1, 2]);
        // Legacy width packs one graph per chunk.
        assert_eq!(BatchConfig::legacy().plan_chunks(&[10; 3], 16, 16), vec![1, 1, 1]);
        // Empty input plans nothing.
        assert!(config.plan_chunks(&[], 16, 16).is_empty());
    }

    #[test]
    fn jobs_return_in_index_order_for_any_worker_count() {
        let square = |index: usize| index * index;
        let expected: Vec<usize> = (0..23).map(square).collect();
        for workers in [1, 2, 4, 7, 32] {
            let config = ParallelConfig::with_workers(workers);
            assert_eq!(run_jobs(&config, 23, square), expected, "workers = {workers}");
        }
        assert!(run_jobs::<usize, _>(&ParallelConfig::with_workers(4), 0, square).is_empty());
    }

    #[test]
    fn fallible_jobs_surface_the_lowest_indexed_error() {
        let job = |index: usize| -> Result<usize> {
            if index % 3 == 2 {
                Err(crate::Error::Config(format!("job {index} failed")))
            } else {
                Ok(index)
            }
        };
        for workers in [1, 4] {
            let config = ParallelConfig::with_workers(workers);
            let error = try_run_jobs(&config, 9, job).unwrap_err();
            assert_eq!(error, crate::Error::Config("job 2 failed".to_owned()));
            let ok = try_run_jobs(&config, 2, job).unwrap();
            assert_eq!(ok, vec![0, 1]);
        }
    }

    #[test]
    fn a_failed_job_cancels_the_rest() {
        // Serial: the exact legacy short-circuit — nothing past the failure
        // runs.
        let executed = AtomicUsize::new(0);
        let error = try_run_jobs(&ParallelConfig::serial(), 64, |index| {
            executed.fetch_add(1, Ordering::Relaxed);
            if index == 3 {
                Err(crate::Error::Config("boom".to_owned()))
            } else {
                Ok(index)
            }
        })
        .unwrap_err();
        assert_eq!(error, crate::Error::Config("boom".to_owned()));
        assert_eq!(executed.load(Ordering::Relaxed), 4, "serial stops at the failing job");

        // Parallel: workers stop claiming once the failure is recorded; only
        // already-claimed jobs finish. Job 0 fails instantly while the others
        // take ~2 ms, so the abort flag is up long before the workers come
        // back for more work.
        let executed = AtomicUsize::new(0);
        let error = try_run_jobs(&ParallelConfig::with_workers(4), 64, |index| {
            executed.fetch_add(1, Ordering::Relaxed);
            if index == 0 {
                Err(crate::Error::Config("boom".to_owned()))
            } else {
                std::thread::sleep(std::time::Duration::from_millis(2));
                Ok(index)
            }
        })
        .unwrap_err();
        assert_eq!(error, crate::Error::Config("boom".to_owned()));
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < 64, "parallel must not run the full job list, ran {ran}");
    }
}
