//! Shared training loops for the graph-level regressor and the node-level
//! classifier, plus the hyper-parameter configuration.

use std::borrow::Cow;

use gnn::Pooling;
use gnn_tensor::{clip_grad_norm, Adam, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::{Dataset, GraphSample, SampleSource};
use crate::metrics::{accuracy, mape_with_floor, TargetNormalizer};
use crate::model::{GraphRegressor, NodeClassifierModel};
use crate::runtime::BatchConfig;
use crate::task::{ResourceClass, TargetMetric};

/// Hyper-parameters shared by all models.
///
/// The paper's setting is `paper()` (five layers, hidden 300, 100 epochs);
/// `default()` and `fast()` scale the same architecture down so the full
/// table-generation harness and the test suite run on a CPU in reasonable
/// time. The scale actually used is recorded in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Graphs per gradient step (gradient accumulation).
    pub batch_size: usize,
    /// Hidden dimension of every GNN layer.
    pub hidden_dim: usize,
    /// Number of stacked GNN layers.
    pub num_layers: usize,
    /// Width of each categorical feature embedding.
    pub embed_dim: usize,
    /// Dropout between GNN layers during training.
    pub dropout: f32,
    /// Graph readout.
    pub pooling: Pooling,
    /// Seed for parameter initialisation and batching.
    pub seed: u64,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl TrainConfig {
    /// Tiny models and few epochs: used by unit tests and doc examples.
    pub fn fast() -> Self {
        TrainConfig {
            epochs: 4,
            learning_rate: 5e-3,
            batch_size: 8,
            hidden_dim: 16,
            num_layers: 2,
            embed_dim: 4,
            dropout: 0.0,
            pooling: Pooling::Mean,
            seed: 0,
            grad_clip: 5.0,
        }
    }

    /// The CPU-friendly configuration used by the bench binaries.
    pub fn standard() -> Self {
        TrainConfig {
            epochs: 25,
            learning_rate: 3e-3,
            batch_size: 16,
            hidden_dim: 32,
            num_layers: 3,
            embed_dim: 8,
            dropout: 0.1,
            pooling: Pooling::Mean,
            seed: 0,
            grad_clip: 5.0,
        }
    }

    /// The paper-scale configuration (§5.1): five layers, hidden dimension
    /// 300, 100 epochs. Only practical with long runtimes.
    pub fn paper() -> Self {
        TrainConfig {
            epochs: 100,
            learning_rate: 1e-3,
            batch_size: 32,
            hidden_dim: 300,
            num_layers: 5,
            embed_dim: 16,
            dropout: 0.1,
            pooling: Pooling::Mean,
            seed: 0,
            grad_clip: 5.0,
        }
    }

    /// Returns a copy with a different seed (the paper averages over several
    /// seeds per model).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the hyper-parameters. A `batch_size` of zero is a
    /// configuration error — it used to be silently rewritten to 1, which
    /// masked typos and made the effective SGD protocol differ from the
    /// configured one.
    ///
    /// # Errors
    /// Returns [`crate::Error::Config`] describing the invalid field.
    pub fn validate(&self) -> crate::Result<()> {
        if self.batch_size == 0 {
            return Err(crate::Error::Config(
                "TrainConfig::batch_size must be at least 1 (0 would make every \
                 gradient step empty); configure the number of graphs per step explicitly"
                    .to_owned(),
            ));
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig::standard()
    }
}

/// Per-epoch mean training loss, returned by the training loops.
pub type LossHistory = Vec<f64>;

/// Trains a graph-level regressor in place, on the fusion width configured by
/// `HLSGNN_BATCH` ([`BatchConfig::from_env`]). Returns the per-epoch mean
/// loss. Use [`train_regressor_with`] to pass an explicit fusion width.
///
/// # Panics
/// Panics if `config.batch_size` is zero — reject such configs up front with
/// [`TrainConfig::validate`].
pub fn train_regressor(
    model: &GraphRegressor,
    normalizer: &TargetNormalizer,
    train: &Dataset,
    config: &TrainConfig,
) -> LossHistory {
    train_regressor_with(&BatchConfig::from_env(), model, normalizer, train, config)
}

/// [`train_regressor`] over any [`SampleSource`]: the loop only ever holds
/// one mini-batch of samples in memory, so a sharded on-disk corpus trains
/// with peak RSS bounded by `batch_size` samples plus the source's own cache.
/// For the same samples in the same order the result is bit-identical to
/// [`train_regressor`] on a materialised [`Dataset`] — both run this code.
///
/// # Errors
/// Propagates the source's fetch failures (an in-memory dataset never fails).
///
/// # Panics
/// Panics if `config.batch_size` is zero — reject such configs up front with
/// [`TrainConfig::validate`].
pub fn train_regressor_source(
    model: &GraphRegressor,
    normalizer: &TargetNormalizer,
    train: &(impl SampleSource + ?Sized),
    config: &TrainConfig,
) -> crate::Result<LossHistory> {
    train_regressor_source_with(&BatchConfig::from_env(), model, normalizer, train, config)
}

/// [`train_regressor`] with an explicit fusion width.
///
/// The SGD protocol — shuffling, mini-batch boundaries, loss scaling — is
/// identical for every fusion width; the width only controls how many graphs
/// share one autodiff tape per gradient step:
///
/// * width 1 ([`BatchConfig::legacy`]): one tape per graph, gradients
///   accumulated across the mini-batch — the exact historical code path,
///   bit-identical to pre-fusion releases.
/// * width ≥ mini-batch size (the default): the whole mini-batch fuses into
///   one [`gnn::GraphBatch`] super-graph; one `B × 4` forward and one batched
///   MSE replace `B` per-graph tapes. The fused loss `mean((P − T)²)` over
///   the `B × 4` prediction matrix equals the mean of the per-graph MSEs, so
///   gradient *semantics* match the legacy path exactly (floating-point
///   association and, with nonzero dropout, mask streams differ).
/// * intermediate widths fuse sub-chunks of the mini-batch and accumulate,
///   trading tape size against peak memory.
///
/// With `config.batch_size == 1` every path collapses to the same single
/// graph per step and the results are bit-identical regardless of width.
///
/// # Panics
/// Panics if `config.batch_size` is zero — reject such configs up front with
/// [`TrainConfig::validate`].
pub fn train_regressor_with(
    batch_config: &BatchConfig,
    model: &GraphRegressor,
    normalizer: &TargetNormalizer,
    train: &Dataset,
    config: &TrainConfig,
) -> LossHistory {
    train_regressor_source_with(batch_config, model, normalizer, train, config)
        .expect("fetching from an in-memory dataset cannot fail")
}

/// [`train_regressor_source`] with an explicit fusion width. This is *the*
/// regressor training loop — the `Dataset` entry points call it through the
/// borrowing [`SampleSource`] impl, so the streamed and in-RAM paths cannot
/// drift apart. Each shuffled mini-batch is fetched up front (borrowed
/// zero-copy from a `Dataset`, decoded on demand from an on-disk store) and
/// then runs the exact historical per-graph / fused tape logic.
///
/// # Errors
/// Propagates the source's fetch failures.
///
/// # Panics
/// Panics if `config.batch_size` is zero — reject such configs up front with
/// [`TrainConfig::validate`].
pub fn train_regressor_source_with(
    batch_config: &BatchConfig,
    model: &GraphRegressor,
    normalizer: &TargetNormalizer,
    train: &(impl SampleSource + ?Sized),
    config: &TrainConfig,
) -> crate::Result<LossHistory> {
    assert!(config.batch_size > 0, "TrainConfig::batch_size must be at least 1 (see validate())");
    let width = batch_config.effective_width(config.batch_size);
    let params = model.parameters();
    let mut adam = Adam::new(params.clone(), config.learning_rate);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(17));
    let mut history = Vec::with_capacity(config.epochs);
    let epochs_total = hls_gnn_obs::global().counter("hlsgnn_train_epochs_total", &[]);
    let steps_total = hls_gnn_obs::global().counter("hlsgnn_train_steps_total", &[]);

    for _ in 0..config.epochs {
        let _epoch_span = hls_gnn_obs::span!("train_epoch");
        epochs_total.inc();
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            let _step_span = hls_gnn_obs::span!("train_step");
            steps_total.inc();
            // The only window of samples alive at once: one mini-batch.
            let fetch_timer = gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Fetch);
            let fetched: Vec<Cow<'_, GraphSample>> =
                batch.iter().map(|&index| train.fetch(index)).collect::<crate::Result<_>>()?;
            drop(fetch_timer);
            {
                let _zero_timer =
                    gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Optimizer);
                adam.zero_grad();
            }
            if width == 1 {
                // Legacy per-graph tapes (exact historical behaviour).
                for sample in &fetched {
                    let sample: &GraphSample = sample;
                    let target = Matrix::row_vector(&normalizer.normalize(&sample.targets));
                    let prediction = model.forward(sample, None, true, &mut rng);
                    let loss = prediction.mse(&target).scale(1.0 / batch.len() as f32);
                    epoch_loss += f64::from(loss.scalar_value()) * batch.len() as f64;
                    loss.backward();
                }
            } else {
                let sizes: Vec<usize> = fetched.iter().map(|s| s.num_nodes()).collect();
                let mut start = 0;
                for length in batch_config.plan_chunks(&sizes, config.batch_size, config.hidden_dim)
                {
                    let chunk = &fetched[start..start + length];
                    start += length;
                    if length == 1 {
                        // A graph that fills (or overflows) the node budget on
                        // its own: run it on the plain per-graph path, which
                        // skips the fuse/encode-batch copies entirely.
                        let sample: &GraphSample = &chunk[0];
                        let target = Matrix::row_vector(&normalizer.normalize(&sample.targets));
                        let prediction = model.forward(sample, None, true, &mut rng);
                        let loss = prediction.mse(&target).scale(1.0 / batch.len() as f32);
                        epoch_loss += f64::from(loss.scalar_value()) * batch.len() as f64;
                        loss.backward();
                        continue;
                    }
                    let assemble_timer =
                        gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Assemble);
                    let samples: Vec<&GraphSample> = chunk.iter().map(Cow::as_ref).collect();
                    let normalized: Vec<[f32; TargetMetric::COUNT]> =
                        samples.iter().map(|s| normalizer.normalize(&s.targets)).collect();
                    let targets =
                        Matrix::from_fn(samples.len(), TargetMetric::COUNT, |row, col| {
                            normalized[row][col]
                        });
                    drop(assemble_timer);
                    let prediction = model.forward_batch(&samples, None, true, &mut rng);
                    // Batched MSE over the chunk × targets matrix: its mean
                    // equals the mean of the per-graph MSEs, so scaling by
                    // |chunk| / |batch| accumulates the same gradient the
                    // legacy loop sums one graph at a time.
                    let chunk_loss = prediction.mse(&targets);
                    epoch_loss += f64::from(chunk_loss.scalar_value()) * chunk.len() as f64;
                    chunk_loss.scale(chunk.len() as f32 / batch.len() as f32).backward();
                }
            }
            let optim_timer =
                gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Optimizer);
            clip_grad_norm(&params, config.grad_clip);
            adam.step();
            // The mini-batch's tapes are dead: recycle their buffers so the
            // next batch records into already-allocated arenas.
            gnn_tensor::tape::reset();
            drop(optim_timer);
        }
        history.push(epoch_loss / train.len().max(1) as f64);
    }
    Ok(history)
}

/// Predicts the raw `[DSP, LUT, FF, CP]` values for one sample.
pub fn predict_regressor(
    model: &GraphRegressor,
    normalizer: &TargetNormalizer,
    sample: &GraphSample,
    type_override: Option<&[[f32; 3]]>,
) -> [f64; TargetMetric::COUNT] {
    let mut rng = StdRng::seed_from_u64(0);
    let output = model.forward(sample, type_override, false, &mut rng).value();
    // Inference tapes are single-use; recycle immediately so long-running
    // callers (the serve workers) stay at steady-state memory.
    gnn_tensor::tape::reset();
    let mut normalized = [0.0f32; TargetMetric::COUNT];
    for (index, value) in normalized.iter_mut().enumerate() {
        *value = output.get(0, index);
    }
    normalizer.denormalize(&normalized)
}

/// Per-target MAPE of a regressor over a dataset. An empty dataset evaluates
/// to `NaN` per target — an all-zero result would read as a perfect score.
pub fn evaluate_regressor(
    model: &GraphRegressor,
    normalizer: &TargetNormalizer,
    dataset: &Dataset,
) -> [f64; TargetMetric::COUNT] {
    let mut result = [0.0f64; TargetMetric::COUNT];
    if dataset.is_empty() {
        return [f64::NAN; TargetMetric::COUNT];
    }
    let mut predictions: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
    let mut actuals: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
    for sample in &dataset.samples {
        let predicted = predict_regressor(model, normalizer, sample, None);
        for target in 0..TargetMetric::COUNT {
            predictions[target].push(predicted[target]);
            actuals[target].push(sample.targets[target]);
        }
    }
    for target in 0..TargetMetric::COUNT {
        result[target] = mape_with_floor(&predictions[target], &actuals[target], 1.0);
    }
    result
}

/// Trains a node-level resource-type classifier in place. Returns the
/// per-epoch mean loss.
///
/// # Panics
/// Panics if `config.batch_size` is zero — reject such configs up front with
/// [`TrainConfig::validate`].
pub fn train_node_classifier(
    model: &NodeClassifierModel,
    train: &Dataset,
    config: &TrainConfig,
) -> LossHistory {
    train_node_classifier_source(model, train, config)
        .expect("fetching from an in-memory dataset cannot fail")
}

/// [`train_node_classifier`] over any [`SampleSource`] — one mini-batch of
/// samples in memory at a time, bit-identical to the in-RAM loop for the
/// same samples in the same order (they are the same code).
///
/// # Errors
/// Propagates the source's fetch failures.
///
/// # Panics
/// Panics if `config.batch_size` is zero — reject such configs up front with
/// [`TrainConfig::validate`].
pub fn train_node_classifier_source(
    model: &NodeClassifierModel,
    train: &(impl SampleSource + ?Sized),
    config: &TrainConfig,
) -> crate::Result<LossHistory> {
    assert!(config.batch_size > 0, "TrainConfig::batch_size must be at least 1 (see validate())");
    let params = model.parameters();
    let mut adam = Adam::new(params.clone(), config.learning_rate);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0x517c_c1b7).wrapping_add(3));
    let mut history = Vec::with_capacity(config.epochs);
    let epochs_total = hls_gnn_obs::global().counter("hlsgnn_train_epochs_total", &[]);
    let steps_total = hls_gnn_obs::global().counter("hlsgnn_train_steps_total", &[]);

    for _ in 0..config.epochs {
        let _epoch_span = hls_gnn_obs::span!("train_epoch");
        epochs_total.inc();
        let mut order: Vec<usize> = (0..train.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            let _step_span = hls_gnn_obs::span!("train_step");
            steps_total.inc();
            let fetch_timer = gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Fetch);
            let fetched: Vec<Cow<'_, GraphSample>> =
                batch.iter().map(|&index| train.fetch(index)).collect::<crate::Result<_>>()?;
            drop(fetch_timer);
            {
                let _zero_timer =
                    gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Optimizer);
                adam.zero_grad();
            }
            for sample in &fetched {
                let sample: &GraphSample = sample;
                let labels =
                    Matrix::from_fn(sample.num_nodes(), ResourceClass::COUNT, |node, class| {
                        sample.node_resource_types[node][class]
                    });
                let logits = model.forward(sample, true, &mut rng);
                let loss = logits.bce_with_logits(&labels).scale(1.0 / batch.len() as f32);
                epoch_loss += f64::from(loss.scalar_value()) * batch.len() as f64;
                loss.backward();
            }
            let optim_timer =
                gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Optimizer);
            clip_grad_norm(&params, config.grad_clip);
            adam.step();
            gnn_tensor::tape::reset();
            drop(optim_timer);
        }
        history.push(epoch_loss / train.len().max(1) as f64);
    }
    Ok(history)
}

/// Per-class accuracy of a node classifier over a dataset (micro-averaged over
/// all nodes of all graphs, matching Table 3).
pub fn evaluate_node_classifier(
    model: &NodeClassifierModel,
    dataset: &Dataset,
) -> [f64; ResourceClass::COUNT] {
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); ResourceClass::COUNT];
    let mut labels: Vec<Vec<f64>> = vec![Vec::new(); ResourceClass::COUNT];
    let mut rng = StdRng::seed_from_u64(0);
    for sample in &dataset.samples {
        let logits = model.forward(sample, false, &mut rng).value();
        for node in 0..sample.num_nodes() {
            for class in 0..ResourceClass::COUNT {
                let probability = 1.0 / (1.0 + (-f64::from(logits.get(node, class))).exp());
                scores[class].push(probability);
                labels[class].push(f64::from(sample.node_resource_types[node][class]));
            }
        }
    }
    let mut result = [0.0f64; ResourceClass::COUNT];
    for class in 0..ResourceClass::COUNT {
        result[class] = accuracy(&scores[class], &labels[class]);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use crate::encode::FeatureMode;
    use gnn::GnnKind;
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

    fn tiny_dataset(count: usize) -> Dataset {
        DatasetBuilder::new(ProgramFamily::StraightLine)
            .count(count)
            .seed(21)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
            .build()
            .unwrap()
    }

    #[test]
    fn config_presets_scale_up() {
        let fast = TrainConfig::fast();
        let standard = TrainConfig::standard();
        let paper = TrainConfig::paper();
        assert!(fast.hidden_dim < standard.hidden_dim);
        assert!(standard.hidden_dim < paper.hidden_dim);
        assert_eq!(paper.num_layers, 5, "the paper uses five GNN layers");
        assert_eq!(paper.hidden_dim, 300, "the paper uses hidden dimension 300");
        assert_eq!(paper.epochs, 100);
        assert_eq!(TrainConfig::default(), standard);
        assert_eq!(fast.with_seed(9).seed, 9);
    }

    #[test]
    fn zero_batch_sizes_are_rejected_not_clamped() {
        let mut config = TrainConfig::fast();
        assert!(config.validate().is_ok());
        config.batch_size = 0;
        let error = config.validate().unwrap_err();
        assert!(matches!(&error, crate::Error::Config(message) if message.contains("batch_size")));
    }

    #[test]
    #[should_panic(expected = "batch_size must be at least 1")]
    fn regressor_training_panics_on_zero_batch_size() {
        let dataset = tiny_dataset(4);
        let mut config = TrainConfig::fast();
        config.batch_size = 0;
        let normalizer = TargetNormalizer::fit(&dataset).unwrap();
        let model = GraphRegressor::new(GnnKind::Gcn, FeatureMode::Base, &config);
        let _ = train_regressor(&model, &normalizer, &dataset, &config);
    }

    #[test]
    #[should_panic(expected = "batch_size must be at least 1")]
    fn classifier_training_panics_on_zero_batch_size() {
        let dataset = tiny_dataset(4);
        let mut config = TrainConfig::fast();
        config.batch_size = 0;
        let model = NodeClassifierModel::new(GnnKind::Gcn, &config);
        let _ = train_node_classifier(&model, &dataset, &config);
    }

    #[test]
    fn fused_training_reduces_loss_like_the_legacy_path() {
        let dataset = tiny_dataset(12);
        let mut config = TrainConfig::fast();
        config.epochs = 6;
        let normalizer = TargetNormalizer::fit(&dataset).unwrap();
        let model = GraphRegressor::new(GnnKind::GraphSage, FeatureMode::Base, &config);
        let batch = crate::runtime::BatchConfig::default_fused().with_node_budget(1_000_000);
        let history = train_regressor_with(&batch, &model, &normalizer, &dataset, &config);
        assert_eq!(history.len(), config.epochs);
        assert!(
            history.last().unwrap() < history.first().unwrap(),
            "fused training must reduce the loss: {history:?}"
        );
        let mape = evaluate_regressor(&model, &normalizer, &dataset);
        assert!(mape.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn regressor_training_reduces_loss() {
        let dataset = tiny_dataset(12);
        let mut config = TrainConfig::fast();
        config.epochs = 8;
        let normalizer = TargetNormalizer::fit(&dataset).unwrap();
        let model = GraphRegressor::new(GnnKind::GraphSage, FeatureMode::Base, &config);
        let history = train_regressor(&model, &normalizer, &dataset, &config);
        assert_eq!(history.len(), config.epochs);
        let first = history.first().copied().unwrap();
        let last = history.last().copied().unwrap();
        assert!(last < first, "loss should decrease: first {first}, last {last}");
        let mape = evaluate_regressor(&model, &normalizer, &dataset);
        assert!(mape.iter().all(|m| m.is_finite()));
    }

    #[test]
    fn classifier_training_reaches_reasonable_accuracy() {
        let dataset = tiny_dataset(10);
        let mut config = TrainConfig::fast();
        config.epochs = 8;
        let model = NodeClassifierModel::new(GnnKind::GraphSage, &config);
        let history = train_node_classifier(&model, &dataset, &config);
        assert!(history.last().unwrap() < history.first().unwrap());
        let accuracies = evaluate_node_classifier(&model, &dataset);
        // Most nodes use LUTs, so even a small model should beat coin flips on
        // the training set.
        assert!(accuracies.iter().all(|&a| (0.0..=1.0).contains(&a)));
        assert!(accuracies[ResourceClass::Lut.index()] > 0.5);
    }

    #[test]
    fn prediction_outputs_raw_scale_values() {
        let dataset = tiny_dataset(6);
        let config = TrainConfig::fast();
        let normalizer = TargetNormalizer::fit(&dataset).unwrap();
        let model = GraphRegressor::new(GnnKind::Gcn, FeatureMode::Base, &config);
        let prediction = predict_regressor(&model, &normalizer, &dataset.samples[0], None);
        assert!(prediction.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
