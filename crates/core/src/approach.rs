//! The three prediction strategies of §2 of the paper.
//!
//! * [`OffTheShelfPredictor`] — earliest prediction, Table-1 features only.
//! * [`KnowledgeRichPredictor`] — late prediction, per-node resource values
//!   from the HLS intermediate results as auxiliary inputs.
//! * [`HierarchicalPredictor`] — the knowledge-infused approach: a node-level
//!   resource-type classifier feeds a graph-level regressor; ground-truth
//!   types are used during training and self-inferred types at inference, so
//!   prediction still happens at the earliest stage with (almost) zero extra
//!   inference cost.

use gnn::GnnKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::{Dataset, GraphSample};
use crate::encode::FeatureMode;
use crate::metrics::{mape_with_floor, TargetNormalizer};
use crate::model::{GraphRegressor, NodeClassifierModel};
use crate::task::{ResourceClass, TargetMetric};
use crate::train::{
    evaluate_node_classifier, predict_regressor, train_node_classifier, train_regressor, TrainConfig,
};
use crate::{Error, Result};

/// A trained (or trainable) HLS performance predictor.
pub trait Approach {
    /// Human-readable name, e.g. `"RGCN-I"`.
    fn name(&self) -> String;

    /// Trains the predictor.
    ///
    /// # Errors
    /// Returns [`Error::DatasetTooSmall`] for an empty training set.
    fn fit(&mut self, train: &Dataset, validation: &Dataset, config: &TrainConfig) -> Result<()>;

    /// Predicts the raw `[DSP, LUT, FF, CP]` values of one design.
    ///
    /// # Errors
    /// Returns [`Error::NotTrained`] if called before [`Approach::fit`].
    fn predict(&self, sample: &GraphSample) -> Result<[f64; TargetMetric::COUNT]>;

    /// Per-target MAPE over a dataset (samples whose prediction fails are
    /// skipped; this only happens for untrained models).
    fn evaluate(&self, dataset: &Dataset) -> [f64; TargetMetric::COUNT] {
        let mut predictions: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
        let mut actuals: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
        for sample in &dataset.samples {
            if let Ok(predicted) = self.predict(sample) {
                for target in 0..TargetMetric::COUNT {
                    predictions[target].push(predicted[target]);
                    actuals[target].push(sample.targets[target]);
                }
            }
        }
        let mut result = [0.0f64; TargetMetric::COUNT];
        for target in 0..TargetMetric::COUNT {
            result[target] = mape_with_floor(&predictions[target], &actuals[target], 1.0);
        }
        result
    }
}

/// The paper's evaluation protocol (§5.1): train `runs` copies of a predictor
/// with different seeds, rank them by mean validation MAPE, and report the
/// per-target test MAPE averaged over the `keep` best runs ("each model is
/// trained with five runs using different random number seeds and we report
/// the average of three with least validation error").
///
/// `make` builds a fresh, untrained predictor for a given seed.
///
/// # Errors
/// Propagates training errors; returns [`Error::Config`] when `runs` or `keep`
/// is zero or `keep > runs`.
pub fn seed_averaged_mape<A, F>(
    mut make: F,
    train: &Dataset,
    validation: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
    runs: usize,
    keep: usize,
) -> Result<[f64; TargetMetric::COUNT]>
where
    A: Approach,
    F: FnMut(u64) -> A,
{
    if runs == 0 || keep == 0 || keep > runs {
        return Err(Error::Config(format!(
            "invalid seed-averaging setup: runs = {runs}, keep = {keep}"
        )));
    }
    let mut ranked: Vec<(f64, [f64; TargetMetric::COUNT])> = Vec::with_capacity(runs);
    for run in 0..runs {
        let seed = config.seed.wrapping_add(run as u64);
        let run_config = config.clone().with_seed(seed);
        let mut predictor = make(seed);
        predictor.fit(train, validation, &run_config)?;
        // Rank by validation error when a validation split exists, otherwise
        // by training error (small corpora in tests may have no validation).
        let ranking_set = if validation.is_empty() { train } else { validation };
        let validation_mape = predictor.evaluate(ranking_set);
        let score: f64 = validation_mape.iter().sum::<f64>() / TargetMetric::COUNT as f64;
        ranked.push((score, predictor.evaluate(test)));
    }
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut averaged = [0.0f64; TargetMetric::COUNT];
    for (_, test_mape) in ranked.iter().take(keep) {
        for (slot, value) in averaged.iter_mut().zip(test_mape) {
            *slot += value;
        }
    }
    for slot in &mut averaged {
        *slot /= keep as f64;
    }
    Ok(averaged)
}

/// Per-target MAPE of the HLS report itself against the implementation ground
/// truth — the baseline every approach is compared to in Table 5.
pub fn hls_baseline_mape(dataset: &Dataset) -> [f64; TargetMetric::COUNT] {
    let mut result = [0.0f64; TargetMetric::COUNT];
    for target in 0..TargetMetric::COUNT {
        let predictions: Vec<f64> = dataset.samples.iter().map(|s| s.hls_estimate[target]).collect();
        let actuals: Vec<f64> = dataset.samples.iter().map(|s| s.targets[target]).collect();
        result[target] = mape_with_floor(&predictions, &actuals, 1.0);
    }
    result
}

fn ensure_nonempty(train: &Dataset) -> Result<()> {
    if train.is_empty() {
        return Err(Error::DatasetTooSmall("training set is empty".to_owned()));
    }
    Ok(())
}

/// Approach 1: off-the-shelf GNN on raw IR graphs (earliest prediction).
#[derive(Debug)]
pub struct OffTheShelfPredictor {
    kind: GnnKind,
    config: TrainConfig,
    model: Option<GraphRegressor>,
    normalizer: Option<TargetNormalizer>,
}

impl OffTheShelfPredictor {
    /// Creates an untrained predictor with the given GNN backbone.
    pub fn new(kind: GnnKind, config: &TrainConfig) -> Self {
        OffTheShelfPredictor { kind, config: config.clone(), model: None, normalizer: None }
    }
}

impl Approach for OffTheShelfPredictor {
    fn name(&self) -> String {
        self.kind.name().to_owned()
    }

    fn fit(&mut self, train: &Dataset, _validation: &Dataset, config: &TrainConfig) -> Result<()> {
        ensure_nonempty(train)?;
        self.config = config.clone();
        let normalizer = TargetNormalizer::fit(train);
        let model = GraphRegressor::new(self.kind, FeatureMode::Base, config);
        train_regressor(&model, &normalizer, train, config);
        self.model = Some(model);
        self.normalizer = Some(normalizer);
        Ok(())
    }

    fn predict(&self, sample: &GraphSample) -> Result<[f64; TargetMetric::COUNT]> {
        let (model, normalizer) = match (&self.model, &self.normalizer) {
            (Some(model), Some(normalizer)) => (model, normalizer),
            _ => return Err(Error::NotTrained(self.name())),
        };
        Ok(predict_regressor(model, normalizer, sample, None))
    }
}

/// Approach 2: knowledge-rich GNN using per-node HLS resource estimates
/// (latest prediction, best accuracy).
#[derive(Debug)]
pub struct KnowledgeRichPredictor {
    kind: GnnKind,
    config: TrainConfig,
    model: Option<GraphRegressor>,
    normalizer: Option<TargetNormalizer>,
}

impl KnowledgeRichPredictor {
    /// Creates an untrained predictor with the given GNN backbone.
    pub fn new(kind: GnnKind, config: &TrainConfig) -> Self {
        KnowledgeRichPredictor { kind, config: config.clone(), model: None, normalizer: None }
    }
}

impl Approach for KnowledgeRichPredictor {
    fn name(&self) -> String {
        format!("{}{}", self.kind.name(), FeatureMode::ResourceValues.suffix())
    }

    fn fit(&mut self, train: &Dataset, _validation: &Dataset, config: &TrainConfig) -> Result<()> {
        ensure_nonempty(train)?;
        self.config = config.clone();
        let normalizer = TargetNormalizer::fit(train);
        let model = GraphRegressor::new(self.kind, FeatureMode::ResourceValues, config);
        train_regressor(&model, &normalizer, train, config);
        self.model = Some(model);
        self.normalizer = Some(normalizer);
        Ok(())
    }

    fn predict(&self, sample: &GraphSample) -> Result<[f64; TargetMetric::COUNT]> {
        let (model, normalizer) = match (&self.model, &self.normalizer) {
            (Some(model), Some(normalizer)) => (model, normalizer),
            _ => return Err(Error::NotTrained(self.name())),
        };
        Ok(predict_regressor(model, normalizer, sample, None))
    }
}

/// Approach 3: the knowledge-infused hierarchical GNN.
#[derive(Debug)]
pub struct HierarchicalPredictor {
    kind: GnnKind,
    config: TrainConfig,
    classifier: Option<NodeClassifierModel>,
    regressor: Option<GraphRegressor>,
    normalizer: Option<TargetNormalizer>,
}

impl HierarchicalPredictor {
    /// Creates an untrained predictor with the given GNN backbone.
    pub fn new(kind: GnnKind, config: &TrainConfig) -> Self {
        HierarchicalPredictor {
            kind,
            config: config.clone(),
            classifier: None,
            regressor: None,
            normalizer: None,
        }
    }

    /// Per-class accuracy of the node-level stage (Table 3).
    ///
    /// # Errors
    /// Returns [`Error::NotTrained`] before [`Approach::fit`].
    pub fn node_accuracy(&self, dataset: &Dataset) -> Result<[f64; ResourceClass::COUNT]> {
        let classifier = self.classifier.as_ref().ok_or_else(|| Error::NotTrained(self.name()))?;
        Ok(evaluate_node_classifier(classifier, dataset))
    }

    /// Self-inferred resource types for one design (the inference-time input
    /// of the graph-level stage).
    ///
    /// # Errors
    /// Returns [`Error::NotTrained`] before [`Approach::fit`].
    pub fn infer_types(&self, sample: &GraphSample) -> Result<Vec<[f32; 3]>> {
        let classifier = self.classifier.as_ref().ok_or_else(|| Error::NotTrained(self.name()))?;
        let mut rng = StdRng::seed_from_u64(0);
        Ok(classifier.predict_types(sample, &mut rng))
    }
}

impl Approach for HierarchicalPredictor {
    fn name(&self) -> String {
        format!("{}{}", self.kind.name(), FeatureMode::ResourceTypes.suffix())
    }

    fn fit(&mut self, train: &Dataset, _validation: &Dataset, config: &TrainConfig) -> Result<()> {
        ensure_nonempty(train)?;
        self.config = config.clone();
        // Stage 1: node-level classification, supervised by the ground-truth
        // resource types (knowledge infusion happens here).
        let classifier = NodeClassifierModel::new(self.kind, config);
        train_node_classifier(&classifier, train, config);
        // Stage 2: graph-level regression with ground-truth types as inputs.
        let normalizer = TargetNormalizer::fit(train);
        let regressor = GraphRegressor::new(self.kind, FeatureMode::ResourceTypes, config);
        train_regressor(&regressor, &normalizer, train, config);
        self.classifier = Some(classifier);
        self.regressor = Some(regressor);
        self.normalizer = Some(normalizer);
        Ok(())
    }

    fn predict(&self, sample: &GraphSample) -> Result<[f64; TargetMetric::COUNT]> {
        let (regressor, normalizer) = match (&self.regressor, &self.normalizer) {
            (Some(regressor), Some(normalizer)) => (regressor, normalizer),
            _ => return Err(Error::NotTrained(self.name())),
        };
        // Hierarchical inference: the only inputs are the IR graph; the
        // resource types are self-inferred by the first stage.
        let types = self.infer_types(sample)?;
        Ok(predict_regressor(regressor, normalizer, sample, Some(&types)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

    fn tiny_split() -> (Dataset, Dataset, Dataset) {
        let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
            .count(14)
            .seed(33)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
            .build()
            .unwrap();
        let split = dataset.split(0.7, 0.15, 1);
        (split.train, split.validation, split.test)
    }

    #[test]
    fn untrained_predictors_refuse_to_predict() {
        let (_, _, test) = tiny_split();
        let config = TrainConfig::fast();
        let predictors: Vec<Box<dyn Approach>> = vec![
            Box::new(OffTheShelfPredictor::new(GnnKind::Gcn, &config)),
            Box::new(KnowledgeRichPredictor::new(GnnKind::Gcn, &config)),
            Box::new(HierarchicalPredictor::new(GnnKind::Gcn, &config)),
        ];
        for predictor in &predictors {
            assert!(matches!(predictor.predict(&test.samples[0]), Err(Error::NotTrained(_))));
        }
    }

    #[test]
    fn names_follow_paper_notation() {
        let config = TrainConfig::fast();
        assert_eq!(OffTheShelfPredictor::new(GnnKind::Rgcn, &config).name(), "RGCN");
        assert_eq!(KnowledgeRichPredictor::new(GnnKind::Rgcn, &config).name(), "RGCN-R");
        assert_eq!(HierarchicalPredictor::new(GnnKind::Pna, &config).name(), "PNA-I");
    }

    #[test]
    fn all_three_approaches_train_and_predict() {
        let (train, validation, test) = tiny_split();
        let config = TrainConfig::fast();
        let mut off_the_shelf = OffTheShelfPredictor::new(GnnKind::GraphSage, &config);
        let mut knowledge_rich = KnowledgeRichPredictor::new(GnnKind::GraphSage, &config);
        let mut hierarchical = HierarchicalPredictor::new(GnnKind::GraphSage, &config);
        off_the_shelf.fit(&train, &validation, &config).unwrap();
        knowledge_rich.fit(&train, &validation, &config).unwrap();
        hierarchical.fit(&train, &validation, &config).unwrap();

        for approach in [&off_the_shelf as &dyn Approach, &knowledge_rich, &hierarchical] {
            let prediction = approach.predict(&test.samples[0]).unwrap();
            assert!(prediction.iter().all(|v| v.is_finite() && *v >= 0.0));
            let mape = approach.evaluate(&test);
            assert!(mape.iter().all(|m| m.is_finite()));
        }
        let accuracies = hierarchical.node_accuracy(&test).unwrap();
        assert!(accuracies.iter().all(|&a| (0.0..=1.0).contains(&a)));
        let types = hierarchical.infer_types(&test.samples[0]).unwrap();
        assert_eq!(types.len(), test.samples[0].num_nodes());
    }

    #[test]
    fn seed_averaging_follows_the_paper_protocol() {
        let (train, validation, test) = tiny_split();
        let mut config = TrainConfig::fast();
        config.epochs = 2;
        let averaged = seed_averaged_mape(
            |_seed| OffTheShelfPredictor::new(GnnKind::Gcn, &config),
            &train,
            &validation,
            &test,
            &config,
            3,
            2,
        )
        .expect("seed averaging runs");
        assert!(averaged.iter().all(|m| m.is_finite() && *m >= 0.0));

        // Invalid setups are rejected.
        let invalid = seed_averaged_mape(
            |_seed| OffTheShelfPredictor::new(GnnKind::Gcn, &config),
            &train,
            &validation,
            &test,
            &config,
            1,
            2,
        );
        assert!(matches!(invalid, Err(Error::Config(_))));
    }

    #[test]
    fn empty_training_set_is_rejected() {
        let config = TrainConfig::fast();
        let mut predictor = OffTheShelfPredictor::new(GnnKind::Gcn, &config);
        let empty = Dataset::default();
        assert!(matches!(
            predictor.fit(&empty, &empty, &config),
            Err(Error::DatasetTooSmall(_))
        ));
    }

    #[test]
    fn hls_baseline_mape_is_positive_for_lut() {
        let (train, _, _) = tiny_split();
        let baseline = hls_baseline_mape(&train);
        assert!(baseline[TargetMetric::Lut.index()] > 0.0);
        assert!(baseline.iter().all(|m| m.is_finite()));
    }
}
