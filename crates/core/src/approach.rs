//! The three prediction strategies of §2 of the paper, unified behind one
//! implementation of the [`Predictor`] trait.
//!
//! Historically each strategy was its own struct (`OffTheShelfPredictor`,
//! `KnowledgeRichPredictor`, `HierarchicalPredictor`); they are now absorbed
//! into [`GnnPredictor`], parameterised by a
//! [`crate::builder::PredictorSpec`]:
//!
//! * [`ApproachKind::OffTheShelf`] — earliest prediction, Table-1 features
//!   only.
//! * [`ApproachKind::KnowledgeRich`] — late prediction, per-node resource
//!   values from the HLS intermediate results as auxiliary inputs.
//! * [`ApproachKind::Hierarchical`] — the knowledge-infused approach: a
//!   node-level resource-type classifier feeds a graph-level regressor;
//!   ground-truth types are used during training and self-inferred types at
//!   inference, so prediction still happens at the earliest stage with
//!   (almost) zero extra inference cost.
//!
//! This module also keeps the paper's evaluation protocol
//! ([`seed_averaged_mape`]) and the HLS-report baseline
//! ([`hls_baseline_mape`]).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::builder::{ApproachKind, PredictorSpec};
use crate::dataset::{Dataset, GraphSample, SampleSource};
use crate::metrics::{mape_with_floor, TargetNormalizer};
use crate::model::{GraphRegressor, NodeClassifierModel};
use crate::persist::{SavedNormalizer, SavedPredictor, SavedTensor, SNAPSHOT_VERSION};
use crate::predictor::Predictor;
use crate::runtime::{self, BatchConfig, ParallelConfig};
use crate::task::{ResourceClass, TargetMetric};
use crate::train::{
    evaluate_node_classifier, predict_regressor, train_node_classifier_source, TrainConfig,
};
use crate::{Error, Result};

/// The paper's evaluation protocol (§5.1): train `runs` copies of a predictor
/// with different seeds, rank them by mean validation MAPE, and report the
/// per-target test MAPE averaged over the `keep` best runs ("each model is
/// trained with five runs using different random number seeds and we report
/// the average of three with least validation error").
///
/// `make` builds a fresh, untrained predictor for a given seed; it may return
/// any [`Predictor`] implementation, including `Box<dyn Predictor>` from the
/// builder API. Evaluation goes through [`Predictor::evaluate`] and therefore
/// the batched inference path.
///
/// The runs are embarrassingly parallel — each one's RNG state is derived
/// purely from its seed — and execute on the runtime configured by
/// `HLSGNN_WORKERS` ([`ParallelConfig::from_env`]). Use
/// [`seed_averaged_mape_with`] to pass an explicit worker configuration. The
/// reported metrics are bit-identical for every worker count.
///
/// # Errors
/// Propagates training errors; returns [`Error::Config`] when `runs` or `keep`
/// is zero or `keep > runs`.
pub fn seed_averaged_mape<A, F>(
    make: F,
    train: &Dataset,
    validation: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
    runs: usize,
    keep: usize,
) -> Result<[f64; TargetMetric::COUNT]>
where
    A: Predictor,
    F: Fn(u64) -> A + Sync,
{
    seed_averaged_mape_with(
        &ParallelConfig::from_env(),
        make,
        train,
        validation,
        test,
        config,
        runs,
        keep,
    )
}

/// [`seed_averaged_mape`] with an explicit worker configuration. Each worker
/// constructs, trains and evaluates its own thread-confined predictor; only
/// the (`Send`) per-run scores travel back to the coordinator, which ranks
/// them in run order — so results are bit-identical to the serial protocol
/// regardless of worker count.
///
/// # Errors
/// Propagates training errors (the lowest-seed failure, matching the serial
/// loop); returns [`Error::Config`] when `runs` or `keep` is zero or
/// `keep > runs`.
#[allow(clippy::too_many_arguments)]
pub fn seed_averaged_mape_with<A, F>(
    parallel: &ParallelConfig,
    make: F,
    train: &Dataset,
    validation: &Dataset,
    test: &Dataset,
    config: &TrainConfig,
    runs: usize,
    keep: usize,
) -> Result<[f64; TargetMetric::COUNT]>
where
    A: Predictor,
    F: Fn(u64) -> A + Sync,
{
    if runs == 0 || keep == 0 || keep > runs {
        return Err(Error::Config(format!(
            "invalid seed-averaging setup: runs = {runs}, keep = {keep}"
        )));
    }
    let mut ranked: Vec<(f64, [f64; TargetMetric::COUNT])> =
        runtime::try_run_jobs(parallel, runs, |run| {
            let seed = config.seed.wrapping_add(run as u64);
            let run_config = config.clone().with_seed(seed);
            let mut predictor = make(seed);
            predictor.fit(train, validation, &run_config)?;
            // Rank by validation error when a validation split exists,
            // otherwise by training error (small corpora in tests may have no
            // validation).
            let ranking_set = if validation.is_empty() { train } else { validation };
            let validation_mape = predictor.evaluate(ranking_set);
            let score: f64 = validation_mape.iter().sum::<f64>() / TargetMetric::COUNT as f64;
            Ok((score, predictor.evaluate(test)))
        })?;
    // Stable sort + run-order input keeps tie-breaks identical to the serial
    // protocol.
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut averaged = [0.0f64; TargetMetric::COUNT];
    for (_, test_mape) in ranked.iter().take(keep) {
        for (slot, value) in averaged.iter_mut().zip(test_mape) {
            *slot += value;
        }
    }
    for slot in &mut averaged {
        *slot /= keep as f64;
    }
    Ok(averaged)
}

/// Per-target MAPE of the HLS report itself against the implementation ground
/// truth — the baseline every approach is compared to in Table 5.
pub fn hls_baseline_mape(dataset: &Dataset) -> [f64; TargetMetric::COUNT] {
    let mut result = [0.0f64; TargetMetric::COUNT];
    for (target, slot) in result.iter_mut().enumerate() {
        let predictions: Vec<f64> =
            dataset.samples.iter().map(|s| s.hls_estimate[target]).collect();
        let actuals: Vec<f64> = dataset.samples.iter().map(|s| s.targets[target]).collect();
        *slot = mape_with_floor(&predictions, &actuals, 1.0);
    }
    result
}

fn ensure_nonempty(train: &dyn SampleSource) -> Result<()> {
    if train.is_empty() {
        return Err(Error::DatasetTooSmall("training set is empty".to_owned()));
    }
    Ok(())
}

/// The seed-averaged protocol of [`seed_averaged_mape_with`] over
/// [`SampleSource`]s: every run trains through
/// [`Predictor::fit_source`] and scores through
/// [`Predictor::evaluate_source`], so a sharded on-disk corpus is evaluated
/// with per-mini-batch memory across all workers. For in-memory `Dataset`
/// sources the reported metrics are bit-identical to
/// [`seed_averaged_mape_with`] — training shares one code path, and
/// evaluation chunking never changes a fused prediction.
///
/// Validation samples are used only to *rank* the runs (no in-tree predictor
/// consumes them during fitting), so `fit_source` receives an empty
/// validation dataset.
///
/// # Errors
/// Propagates training/fetch errors (the lowest-seed failure); returns
/// [`Error::Config`] when `runs` or `keep` is zero or `keep > runs`.
#[allow(clippy::too_many_arguments)]
pub fn seed_averaged_mape_source<A, F>(
    parallel: &ParallelConfig,
    make: F,
    train: &dyn SampleSource,
    validation: &dyn SampleSource,
    test: &dyn SampleSource,
    config: &TrainConfig,
    runs: usize,
    keep: usize,
) -> Result<[f64; TargetMetric::COUNT]>
where
    A: Predictor,
    F: Fn(u64) -> A + Sync,
{
    if runs == 0 || keep == 0 || keep > runs {
        return Err(Error::Config(format!(
            "invalid seed-averaging setup: runs = {runs}, keep = {keep}"
        )));
    }
    let empty_validation = Dataset::default();
    let mut ranked: Vec<(f64, [f64; TargetMetric::COUNT])> =
        runtime::try_run_jobs(parallel, runs, |run| {
            let seed = config.seed.wrapping_add(run as u64);
            let run_config = config.clone().with_seed(seed);
            let mut predictor = make(seed);
            predictor.fit_source(train, &empty_validation, &run_config)?;
            let ranking_set = if validation.is_empty() { train } else { validation };
            let validation_mape = predictor.evaluate_source(ranking_set)?;
            let score: f64 = validation_mape.iter().sum::<f64>() / TargetMetric::COUNT as f64;
            Ok((score, predictor.evaluate_source(test)?))
        })?;
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut averaged = [0.0f64; TargetMetric::COUNT];
    for (_, test_mape) in ranked.iter().take(keep) {
        for (slot, value) in averaged.iter_mut().zip(test_mape) {
            *slot += value;
        }
    }
    for slot in &mut averaged {
        *slot /= keep as f64;
    }
    Ok(averaged)
}

/// The GNN-based predictor implementing all three approaches of the paper,
/// selected by its [`PredictorSpec`].
///
/// Construct one directly, through [`PredictorSpec::build`], or through
/// [`crate::builder::PredictorBuilder`]; reload a trained one with
/// [`crate::builder::load_predictor`].
#[derive(Debug)]
pub struct GnnPredictor {
    spec: PredictorSpec,
    config: TrainConfig,
    classifier: Option<NodeClassifierModel>,
    regressor: Option<GraphRegressor>,
    normalizer: Option<TargetNormalizer>,
}

impl GnnPredictor {
    /// Creates an untrained predictor for the given spec.
    pub fn new(spec: PredictorSpec, config: &TrainConfig) -> Self {
        GnnPredictor {
            spec,
            config: config.clone(),
            classifier: None,
            regressor: None,
            normalizer: None,
        }
    }

    /// Approach 1: off-the-shelf GNN on raw IR graphs (earliest prediction).
    pub fn off_the_shelf(backbone: gnn::GnnKind, config: &TrainConfig) -> Self {
        GnnPredictor::new(PredictorSpec::new(ApproachKind::OffTheShelf, backbone), config)
    }

    /// Approach 2: knowledge-rich GNN using per-node HLS resource estimates.
    pub fn knowledge_rich(backbone: gnn::GnnKind, config: &TrainConfig) -> Self {
        GnnPredictor::new(PredictorSpec::new(ApproachKind::KnowledgeRich, backbone), config)
    }

    /// Approach 3: the knowledge-infused hierarchical GNN.
    pub fn hierarchical(backbone: gnn::GnnKind, config: &TrainConfig) -> Self {
        GnnPredictor::new(PredictorSpec::new(ApproachKind::Hierarchical, backbone), config)
    }

    /// Per-class accuracy of the node-level stage (Table 3).
    ///
    /// # Errors
    /// Returns [`Error::NotTrained`] before [`Predictor::fit`] and
    /// [`Error::Config`] for approaches without a node-level stage.
    pub fn node_accuracy(&self, dataset: &Dataset) -> Result<[f64; ResourceClass::COUNT]> {
        let classifier = self.classifier_checked()?;
        Ok(evaluate_node_classifier(classifier, dataset))
    }

    /// Self-inferred resource types for one design (the inference-time input
    /// of the graph-level stage).
    ///
    /// # Errors
    /// Returns [`Error::NotTrained`] before [`Predictor::fit`] and
    /// [`Error::Config`] for approaches without a node-level stage.
    pub fn infer_types(&self, sample: &GraphSample) -> Result<Vec<[f32; 3]>> {
        let classifier = self.classifier_checked()?;
        let mut rng = StdRng::seed_from_u64(0);
        Ok(classifier.predict_types(sample, &mut rng))
    }

    /// Rebuilds a trained predictor from a snapshot.
    ///
    /// # Errors
    /// Returns [`Error::Config`] when the snapshot's tensors do not match the
    /// architecture implied by its spec and config.
    pub fn from_saved(saved: &SavedPredictor) -> Result<Self> {
        let regressor = GraphRegressor::new(
            saved.spec.backbone,
            saved.spec.approach.feature_mode(),
            &saved.config,
        );
        regressor.load_state(&SavedTensor::to_state(&saved.regressor)?)?;
        let classifier = match (&saved.classifier, saved.spec.approach.uses_classifier()) {
            (Some(tensors), true) => {
                let classifier = NodeClassifierModel::new(saved.spec.backbone, &saved.config);
                classifier.load_state(&SavedTensor::to_state(tensors)?)?;
                Some(classifier)
            }
            (None, false) => None,
            (Some(_), false) => {
                return Err(Error::Config(format!(
                    "snapshot for {} carries a classifier but the approach has no node-level stage",
                    saved.spec.name()
                )))
            }
            (None, true) => {
                return Err(Error::Config(format!(
                    "snapshot for {} is missing the node-classifier stage",
                    saved.spec.name()
                )))
            }
        };
        Ok(GnnPredictor {
            spec: saved.spec,
            config: saved.config.clone(),
            classifier,
            regressor: Some(regressor),
            normalizer: Some(saved.normalizer.to_normalizer()),
        })
    }

    fn classifier_checked(&self) -> Result<&NodeClassifierModel> {
        if !self.spec.approach.uses_classifier() {
            return Err(Error::Config(format!(
                "{} has no node-level classifier stage (approach `{}`)",
                self.name(),
                self.spec.approach
            )));
        }
        self.classifier.as_ref().ok_or_else(|| Error::NotTrained(self.name()))
    }

    /// Resolves the trained inference state once (the shared fast path used
    /// by `predict_batch`).
    fn trained_state(&self) -> Result<(&GraphRegressor, &TargetNormalizer)> {
        match (&self.regressor, &self.normalizer) {
            (Some(regressor), Some(normalizer)) => Ok((regressor, normalizer)),
            _ => Err(Error::NotTrained(self.name())),
        }
    }

    /// [`Predictor::fit_source`] with an explicit fusion configuration
    /// instead of the `HLSGNN_BATCH*` environment. Frozen protocols (the
    /// registry parity gate) use this so their chunk plans — and therefore
    /// their floating-point accumulation order — cannot drift when the
    /// default node budget is retuned.
    pub fn fit_source_with(
        &mut self,
        batch_config: &BatchConfig,
        train: &dyn SampleSource,
        _validation: &Dataset,
        config: &TrainConfig,
    ) -> Result<()> {
        ensure_nonempty(train)?;
        config.validate()?;
        // Validate the targets up front, and train every stage into locals
        // before mutating `self`: a rejected refit — or a mid-training fetch
        // failure from an on-disk source — leaves an already trained
        // predictor fully intact (and a fresh one untouched), never a
        // half-retrained mix of stages.
        let normalizer = TargetNormalizer::fit_source(train)?;
        // Stage 1 (hierarchical only): node-level classification, supervised
        // by the ground-truth resource types (knowledge infusion).
        let classifier = if self.spec.approach.uses_classifier() {
            let classifier = NodeClassifierModel::new(self.spec.backbone, config);
            train_node_classifier_source(&classifier, train, config)?;
            Some(classifier)
        } else {
            None
        };
        // Graph-level regression; the hierarchical approach trains on
        // ground-truth types and self-infers them at prediction time.
        let regressor =
            GraphRegressor::new(self.spec.backbone, self.spec.approach.feature_mode(), config);
        crate::train::train_regressor_source_with(
            batch_config,
            &regressor,
            &normalizer,
            train,
            config,
        )?;
        self.config = config.clone();
        self.classifier = classifier;
        self.regressor = Some(regressor);
        self.normalizer = Some(normalizer);
        Ok(())
    }

    /// [`Predictor::predict_batch`] with an explicit fusion width. Width 1
    /// runs the legacy per-sample forwards; larger widths fuse that many
    /// graphs per tape ([`GraphRegressor::forward_batch`]). Inference through
    /// the fused tape is bit-identical to the per-sample path at every width,
    /// so this only changes the cost of a sweep, never its result.
    pub fn predict_batch_with(
        &self,
        samples: &[GraphSample],
        batch_config: &BatchConfig,
    ) -> Vec<Result<[f64; TargetMetric::COUNT]>> {
        // Resolve models, normaliser and the optional classifier once for the
        // whole batch; the per-chunk loop then only runs forward passes.
        let (regressor, normalizer) = match self.trained_state() {
            Ok(state) => state,
            Err(error) => return samples.iter().map(|_| Err(error.clone())).collect(),
        };
        let classifier = if self.spec.approach.uses_classifier() {
            match self.classifier.as_ref() {
                Some(classifier) => Some(classifier),
                None => {
                    let error = Error::NotTrained(self.name());
                    return samples.iter().map(|_| Err(error.clone())).collect();
                }
            }
        } else {
            None
        };
        // Hierarchical inference: the only inputs are the IR graph; resource
        // types are self-inferred by the node-level stage, which stays
        // per-graph (its labels are per-node) — only the graph-level
        // regression fuses.
        let infer_types = |classifier: &NodeClassifierModel, sample: &GraphSample| {
            let mut rng = StdRng::seed_from_u64(0);
            classifier.predict_types(sample, &mut rng)
        };
        let predict_one = |sample: &GraphSample| {
            let types = classifier.map(|classifier| infer_types(classifier, sample));
            Ok(predict_regressor(regressor, normalizer, sample, types.as_deref()))
        };
        let width = batch_config.effective_width(self.config.batch_size);
        if width == 1 {
            // Legacy per-sample forwards (exact historical behaviour).
            return samples.iter().map(predict_one).collect();
        }
        let mut results = Vec::with_capacity(samples.len());
        let sizes: Vec<usize> = samples.iter().map(GraphSample::num_nodes).collect();
        let mut start = 0;
        for length in
            batch_config.plan_chunks(&sizes, self.config.batch_size, self.config.hidden_dim)
        {
            let chunk = &samples[start..start + length];
            start += length;
            if length == 1 {
                // A graph that fills the node budget on its own: the plain
                // per-graph path skips the fuse/encode-batch copies.
                results.push(predict_one(&chunk[0]));
                continue;
            }
            let refs: Vec<&GraphSample> = chunk.iter().collect();
            let overrides: Option<Vec<Vec<[f32; 3]>>> = classifier.map(|classifier| {
                chunk.iter().map(|sample| infer_types(classifier, sample)).collect()
            });
            let mut rng = StdRng::seed_from_u64(0);
            let output =
                regressor.forward_batch(&refs, overrides.as_deref(), false, &mut rng).value();
            // The fused inference tape is dead once its values are extracted.
            gnn_tensor::tape::reset();
            for row in 0..chunk.len() {
                let mut normalized = [0.0f32; TargetMetric::COUNT];
                for (index, value) in normalized.iter_mut().enumerate() {
                    *value = output.get(row, index);
                }
                results.push(Ok(normalizer.denormalize(&normalized)));
            }
        }
        results
    }
}

impl Predictor for GnnPredictor {
    fn spec(&self) -> PredictorSpec {
        self.spec
    }

    fn is_trained(&self) -> bool {
        self.regressor.is_some() && self.normalizer.is_some()
    }

    fn fit(&mut self, train: &Dataset, validation: &Dataset, config: &TrainConfig) -> Result<()> {
        // One training implementation: the in-memory path is the streamed
        // path over the borrowing `SampleSource` impl, so the two can never
        // drift apart numerically.
        self.fit_source(train, validation, config)
    }

    fn fit_source(
        &mut self,
        train: &dyn SampleSource,
        validation: &Dataset,
        config: &TrainConfig,
    ) -> Result<()> {
        self.fit_source_with(&BatchConfig::from_env(), train, validation, config)
    }

    fn predict_batch(&self, samples: &[GraphSample]) -> Vec<Result<[f64; TargetMetric::COUNT]>> {
        self.predict_batch_with(samples, &BatchConfig::from_env())
    }

    fn snapshot(&self) -> Result<SavedPredictor> {
        let (regressor, normalizer) = self.trained_state()?;
        // Refuse to export NaN/inf weights: JSON has no representation for
        // them (they'd be written as null and fail on reload in the serving
        // process), and a non-finite model is broken anyway — fail here,
        // where the training run can still be fixed.
        let ensure_finite = |state: &[gnn_tensor::Matrix]| -> Result<()> {
            if state.iter().any(gnn_tensor::Matrix::has_non_finite) {
                return Err(Error::Config(format!(
                    "{} has non-finite weights (diverged training?); refusing to serialise",
                    self.name()
                )));
            }
            Ok(())
        };
        let regressor_state = regressor.state();
        ensure_finite(&regressor_state)?;
        let classifier = if self.spec.approach.uses_classifier() {
            let classifier =
                self.classifier.as_ref().ok_or_else(|| Error::NotTrained(self.name()))?;
            let classifier_state = classifier.state();
            ensure_finite(&classifier_state)?;
            Some(SavedTensor::from_state(&classifier_state))
        } else {
            None
        };
        Ok(SavedPredictor {
            version: SNAPSHOT_VERSION,
            spec: self.spec,
            config: self.config.clone(),
            normalizer: SavedNormalizer::from_normalizer(normalizer),
            regressor: SavedTensor::from_state(&regressor_state),
            classifier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::load_predictor;
    use crate::dataset::DatasetBuilder;
    use gnn::GnnKind;
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

    fn tiny_split() -> (Dataset, Dataset, Dataset) {
        let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
            .count(14)
            .seed(33)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
            .build()
            .unwrap();
        let split = dataset.split(0.7, 0.15, 1);
        (split.train, split.validation, split.test)
    }

    #[test]
    fn untrained_predictors_refuse_to_predict() {
        let (_, _, test) = tiny_split();
        let config = TrainConfig::fast();
        let predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(GnnPredictor::off_the_shelf(GnnKind::Gcn, &config)),
            Box::new(GnnPredictor::knowledge_rich(GnnKind::Gcn, &config)),
            Box::new(GnnPredictor::hierarchical(GnnKind::Gcn, &config)),
        ];
        for predictor in &predictors {
            assert!(!predictor.is_trained());
            assert!(matches!(predictor.predict(&test.samples[0]), Err(Error::NotTrained(_))));
            assert!(matches!(predictor.save_json(), Err(Error::NotTrained(_))));
            let batch = predictor.predict_batch(&test.samples);
            assert_eq!(batch.len(), test.len());
            assert!(batch.iter().all(|r| matches!(r, Err(Error::NotTrained(_)))));
        }
    }

    #[test]
    fn names_follow_paper_notation() {
        let config = TrainConfig::fast();
        assert_eq!(GnnPredictor::off_the_shelf(GnnKind::Rgcn, &config).name(), "RGCN");
        assert_eq!(GnnPredictor::knowledge_rich(GnnKind::Rgcn, &config).name(), "RGCN-R");
        assert_eq!(GnnPredictor::hierarchical(GnnKind::Pna, &config).name(), "PNA-I");
    }

    #[test]
    fn all_three_approaches_train_and_predict() {
        let (train, validation, test) = tiny_split();
        let config = TrainConfig::fast();
        let mut off_the_shelf = GnnPredictor::off_the_shelf(GnnKind::GraphSage, &config);
        let mut knowledge_rich = GnnPredictor::knowledge_rich(GnnKind::GraphSage, &config);
        let mut hierarchical = GnnPredictor::hierarchical(GnnKind::GraphSage, &config);
        off_the_shelf.fit(&train, &validation, &config).unwrap();
        knowledge_rich.fit(&train, &validation, &config).unwrap();
        hierarchical.fit(&train, &validation, &config).unwrap();

        for approach in [&off_the_shelf as &dyn Predictor, &knowledge_rich, &hierarchical] {
            assert!(approach.is_trained());
            let prediction = approach.predict(&test.samples[0]).unwrap();
            assert!(prediction.iter().all(|v| v.is_finite() && *v >= 0.0));
            let mape = approach.evaluate(&test);
            assert!(mape.iter().all(|m| m.is_finite()));
        }
        let accuracies = hierarchical.node_accuracy(&test).unwrap();
        assert!(accuracies.iter().all(|&a| (0.0..=1.0).contains(&a)));
        let types = hierarchical.infer_types(&test.samples[0]).unwrap();
        assert_eq!(types.len(), test.samples[0].num_nodes());

        // The node-level stage only exists for the hierarchical approach.
        assert!(matches!(off_the_shelf.node_accuracy(&test), Err(Error::Config(_))));
        assert!(matches!(knowledge_rich.infer_types(&test.samples[0]), Err(Error::Config(_))));
    }

    #[test]
    fn predict_batch_matches_per_sample_predict() {
        let (train, validation, test) = tiny_split();
        let config = TrainConfig::fast();
        for approach in ApproachKind::ALL {
            let spec = PredictorSpec::new(approach, GnnKind::Gcn);
            let mut predictor = GnnPredictor::new(spec, &config);
            predictor.fit(&train, &validation, &config).unwrap();
            let batch = predictor.predict_batch(&test.samples);
            assert_eq!(batch.len(), test.len());
            for (sample, batched) in test.samples.iter().zip(batch) {
                let single = predictor.predict(sample).unwrap();
                assert_eq!(single, batched.unwrap(), "{}: batch differs from single", spec.id());
            }
        }
    }

    #[test]
    fn save_load_round_trip_preserves_predictions_exactly() {
        let (train, validation, test) = tiny_split();
        let config = TrainConfig::fast();
        for approach in ApproachKind::ALL {
            let spec = PredictorSpec::new(approach, GnnKind::GraphSage);
            let mut predictor = GnnPredictor::new(spec, &config);
            predictor.fit(&train, &validation, &config).unwrap();
            let json = predictor.save_json().unwrap();
            let reloaded = load_predictor(&json).unwrap();
            assert_eq!(reloaded.spec(), spec);
            assert!(reloaded.is_trained());
            for sample in &test.samples {
                assert_eq!(
                    reloaded.predict(sample).unwrap(),
                    predictor.predict(sample).unwrap(),
                    "{}: reloaded model diverged",
                    spec.id()
                );
            }
        }
    }

    #[test]
    fn seed_averaging_follows_the_paper_protocol() {
        let (train, validation, test) = tiny_split();
        let mut config = TrainConfig::fast();
        config.epochs = 2;
        let averaged = seed_averaged_mape(
            |_seed| GnnPredictor::off_the_shelf(GnnKind::Gcn, &config),
            &train,
            &validation,
            &test,
            &config,
            3,
            2,
        )
        .expect("seed averaging runs");
        assert!(averaged.iter().all(|m| m.is_finite() && *m >= 0.0));

        // The protocol also accepts boxed predictors from the builder API.
        let boxed = seed_averaged_mape(
            |_seed| PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Gcn).build(&config),
            &train,
            &validation,
            &test,
            &config,
            2,
            1,
        );
        assert!(boxed.is_ok());

        // Invalid setups are rejected.
        let invalid = seed_averaged_mape(
            |_seed| GnnPredictor::off_the_shelf(GnnKind::Gcn, &config),
            &train,
            &validation,
            &test,
            &config,
            1,
            2,
        );
        assert!(matches!(invalid, Err(Error::Config(_))));
    }

    #[test]
    fn non_finite_weights_refuse_to_serialise() {
        let (train, validation, _) = tiny_split();
        let config = TrainConfig::fast();
        let mut predictor = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
        predictor.fit(&train, &validation, &config).unwrap();
        let params = predictor.regressor.as_ref().unwrap().parameters();
        let (rows, cols) = params[0].shape();
        params[0].set_value(gnn_tensor::Matrix::full(rows, cols, f32::NAN));
        assert!(matches!(predictor.save_json(), Err(Error::Config(_))));
    }

    #[test]
    fn evaluating_an_untrained_model_reports_nan_not_zero() {
        let (_, _, test) = tiny_split();
        let config = TrainConfig::fast();
        let predictor = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
        assert!(predictor.evaluate(&test).iter().all(|m| m.is_nan()));
        // An empty dataset also evaluates to NaN — never a perfect-looking 0.
        assert!(predictor.evaluate(&Dataset::default()).iter().all(|m| m.is_nan()));
    }

    #[test]
    fn empty_training_set_is_rejected() {
        let config = TrainConfig::fast();
        let mut predictor = GnnPredictor::off_the_shelf(GnnKind::Gcn, &config);
        let empty = Dataset::default();
        assert!(matches!(predictor.fit(&empty, &empty, &config), Err(Error::DatasetTooSmall(_))));
    }

    #[test]
    fn hls_baseline_mape_is_positive_for_lut() {
        let (train, _, _) = tiny_split();
        let baseline = hls_baseline_mape(&train);
        assert!(baseline[TargetMetric::Lut.index()] > 0.0);
        assert!(baseline.iter().all(|m| m.is_finite()));
    }
}
