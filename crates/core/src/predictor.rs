//! The unified prediction-engine interface: every approach of the paper —
//! and any future model — is driven through the dyn-safe [`Predictor`] trait.
//!
//! A `Box<dyn Predictor>` built by [`crate::builder::PredictorSpec::build`]
//! (or reloaded from JSON with [`crate::builder::load_predictor`]) can be
//! trained, evaluated, batched over a design sweep and persisted without the
//! caller knowing which approach or GNN backbone is inside. All evaluation
//! hot loops ([`Predictor::evaluate`], [`crate::approach::seed_averaged_mape`]
//! and the experiment harness) are routed through
//! [`Predictor::predict_batch`], so there is one inference code path to
//! optimise.

use crate::builder::PredictorSpec;
use crate::dataset::{Dataset, GraphSample, SampleSource};
use crate::metrics::mape_with_floor;
use crate::persist::SavedPredictor;
use crate::task::TargetMetric;
use crate::train::TrainConfig;
use crate::Result;

/// A trained (or trainable) HLS performance predictor.
///
/// The trait is object-safe: servers, bench binaries and config-driven tools
/// hold predictors as `Box<dyn Predictor>` and select the concrete model at
/// runtime with [`crate::builder::PredictorSpec::from_str`].
pub trait Predictor {
    /// The spec (approach × backbone) this predictor was built from.
    fn spec(&self) -> PredictorSpec;

    /// Human-readable name in the paper's notation, e.g. `"RGCN-I"`.
    fn name(&self) -> String {
        self.spec().name()
    }

    /// True once the predictor has been trained (or loaded from a snapshot).
    fn is_trained(&self) -> bool;

    /// Trains the predictor.
    ///
    /// # Errors
    /// Returns [`crate::Error::DatasetTooSmall`] for an empty training set.
    fn fit(&mut self, train: &Dataset, validation: &Dataset, config: &TrainConfig) -> Result<()>;

    /// Trains the predictor from any [`SampleSource`] — the streaming
    /// counterpart of [`Predictor::fit`] for corpora that do not fit in RAM.
    ///
    /// The default implementation materialises the source into a [`Dataset`]
    /// and delegates, which is correct but unbounded in memory;
    /// implementations with a native streaming path (like
    /// [`crate::approach::GnnPredictor`]) override it to iterate
    /// mini-batch-bounded and produce results bit-identical to [`fit`] on
    /// the materialised equivalent.
    ///
    /// # Errors
    /// As [`Predictor::fit`], plus the source's own fetch failures.
    ///
    /// [`fit`]: Predictor::fit
    fn fit_source(
        &mut self,
        train: &dyn SampleSource,
        validation: &Dataset,
        config: &TrainConfig,
    ) -> Result<()> {
        let train = Dataset::from_source(train)?;
        self.fit(&train, validation, config)
    }

    /// Predicts the raw `[DSP, LUT, FF, CP]` values for every design in a
    /// batch. This is the primary inference entry point: trained state is
    /// resolved once per call and shared across the whole batch, and the
    /// fused mini-batching engine unions several graphs per forward tape
    /// (`HLSGNN_BATCH`; see [`crate::runtime::BatchConfig`]), so predicting
    /// `n` designs costs one setup plus `⌈n / width⌉` fused forward passes.
    /// Fused inference is bit-identical to per-sample inference, so the
    /// result never depends on chunk boundaries.
    fn predict_batch(&self, samples: &[GraphSample]) -> Vec<Result<[f64; TargetMetric::COUNT]>>;

    /// Predicts the raw `[DSP, LUT, FF, CP]` values of one design. Delegates
    /// to [`Predictor::predict_batch`] with a single-element batch.
    ///
    /// # Errors
    /// Returns [`crate::Error::NotTrained`] if called before
    /// [`Predictor::fit`].
    fn predict(&self, sample: &GraphSample) -> Result<[f64; TargetMetric::COUNT]> {
        self.predict_batch(std::slice::from_ref(sample))
            .pop()
            .expect("predict_batch returns one result per sample")
    }

    /// Per-target MAPE over a dataset, computed through
    /// [`Predictor::predict_batch`]. Samples whose prediction fails are
    /// skipped; if *every* prediction fails on a non-empty dataset (an
    /// untrained model), the result is `NaN` per target rather than a
    /// perfect-looking `0.0`. An empty dataset likewise evaluates to `NaN`
    /// per target — there is no evidence to report a score on.
    fn evaluate(&self, dataset: &Dataset) -> [f64; TargetMetric::COUNT] {
        let mut predictions: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
        let mut actuals: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
        let batch = self.predict_batch(&dataset.samples);
        for (sample, predicted) in dataset.samples.iter().zip(batch) {
            if let Ok(predicted) = predicted {
                for target in 0..TargetMetric::COUNT {
                    predictions[target].push(predicted[target]);
                    actuals[target].push(sample.targets[target]);
                }
            }
        }
        if !dataset.is_empty() && predictions[0].is_empty() {
            return [f64::NAN; TargetMetric::COUNT];
        }
        let mut result = [0.0f64; TargetMetric::COUNT];
        for target in 0..TargetMetric::COUNT {
            result[target] = mape_with_floor(&predictions[target], &actuals[target], 1.0);
        }
        result
    }

    /// [`Predictor::evaluate`] over any [`SampleSource`], streaming
    /// fixed-size chunks through [`Predictor::predict_batch`] so peak memory
    /// is bounded by the chunk size rather than the corpus. Because fused
    /// inference is bit-identical to per-sample inference (chunk boundaries
    /// never change a prediction), the score equals [`evaluate`] on the
    /// materialised equivalent exactly.
    ///
    /// # Errors
    /// Propagates the source's fetch failures. Prediction failures are
    /// handled as in [`evaluate`] (skipped; all-failed ⇒ `NaN`).
    ///
    /// [`evaluate`]: Predictor::evaluate
    fn evaluate_source(&self, source: &dyn SampleSource) -> Result<[f64; TargetMetric::COUNT]> {
        const CHUNK: usize = 64;
        let mut predictions: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
        let mut actuals: Vec<Vec<f64>> = vec![Vec::new(); TargetMetric::COUNT];
        let mut start = 0;
        while start < source.len() {
            let end = (start + CHUNK).min(source.len());
            let mut chunk = Vec::with_capacity(end - start);
            for index in start..end {
                chunk.push(source.fetch(index)?.into_owned());
            }
            start = end;
            let batch = self.predict_batch(&chunk);
            for (sample, predicted) in chunk.iter().zip(batch) {
                if let Ok(predicted) = predicted {
                    for target in 0..TargetMetric::COUNT {
                        predictions[target].push(predicted[target]);
                        actuals[target].push(sample.targets[target]);
                    }
                }
            }
        }
        if !source.is_empty() && predictions[0].is_empty() {
            return Ok([f64::NAN; TargetMetric::COUNT]);
        }
        let mut result = [0.0f64; TargetMetric::COUNT];
        for target in 0..TargetMetric::COUNT {
            result[target] = mape_with_floor(&predictions[target], &actuals[target], 1.0);
        }
        Ok(result)
    }

    /// Exports the trained state (spec, hyper-parameters, normaliser and
    /// weights) as a plain-`Matrix`, `Send + Sync` snapshot. This is the
    /// bridge out of the `!Send` autodiff tape: the snapshot can cross
    /// threads freely, so the parallel runtime rehydrates one per worker to
    /// shard inference ([`crate::runtime::predict_batch_sharded`]), and
    /// [`Predictor::save_json`] serialises it for another process.
    ///
    /// Contract: rehydrating the snapshot — through
    /// [`crate::approach::GnnPredictor::from_saved`] or
    /// [`crate::builder::load_predictor`] — must produce a predictor whose
    /// outputs match this one *exactly*. The sharded-inference fast path
    /// relies on that equivalence; an implementation that cannot express its
    /// inference as a rehydrated [`crate::approach::GnnPredictor`] must
    /// return an error here (the runtime then falls back to its serial
    /// `predict_batch`).
    ///
    /// # Errors
    /// Returns [`crate::Error::NotTrained`] if called before
    /// [`Predictor::fit`], and [`crate::Error::Config`] when the trained
    /// weights are non-finite (a diverged run is refused rather than
    /// exported).
    fn snapshot(&self) -> Result<SavedPredictor>;

    /// Serialises the trained state to JSON via [`Predictor::snapshot`]. The
    /// result reloads with [`crate::builder::load_predictor`], producing a
    /// predictor whose outputs match the original exactly.
    ///
    /// # Errors
    /// Returns [`crate::Error::NotTrained`] if called before
    /// [`Predictor::fit`].
    fn save_json(&self) -> Result<String> {
        self.snapshot()?.to_json()
    }
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn spec(&self) -> PredictorSpec {
        (**self).spec()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn is_trained(&self) -> bool {
        (**self).is_trained()
    }

    fn fit(&mut self, train: &Dataset, validation: &Dataset, config: &TrainConfig) -> Result<()> {
        (**self).fit(train, validation, config)
    }

    fn fit_source(
        &mut self,
        train: &dyn SampleSource,
        validation: &Dataset,
        config: &TrainConfig,
    ) -> Result<()> {
        (**self).fit_source(train, validation, config)
    }

    fn predict_batch(&self, samples: &[GraphSample]) -> Vec<Result<[f64; TargetMetric::COUNT]>> {
        (**self).predict_batch(samples)
    }

    fn predict(&self, sample: &GraphSample) -> Result<[f64; TargetMetric::COUNT]> {
        (**self).predict(sample)
    }

    fn evaluate(&self, dataset: &Dataset) -> [f64; TargetMetric::COUNT] {
        (**self).evaluate(dataset)
    }

    fn evaluate_source(&self, source: &dyn SampleSource) -> Result<[f64; TargetMetric::COUNT]> {
        (**self).evaluate_source(source)
    }

    fn snapshot(&self) -> Result<SavedPredictor> {
        (**self).snapshot()
    }

    fn save_json(&self) -> Result<String> {
        (**self).save_json()
    }
}
