//! Content fingerprints of prediction inputs, shared by every subsystem that
//! memoises on *what is predicted on* rather than who asked.
//!
//! The serving cache and the design-space-exploration engine both key their
//! memoisation on this fingerprint: two byte-identical graphs must share a
//! cache entry no matter how they were named, when they arrived, or which
//! design point lowered to them. [`sample_fingerprint`] therefore hashes
//! every model input of a [`GraphSample`] — the full connectivity (the same
//! canonical field ordering as [`gnn::GraphData::content_hash`], streamed
//! directly so no stage of the fingerprint narrows below 128 bits), the
//! graph kind, the Table-1 node features, the auxiliary per-node HLS
//! resource estimates and the resource-type flags — and deliberately
//! excludes the sample name and the ground-truth labels, which never reach
//! the model at inference time.
//!
//! The fingerprint is 128-bit FNV-1a. A 64-bit key would make accidental
//! collisions (two different designs silently sharing a cached prediction) a
//! realistic event over millions of served designs; at 128 bits they are not.

use crate::dataset::GraphSample;
use hls_ir::graph::GraphKind;

/// A 128-bit content fingerprint of a prediction input.
pub type Fingerprint = u128;

/// Incremental FNV-1a (128-bit) hasher over little-endian words.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    hash: u128,
}

impl Fnv128 {
    const OFFSET_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

    /// Starts a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv128 { hash: Self::OFFSET_BASIS }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash ^= u128::from(byte);
            self.hash = self.hash.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one 64-bit word (little-endian).
    pub fn write_u64(&mut self, word: u64) {
        self.write(&word.to_le_bytes());
    }

    /// Feeds one `f32` by bit pattern, so `-0.0` and `0.0` (and every NaN
    /// payload) are distinct inputs — the cache must never conflate values
    /// the model could distinguish.
    pub fn write_f32(&mut self, value: f32) {
        self.write(&value.to_bits().to_le_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> Fingerprint {
        self.hash
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Fnv128::new()
    }
}

/// Canonical fingerprint of everything a predictor reads from a sample.
pub fn sample_fingerprint(sample: &GraphSample) -> Fingerprint {
    let mut hasher = Fnv128::new();
    // The graph structure, streamed field by field (same canonical,
    // length-prefixed ordering as `GraphData::content_hash`). Hashing the
    // 64-bit content_hash instead would funnel all structural entropy
    // through 64 bits and cap the whole fingerprint's collision resistance
    // there.
    let structure = &sample.structure;
    hasher.write_u64(structure.num_nodes as u64);
    hasher.write_u64(structure.num_relations as u64);
    hasher.write_u64(structure.num_graphs() as u64);
    hasher.write_u64(structure.edge_src.len() as u64);
    for edge in 0..structure.edge_count() {
        hasher.write_u64(structure.edge_src[edge] as u64);
        hasher.write_u64(structure.edge_dst[edge] as u64);
        hasher.write_u64(structure.edge_relation[edge] as u64);
    }
    let segments = structure.segments().unwrap_or(&[]);
    hasher.write_u64(segments.len() as u64);
    for &segment in segments {
        hasher.write_u64(segment as u64);
    }
    hasher.write_u64(match sample.kind {
        GraphKind::Dfg => 0,
        GraphKind::Cdfg => 1,
    });
    hasher.write_u64(sample.node_features.len() as u64);
    for feature in &sample.node_features {
        hasher.write_u64(feature.node_type as u64);
        hasher.write_u64(u64::from(feature.bitwidth));
        hasher.write_u64(feature.opcode_category as u64);
        hasher.write_u64(feature.opcode as u64);
        hasher.write_u64(u64::from(feature.is_start_of_path));
        hasher.write_u64(feature.cluster_group as u64);
    }
    for aux in &sample.node_aux_resources {
        for &value in aux {
            hasher.write_f32(value);
        }
    }
    for types in &sample.node_resource_types {
        for &value in types {
            hasher.write_f32(value);
        }
    }
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive_and_deterministic() {
        let mut a = Fnv128::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv128::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv128::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn float_bit_patterns_are_distinguished() {
        let mut pos = Fnv128::new();
        pos.write_f32(0.0);
        let mut neg = Fnv128::new();
        neg.write_f32(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }
}
