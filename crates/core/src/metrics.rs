//! Evaluation metrics (MAPE, RMSE, accuracy, F1) and target normalisation.
//!
//! Degenerate inputs never fake success: an empty prediction set yields `NaN`
//! (not a perfect-looking `0.0`), and [`TargetNormalizer::fit`] rejects empty
//! or negative-target training sets instead of fitting confident garbage.

use crate::dataset::{Dataset, SampleSource};
use crate::task::TargetMetric;
use crate::{Error, Result};

/// Mean absolute percentage error with a floor on the denominator (resource
/// counts can legitimately be zero; the floor keeps the metric finite, which
/// is also how HLS QoR comparisons conventionally handle zero utilisation).
/// An empty input yields `NaN` — "no evidence", never a perfect score.
pub fn mape_with_floor(predictions: &[f64], actuals: &[f64], floor: f64) -> f64 {
    assert_eq!(predictions.len(), actuals.len(), "mape length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    let total: f64 =
        predictions.iter().zip(actuals).map(|(p, a)| (p - a).abs() / a.abs().max(floor)).sum();
    total / predictions.len() as f64
}

/// Mean absolute percentage error with a denominator floor of 1.0.
pub fn mape(predictions: &[f64], actuals: &[f64]) -> f64 {
    mape_with_floor(predictions, actuals, 1.0)
}

/// Root-mean-square error. An empty input yields `NaN`.
pub fn rmse(predictions: &[f64], actuals: &[f64]) -> f64 {
    assert_eq!(predictions.len(), actuals.len(), "rmse length mismatch");
    if predictions.is_empty() {
        return f64::NAN;
    }
    let total: f64 = predictions.iter().zip(actuals).map(|(p, a)| (p - a) * (p - a)).sum();
    (total / predictions.len() as f64).sqrt()
}

/// Binary classification accuracy for probability/score predictions against
/// 0/1 labels, thresholded at 0.5. An empty input yields `NaN` — an accuracy
/// of `0.0` would claim every prediction was wrong, on no evidence.
pub fn accuracy(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "accuracy length mismatch");
    if scores.is_empty() {
        return f64::NAN;
    }
    let correct = scores.iter().zip(labels).filter(|(s, l)| (**s >= 0.5) == (**l >= 0.5)).count();
    correct as f64 / scores.len() as f64
}

/// Binary F1 score (harmonic mean of precision and recall) at threshold 0.5.
/// An empty input yields `NaN`; a non-empty input with no true positives
/// yields `0.0` (the conventional F1 degenerate case — there *is* evidence,
/// and it is all bad).
pub fn f1_score(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "f1 length mismatch");
    if scores.is_empty() {
        return f64::NAN;
    }
    let mut true_positive = 0.0f64;
    let mut false_positive = 0.0f64;
    let mut false_negative = 0.0f64;
    for (score, label) in scores.iter().zip(labels) {
        let predicted = *score >= 0.5;
        let actual = *label >= 0.5;
        match (predicted, actual) {
            (true, true) => true_positive += 1.0,
            (true, false) => false_positive += 1.0,
            (false, true) => false_negative += 1.0,
            (false, false) => {}
        }
    }
    if true_positive == 0.0 {
        return 0.0;
    }
    let precision = true_positive / (true_positive + false_positive);
    let recall = true_positive / (true_positive + false_negative);
    2.0 * precision * recall / (precision + recall)
}

/// Average ranks (1-based, ties share the mean of their positions), the rank
/// transform behind Spearman's ρ.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0f64; values.len()];
    let mut start = 0;
    while start < order.len() {
        let mut end = start + 1;
        while end < order.len() && values[order[end]] == values[order[start]] {
            end += 1;
        }
        // Positions start..end (0-based) share the average 1-based rank.
        let shared = (start + end + 1) as f64 / 2.0;
        for &index in &order[start..end] {
            ranks[index] = shared;
        }
        start = end;
    }
    ranks
}

/// Spearman's rank correlation coefficient ρ: the Pearson correlation of the
/// average ranks of the two inputs (ties receive the mean of the ranks they
/// occupy). Used to validate predicted design rankings against ground truth —
/// a DSE loop only needs the *ordering* of candidates to be right.
///
/// Degenerate inputs yield `NaN` rather than a fake score: fewer than two
/// observations, a constant input (zero rank variance leaves the
/// correlation undefined — claiming 0 would report "no monotone relation"
/// on no evidence), or any `NaN` observation (an unordered value has no
/// rank; silently ranking it last would launder a diverged prediction into
/// a confident-looking score).
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "spearman length mismatch");
    if a.len() < 2 || a.iter().chain(b).any(|value| value.is_nan()) {
        return f64::NAN;
    }
    let ranks_a = average_ranks(a);
    let ranks_b = average_ranks(b);
    let n = a.len() as f64;
    let mean = (n + 1.0) / 2.0;
    let mut covariance = 0.0f64;
    let mut variance_a = 0.0f64;
    let mut variance_b = 0.0f64;
    for (ra, rb) in ranks_a.iter().zip(&ranks_b) {
        covariance += (ra - mean) * (rb - mean);
        variance_a += (ra - mean) * (ra - mean);
        variance_b += (rb - mean) * (rb - mean);
    }
    if variance_a == 0.0 || variance_b == 0.0 {
        return f64::NAN;
    }
    covariance / (variance_a * variance_b).sqrt()
}

/// Kendall's rank correlation coefficient τ (the τ-b variant, which corrects
/// for ties): concordant minus discordant pairs over the geometric mean of
/// the tie-adjusted pair counts. O(n²) pair enumeration — ample for design
/// sweeps of a few thousand candidates.
///
/// Degenerate inputs yield `NaN`: fewer than two observations, an input
/// whose values are all tied (no orderable pairs on that side), or any
/// `NaN` observation (see [`spearman_rho`]).
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall length mismatch");
    let n = a.len();
    if n < 2 || a.iter().chain(b).any(|value| value.is_nan()) {
        return f64::NAN;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i].total_cmp(&a[j]);
            let db = b[i].total_cmp(&b[j]);
            match (da.is_eq(), db.is_eq()) {
                (true, true) => {
                    ties_a += 1;
                    ties_b += 1;
                }
                (true, false) => ties_a += 1,
                (false, true) => ties_b += 1,
                (false, false) => {
                    if da == db {
                        concordant += 1;
                    } else {
                        discordant += 1;
                    }
                }
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as i64;
    let orderable_a = pairs - ties_a;
    let orderable_b = pairs - ties_b;
    if orderable_a == 0 || orderable_b == 0 {
        return f64::NAN;
    }
    (concordant - discordant) as f64 / ((orderable_a as f64) * (orderable_b as f64)).sqrt()
}

/// Per-target normalisation of the regression labels: `log1p` followed by
/// standardisation with statistics estimated on the training set.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetNormalizer {
    mean: [f64; TargetMetric::COUNT],
    std: [f64; TargetMetric::COUNT],
}

impl TargetNormalizer {
    /// Rebuilds a normaliser from previously fitted statistics (used when
    /// reloading a persisted predictor).
    pub fn from_parts(mean: [f64; TargetMetric::COUNT], std: [f64; TargetMetric::COUNT]) -> Self {
        TargetNormalizer { mean, std }
    }

    /// Per-target mean of `log1p(target)` estimated on the training set.
    pub fn mean(&self) -> [f64; TargetMetric::COUNT] {
        self.mean
    }

    /// Per-target standard deviation of `log1p(target)`.
    pub fn std(&self) -> [f64; TargetMetric::COUNT] {
        self.std
    }

    /// Fits the normaliser on a training dataset.
    ///
    /// # Errors
    /// Returns [`Error::DatasetTooSmall`] for an empty dataset (the old
    /// behaviour silently produced mean 0 / std `1e-3` — a confident-looking
    /// normaliser fitted on nothing) and [`Error::Config`] when any target is
    /// negative (previously clamped with `max(0.0)`, silently corrupting the
    /// statistics; targets are resource counts and delays, so a negative
    /// value is upstream garbage that must not be absorbed).
    pub fn fit(train: &Dataset) -> Result<Self> {
        TargetNormalizer::fit_source(train)
    }

    /// [`TargetNormalizer::fit`] over any [`SampleSource`], streaming the
    /// target vectors in two passes (mean, then variance) so a corpus far
    /// larger than RAM fits with only per-sample memory. The accumulation
    /// order — sample-major, target-minor, in the same three passes — is
    /// identical to fitting on a materialised [`Dataset`], so the statistics
    /// are bit-identical for the same samples in the same order.
    ///
    /// # Errors
    /// As [`TargetNormalizer::fit`], plus the source's own fetch failures.
    pub fn fit_source(train: &(impl SampleSource + ?Sized)) -> Result<Self> {
        if train.is_empty() {
            return Err(Error::DatasetTooSmall(
                "cannot fit a target normalizer on an empty dataset".to_owned(),
            ));
        }
        for position in 0..train.len() {
            let sample = train.fetch(position)?;
            for (index, &target) in sample.targets.iter().enumerate() {
                if !target.is_finite() || target < 0.0 {
                    return Err(Error::Config(format!(
                        "target {} of sample `{}` is {target}; targets are resource counts and \
                         delays and must be finite and non-negative",
                        TargetMetric::ALL[index].name(),
                        sample.name
                    )));
                }
            }
        }
        let count = train.len() as f64;
        let mut mean = [0.0; TargetMetric::COUNT];
        let mut std = [0.0; TargetMetric::COUNT];
        for position in 0..train.len() {
            let sample = train.fetch(position)?;
            for (index, &target) in sample.targets.iter().enumerate() {
                mean[index] += target.ln_1p();
            }
        }
        for value in &mut mean {
            *value /= count;
        }
        for position in 0..train.len() {
            let sample = train.fetch(position)?;
            for (index, &target) in sample.targets.iter().enumerate() {
                let centred = target.ln_1p() - mean[index];
                std[index] += centred * centred;
            }
        }
        for value in &mut std {
            *value = (*value / count).sqrt().max(1e-3);
        }
        Ok(TargetNormalizer { mean, std })
    }

    /// Normalises a raw `[DSP, LUT, FF, CP]` target vector.
    pub fn normalize(&self, targets: &[f64; TargetMetric::COUNT]) -> [f32; TargetMetric::COUNT] {
        let mut out = [0.0f32; TargetMetric::COUNT];
        for (index, &target) in targets.iter().enumerate() {
            out[index] = ((target.max(0.0).ln_1p() - self.mean[index]) / self.std[index]) as f32;
        }
        out
    }

    /// Maps normalised predictions back to raw target values.
    pub fn denormalize(
        &self,
        normalized: &[f32; TargetMetric::COUNT],
    ) -> [f64; TargetMetric::COUNT] {
        let mut out = [0.0f64; TargetMetric::COUNT];
        for (index, &value) in normalized.iter().enumerate() {
            let log_value = f64::from(value) * self.std[index] + self.mean[index];
            out[index] = log_value.exp_m1().max(0.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DatasetBuilder};
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

    #[test]
    fn mape_matches_hand_computation() {
        let predictions = [110.0, 90.0, 55.0];
        let actuals = [100.0, 100.0, 50.0];
        let value = mape(&predictions, &actuals);
        assert!((value - (0.1 + 0.1 + 0.1) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_yield_nan_not_a_perfect_score() {
        assert!(mape(&[], &[]).is_nan());
        assert!(mape_with_floor(&[], &[], 1.0).is_nan());
        assert!(rmse(&[], &[]).is_nan());
        assert!(accuracy(&[], &[]).is_nan());
        assert!(f1_score(&[], &[]).is_nan());
    }

    #[test]
    fn mape_floor_prevents_division_by_zero() {
        let value = mape_with_floor(&[3.0], &[0.0], 1.0);
        assert_eq!(value, 3.0);
        assert!(mape_with_floor(&[3.0], &[0.0], 1.0).is_finite());
    }

    #[test]
    fn rmse_matches_hand_computation() {
        let value = rmse(&[1.0, 3.0], &[0.0, 0.0]);
        assert!((value - 5.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn accuracy_and_f1_on_a_small_case() {
        let scores = [0.9, 0.2, 0.7, 0.4];
        let labels = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(accuracy(&scores, &labels), 0.5);
        // precision = 1/2, recall = 1/2 -> f1 = 1/2.
        assert!((f1_score(&scores, &labels) - 0.5).abs() < 1e-9);
        assert_eq!(f1_score(&[0.1], &[1.0]), 0.0);
    }

    #[test]
    fn spearman_matches_hand_computation() {
        // Perfect agreement and perfect inversion.
        assert!((spearman_rho(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        // One swapped adjacent pair: ρ = 1 - 6·Σd²/(n(n²-1)) = 1 - 12/120.
        let rho = spearman_rho(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 2.0, 4.0, 5.0]);
        assert!((rho - 0.9).abs() < 1e-12, "got {rho}");
        // With a tie: ranks a = [1, 2.5, 2.5, 4], b = [1, 2, 3, 4] →
        // ρ = 4.5/√(4.5·5) = √0.9.
        let rho = spearman_rho(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]);
        assert!((rho - 0.9f64.sqrt()).abs() < 1e-12, "got {rho}");
        // Monotone nonlinearity is invisible to a rank metric.
        let rho = spearman_rho(&[1.0, 2.0, 3.0, 4.0], &[1.0, 8.0, 27.0, 64.0]);
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_matches_hand_computation() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[5.0, 6.0, 7.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[7.0, 6.0, 5.0]) + 1.0).abs() < 1e-12);
        // One swapped adjacent pair among n=5: 9 concordant, 1 discordant →
        // τ = 8/10.
        let tau = kendall_tau(&[1.0, 2.0, 3.0, 4.0, 5.0], &[1.0, 3.0, 2.0, 4.0, 5.0]);
        assert!((tau - 0.8).abs() < 1e-12, "got {tau}");
        // τ-b with one tied pair in a: C=5, D=0, 1 of 6 pairs tied in a →
        // τ = 5/√(5·6).
        let tau = kendall_tau(&[1.0, 2.0, 2.0, 3.0], &[1.0, 2.0, 3.0, 4.0]);
        assert!((tau - 5.0 / 30.0f64.sqrt()).abs() < 1e-12, "got {tau}");
    }

    #[test]
    fn rank_correlations_are_nan_on_empty_and_degenerate_inputs() {
        assert!(spearman_rho(&[], &[]).is_nan());
        assert!(kendall_tau(&[], &[]).is_nan());
        assert!(spearman_rho(&[1.0], &[2.0]).is_nan());
        assert!(kendall_tau(&[1.0], &[2.0]).is_nan());
        // A constant side has no orderable pairs: undefined, not 0.
        assert!(spearman_rho(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(kendall_tau(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).is_nan());
        // A NaN observation has no rank: the result is NaN, never a finite
        // score with the NaN silently ranked last.
        assert!(spearman_rho(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_nan());
        assert!(kendall_tau(&[1.0, 2.0, 3.0], &[1.0, f64::NAN, 3.0]).is_nan());
    }

    fn tiny_dataset() -> Dataset {
        DatasetBuilder::new(ProgramFamily::StraightLine)
            .count(5)
            .seed(2)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
            .build()
            .unwrap()
    }

    #[test]
    fn normalizer_refuses_degenerate_training_sets() {
        assert!(matches!(
            TargetNormalizer::fit(&Dataset::default()),
            Err(Error::DatasetTooSmall(_))
        ));
        let mut dataset = tiny_dataset();
        dataset.samples[0].targets[2] = -4.0;
        let error = TargetNormalizer::fit(&dataset).unwrap_err();
        assert!(matches!(&error, Error::Config(message) if message.contains("FF")));
        dataset.samples[0].targets[2] = f64::NAN;
        assert!(matches!(TargetNormalizer::fit(&dataset), Err(Error::Config(_))));
    }

    #[test]
    fn normalizer_round_trips_training_targets() {
        let dataset = tiny_dataset();
        let normalizer = TargetNormalizer::fit(&dataset).unwrap();
        for sample in &dataset.samples {
            let normalized = normalizer.normalize(&sample.targets);
            let recovered = normalizer.denormalize(&normalized);
            for (a, b) in sample.targets.iter().zip(&recovered) {
                assert!((a - b).abs() < 1e-2 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn normalized_training_targets_are_roughly_centred() {
        let dataset = tiny_dataset();
        let normalizer = TargetNormalizer::fit(&dataset).unwrap();
        let mut sums = [0.0f64; 4];
        for sample in &dataset.samples {
            for (index, value) in normalizer.normalize(&sample.targets).iter().enumerate() {
                sums[index] += f64::from(*value);
            }
        }
        for sum in sums {
            assert!((sum / dataset.len() as f64).abs() < 0.5);
        }
    }
}
