//! Runtime predictor construction: [`PredictorSpec`] names an (approach ×
//! backbone) combination, [`PredictorBuilder`] turns it into a trainable
//! `Box<dyn Predictor>`, and [`load_predictor`] revives a trained predictor
//! from a JSON snapshot.
//!
//! Specs parse from compact `"approach/backbone"` strings — `"hier/rgcn"`,
//! `"base/sage"`, `"rich/pna"` — so bench binaries, config files and serving
//! processes can select models without code changes. The paper's table
//! notation (`"RGCN-I"`, `"PNA-R"`, plain `"RGCN"`) is accepted too.

use std::fmt;
use std::str::FromStr;

use gnn::GnnKind;
use serde::{Deserialize, Serialize};

use crate::approach::GnnPredictor;
use crate::encode::FeatureMode;
use crate::persist::SavedPredictor;
use crate::predictor::Predictor;
use crate::train::TrainConfig;
use crate::{Error, Result};

/// The three prediction strategies of §2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproachKind {
    /// Approach 1 — off-the-shelf GNN on raw IR graphs (earliest prediction).
    OffTheShelf,
    /// Approach 2 — knowledge-rich GNN with per-node HLS resource estimates
    /// as auxiliary inputs (latest prediction, best accuracy).
    KnowledgeRich,
    /// Approach 3 — knowledge-infused hierarchical GNN: a node-level
    /// resource-type classifier feeds a graph-level regressor, so prediction
    /// stays at the earliest stage.
    Hierarchical,
}

impl ApproachKind {
    /// All approaches, in the paper's presentation order.
    pub const ALL: [ApproachKind; 3] =
        [ApproachKind::OffTheShelf, ApproachKind::KnowledgeRich, ApproachKind::Hierarchical];

    /// The auxiliary feature channel this approach feeds the regressor.
    pub fn feature_mode(self) -> FeatureMode {
        match self {
            ApproachKind::OffTheShelf => FeatureMode::Base,
            ApproachKind::KnowledgeRich => FeatureMode::ResourceValues,
            ApproachKind::Hierarchical => FeatureMode::ResourceTypes,
        }
    }

    /// Canonical config token (`"base"`, `"rich"`, `"hier"`).
    pub fn token(self) -> &'static str {
        match self {
            ApproachKind::OffTheShelf => "base",
            ApproachKind::KnowledgeRich => "rich",
            ApproachKind::Hierarchical => "hier",
        }
    }

    /// True when the approach trains the node-level classifier stage.
    pub fn uses_classifier(self) -> bool {
        self == ApproachKind::Hierarchical
    }
}

impl fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for ApproachKind {
    type Err = Error;

    /// Accepts the canonical tokens plus common aliases, case-insensitively:
    /// `base` / `ots` / `off-the-shelf`, `rich` / `knowledge-rich`,
    /// `hier` / `hierarchical` / `infused` / `knowledge-infused`.
    fn from_str(text: &str) -> Result<Self> {
        match gnn::canonical_token(text).as_str() {
            "base" | "ots" | "offtheshelf" => Ok(ApproachKind::OffTheShelf),
            "rich" | "knowledgerich" => Ok(ApproachKind::KnowledgeRich),
            "hier" | "hierarchical" | "infused" | "knowledgeinfused" => {
                Ok(ApproachKind::Hierarchical)
            }
            _ => Err(Error::Config(format!(
                "unknown approach `{text}` (expected base, rich or hier)"
            ))),
        }
    }
}

/// A fully-specified predictor: which approach, on which GNN backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PredictorSpec {
    /// The prediction strategy.
    pub approach: ApproachKind,
    /// The GNN layer family.
    pub backbone: GnnKind,
}

impl PredictorSpec {
    /// Creates a spec.
    pub fn new(approach: ApproachKind, backbone: GnnKind) -> Self {
        PredictorSpec { approach, backbone }
    }

    /// The registry of every constructible combination (3 approaches × 14
    /// backbones).
    pub fn all() -> Vec<PredictorSpec> {
        let mut specs = Vec::with_capacity(ApproachKind::ALL.len() * GnnKind::ALL.len());
        for approach in ApproachKind::ALL {
            for backbone in GnnKind::ALL {
                specs.push(PredictorSpec::new(approach, backbone));
            }
        }
        specs
    }

    /// Name in the paper's notation: backbone name plus the approach suffix
    /// (`""`, `"-R"`, `"-I"`), e.g. `"RGCN-I"`.
    pub fn name(&self) -> String {
        format!("{}{}", self.backbone.name(), self.approach.feature_mode().suffix())
    }

    /// Canonical `"approach/backbone"` identifier, e.g. `"hier/rgcn"`. The
    /// inverse of [`PredictorSpec::from_str`].
    pub fn id(&self) -> String {
        format!("{}/{}", self.approach.token(), gnn::canonical_token(self.backbone.name()))
    }

    /// Builds an untrained predictor for this spec.
    pub fn build(&self, config: &TrainConfig) -> Box<dyn Predictor> {
        Box::new(GnnPredictor::new(*self, config))
    }
}

impl fmt::Display for PredictorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

impl FromStr for PredictorSpec {
    type Err = Error;

    /// Parses `"approach/backbone"` (e.g. `"hier/rgcn"`, `"base/sage"`) or
    /// the paper's table notation (`"RGCN-I"`, `"PNA-R"`, `"GCN"`).
    fn from_str(text: &str) -> Result<Self> {
        let trimmed = text.trim();
        if let Some((approach, backbone)) = trimmed.split_once('/') {
            let approach = ApproachKind::from_str(approach)?;
            let backbone = GnnKind::from_str(backbone).map_err(Error::Config)?;
            return Ok(PredictorSpec::new(approach, backbone));
        }
        // Paper notation: an optional "-I" / "-R" suffix on the table name.
        // Backbone names themselves may contain '-' ("GCN-V"), so try the
        // suffix interpretation first and fall back to the bare name.
        for (suffix, approach) in
            [("-I", ApproachKind::Hierarchical), ("-R", ApproachKind::KnowledgeRich)]
        {
            // Case-insensitive suffix match, consistent with the rest of the
            // grammar ("rgcn-i" parses like "RGCN-I").
            let Some(split_at) = trimmed.len().checked_sub(suffix.len()) else {
                continue;
            };
            if split_at > 0
                && trimmed.is_char_boundary(split_at)
                && trimmed[split_at..].eq_ignore_ascii_case(suffix)
            {
                let stem = &trimmed[..split_at];
                if let Ok(backbone) = GnnKind::from_str(stem) {
                    return Ok(PredictorSpec::new(approach, backbone));
                }
            }
        }
        let backbone = GnnKind::from_str(trimmed).map_err(|_| {
            Error::Config(format!(
                "unknown predictor `{text}` (expected `approach/backbone` like `hier/rgcn`, \
                 or paper notation like `RGCN-I`)"
            ))
        })?;
        Ok(PredictorSpec::new(ApproachKind::OffTheShelf, backbone))
    }
}

/// Fluent construction of predictors from a spec plus a training
/// configuration.
///
/// ```
/// use hls_gnn_core::builder::PredictorBuilder;
/// use hls_gnn_core::train::TrainConfig;
///
/// let predictor = PredictorBuilder::parse("hier/rgcn")
///     .expect("spec parses")
///     .config(TrainConfig::fast())
///     .build();
/// assert_eq!(predictor.name(), "RGCN-I");
/// # use hls_gnn_core::predictor::Predictor;
/// assert!(!predictor.is_trained());
/// ```
#[derive(Debug, Clone)]
pub struct PredictorBuilder {
    spec: PredictorSpec,
    config: TrainConfig,
}

impl PredictorBuilder {
    /// Starts a builder for the given spec with the default
    /// ([`TrainConfig::standard`]) hyper-parameters.
    pub fn new(spec: PredictorSpec) -> Self {
        PredictorBuilder { spec, config: TrainConfig::default() }
    }

    /// Starts a builder from a spec string (`"hier/rgcn"`, `"RGCN-I"`, ...).
    ///
    /// # Errors
    /// Returns [`Error::Config`] for unknown approach or backbone names.
    pub fn parse(text: &str) -> Result<Self> {
        Ok(PredictorBuilder::new(text.parse()?))
    }

    /// Replaces the training configuration.
    pub fn config(mut self, config: TrainConfig) -> Self {
        self.config = config;
        self
    }

    /// The spec this builder will construct.
    pub fn spec(&self) -> PredictorSpec {
        self.spec
    }

    /// Builds the untrained predictor.
    pub fn build(self) -> Box<dyn Predictor> {
        self.spec.build(&self.config)
    }

    /// Builds and immediately trains the predictor.
    ///
    /// # Errors
    /// Propagates training errors.
    pub fn train(
        self,
        train: &crate::dataset::Dataset,
        validation: &crate::dataset::Dataset,
    ) -> Result<Box<dyn Predictor>> {
        let config = self.config.clone();
        let mut predictor = self.build();
        predictor.fit(train, validation, &config)?;
        Ok(predictor)
    }
}

/// Revives a predictor from a JSON snapshot produced by
/// [`Predictor::save_json`]. The reloaded predictor's outputs match the
/// original exactly. Version-less legacy snapshots load as format version 1;
/// snapshots from a newer format version are refused.
///
/// # Errors
/// Returns [`Error::Parse`] on truncated/malformed JSON or an unknown future
/// snapshot version (never panics on bad bytes), and [`Error::Config`] on an
/// architecture mismatch between the snapshot's tensors and its recorded
/// hyper-parameters.
pub fn load_predictor(json: &str) -> Result<Box<dyn Predictor>> {
    let saved = SavedPredictor::from_json(json)?;
    Ok(Box::new(GnnPredictor::from_saved(&saved)?))
}

/// [`load_predictor`] from any reader (a snapshot file, a socket), buffering
/// the text once internally — callers no longer slurp the file into their
/// own `String` just to pass a `&str` in.
///
/// For files that may be in either the JSON or the binary container format,
/// use `hls_gnn_store::load_predictor_auto`, which sniffs the magic bytes.
///
/// # Errors
/// As [`load_predictor`], plus [`Error::Parse`] on I/O failure.
pub fn load_predictor_from_reader(reader: impl std::io::Read) -> Result<Box<dyn Predictor>> {
    let saved = SavedPredictor::from_reader(reader)?;
    Ok(Box::new(GnnPredictor::from_saved(&saved)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ids_round_trip_for_every_registry_entry() {
        let specs = PredictorSpec::all();
        assert_eq!(specs.len(), 3 * 14);
        for spec in specs {
            let reparsed: PredictorSpec = spec.id().parse().expect("id parses back");
            assert_eq!(reparsed, spec, "{} did not round trip", spec.id());
            let from_name: PredictorSpec = spec.name().parse().expect("paper name parses back");
            assert_eq!(from_name, spec, "{} did not round trip", spec.name());
        }
    }

    #[test]
    fn spec_parsing_accepts_aliases() {
        let spec: PredictorSpec = "hier/rgcn".parse().unwrap();
        assert_eq!(spec.approach, ApproachKind::Hierarchical);
        assert_eq!(spec.backbone, GnnKind::Rgcn);
        assert_eq!(spec.name(), "RGCN-I");

        let spec: PredictorSpec = "off-the-shelf/GraphSage".parse().unwrap();
        assert_eq!(spec.approach, ApproachKind::OffTheShelf);
        assert_eq!(spec.backbone, GnnKind::GraphSage);

        let spec: PredictorSpec = "knowledge-rich/pna".parse().unwrap();
        assert_eq!(spec.approach, ApproachKind::KnowledgeRich);
        assert_eq!(spec.backbone, GnnKind::Pna);

        let spec: PredictorSpec = "PNA-R".parse().unwrap();
        assert_eq!(spec, PredictorSpec::new(ApproachKind::KnowledgeRich, GnnKind::Pna));

        // "GCN-V" must parse as the virtual-node backbone, not as a suffix.
        let spec: PredictorSpec = "GCN-V".parse().unwrap();
        assert_eq!(spec, PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::GcnVirtual));

        // Paper notation is case-insensitive like the rest of the grammar.
        let spec: PredictorSpec = "rgcn-i".parse().unwrap();
        assert_eq!(spec, PredictorSpec::new(ApproachKind::Hierarchical, GnnKind::Rgcn));
        let spec: PredictorSpec = "pna-r".parse().unwrap();
        assert_eq!(spec, PredictorSpec::new(ApproachKind::KnowledgeRich, GnnKind::Pna));
        let spec: PredictorSpec = "gcn-v".parse().unwrap();
        assert_eq!(spec, PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::GcnVirtual));
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        for bad in
            ["", "hier/", "/rgcn", "warp/rgcn", "hier/transformer", "frobnicate", "hier/rgcn/extra"]
        {
            assert!(bad.parse::<PredictorSpec>().is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn approach_tokens_round_trip() {
        for approach in ApproachKind::ALL {
            assert_eq!(approach.token().parse::<ApproachKind>().unwrap(), approach);
        }
        assert!("".parse::<ApproachKind>().is_err());
        assert!("midway".parse::<ApproachKind>().is_err());
    }
}
