//! Benchmark export: serialise datasets to a portable JSON format.
//!
//! The first contribution of the paper is the *released benchmark* — tens of
//! thousands of programs with IR graphs, per-node features and implementation
//! ground truth. This module provides the equivalent release format for this
//! reproduction: every sample is exported with its graph structure, Table-1
//! node features, auxiliary per-node HLS estimates, node-level resource-type
//! labels and graph-level targets, so external tools (or Python notebooks)
//! can consume the corpus without running the Rust flow.

use gnn::GraphData;
use hls_ir::features::NodeFeatures;
use hls_ir::graph::GraphKind;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, GraphSample};
use crate::Error;

/// One exported node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedNode {
    /// Node-type code (see `hls_ir::graph::NodeKind::code`).
    pub node_type: usize,
    /// Raw bitwidth in bits.
    pub bitwidth: u16,
    /// Opcode-category code.
    pub opcode_category: usize,
    /// Opcode code.
    pub opcode: usize,
    /// 1 when the node starts a data path.
    pub is_start_of_path: u8,
    /// Cluster group (basic-block index or -1).
    pub cluster_group: i32,
    /// Per-node `[DSP, LUT, FF]` estimate from the HLS intermediate results.
    pub hls_resources: [f32; 3],
    /// Ground-truth resource-type labels `[DSP, LUT, FF]` (0/1).
    pub resource_types: [f32; 3],
}

/// One exported edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedEdge {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Relation id (edge type × back-edge flag × direction).
    pub relation: usize,
}

/// One exported program/graph with its labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedGraph {
    /// Program name.
    pub name: String,
    /// `"dfg"` or `"cdfg"`.
    pub kind: String,
    /// Nodes in index order.
    pub nodes: Vec<ExportedNode>,
    /// Directed edges (already including mirrored edges).
    pub edges: Vec<ExportedEdge>,
    /// Graph-level ground truth `[DSP, LUT, FF, CP]`.
    pub targets: [f64; 4],
    /// The HLS report's estimate of the same metrics.
    pub hls_estimate: [f64; 4],
}

impl From<&GraphSample> for ExportedGraph {
    fn from(sample: &GraphSample) -> Self {
        let nodes = (0..sample.num_nodes())
            .map(|index| {
                let feature = &sample.node_features[index];
                ExportedNode {
                    node_type: feature.node_type,
                    bitwidth: feature.bitwidth,
                    opcode_category: feature.opcode_category,
                    opcode: feature.opcode,
                    is_start_of_path: feature.is_start_of_path,
                    cluster_group: feature.cluster_group,
                    hls_resources: sample.node_aux_resources[index],
                    resource_types: sample.node_resource_types[index],
                }
            })
            .collect();
        let edges = (0..sample.structure.edge_count())
            .map(|edge| ExportedEdge {
                src: sample.structure.edge_src[edge],
                dst: sample.structure.edge_dst[edge],
                relation: sample.structure.edge_relation[edge],
            })
            .collect();
        ExportedGraph {
            name: sample.name.clone(),
            kind: sample.kind.name().to_owned(),
            nodes,
            edges,
            targets: sample.targets,
            hls_estimate: sample.hls_estimate,
        }
    }
}

impl ExportedGraph {
    /// Rebuilds an in-memory [`GraphSample`] from the release format — the
    /// inverse of `ExportedGraph::from(&sample)`. This is how the serving
    /// subsystem accepts graphs over the wire, so every structural invariant
    /// is *checked* and reported as a typed error: the constructors behind
    /// [`GraphSample`] panic on malformed input, which is correct for
    /// internally-built graphs but unacceptable for bytes from a socket.
    ///
    /// # Errors
    /// Returns [`Error::Parse`] when the graph has no nodes, an edge endpoint
    /// or relation id is out of range, a categorical feature exceeds its
    /// embedding vocabulary, or the kind string is unknown.
    pub fn to_sample(&self) -> crate::Result<GraphSample> {
        let kind = match self.kind.as_str() {
            "dfg" => GraphKind::Dfg,
            "cdfg" => GraphKind::Cdfg,
            other => {
                return Err(Error::Parse(format!(
                    "unknown graph kind `{other}` (expected `dfg` or `cdfg`)"
                )))
            }
        };
        let num_nodes = self.nodes.len();
        if num_nodes == 0 {
            return Err(Error::Parse("an exported graph needs at least one node".to_owned()));
        }
        for (index, node) in self.nodes.iter().enumerate() {
            let vocab_checks = [
                ("node_type", node.node_type, NodeFeatures::NODE_TYPE_VOCAB),
                ("opcode_category", node.opcode_category, NodeFeatures::OPCODE_CATEGORY_VOCAB),
                ("opcode", node.opcode, NodeFeatures::OPCODE_VOCAB),
            ];
            for (field, value, vocab) in vocab_checks {
                if value >= vocab {
                    return Err(Error::Parse(format!(
                        "node {index}: {field} {value} exceeds the vocabulary ({vocab})"
                    )));
                }
            }
            if node.is_start_of_path > 1 {
                return Err(Error::Parse(format!(
                    "node {index}: is_start_of_path must be 0 or 1, got {}",
                    node.is_start_of_path
                )));
            }
        }
        let mut edge_src = Vec::with_capacity(self.edges.len());
        let mut edge_dst = Vec::with_capacity(self.edges.len());
        let mut edge_relation = Vec::with_capacity(self.edges.len());
        for (index, edge) in self.edges.iter().enumerate() {
            if edge.src >= num_nodes || edge.dst >= num_nodes {
                return Err(Error::Parse(format!(
                    "edge {index}: endpoint {} -> {} out of range for {num_nodes} nodes",
                    edge.src, edge.dst
                )));
            }
            if edge.relation >= GraphSample::NUM_RELATIONS {
                return Err(Error::Parse(format!(
                    "edge {index}: relation {} exceeds the vocabulary ({})",
                    edge.relation,
                    GraphSample::NUM_RELATIONS
                )));
            }
            edge_src.push(edge.src);
            edge_dst.push(edge.dst);
            edge_relation.push(edge.relation);
        }
        // All indices were validated above, so the panicking constructor is
        // safe to call. Exported edges already include the mirrored copies,
        // so no `with_reverse_edges` here.
        let structure = GraphData::new(
            num_nodes,
            edge_src,
            edge_dst,
            edge_relation,
            GraphSample::NUM_RELATIONS,
        );
        let node_features = self
            .nodes
            .iter()
            .map(|node| NodeFeatures {
                node_type: node.node_type,
                bitwidth: node.bitwidth,
                opcode_category: node.opcode_category,
                opcode: node.opcode,
                is_start_of_path: node.is_start_of_path,
                cluster_group: node.cluster_group,
            })
            .collect();
        Ok(GraphSample {
            name: self.name.clone(),
            kind,
            structure,
            node_features,
            node_aux_resources: self.nodes.iter().map(|n| n.hls_resources).collect(),
            node_resource_types: self.nodes.iter().map(|n| n.resource_types).collect(),
            // The release format does not carry the analytic-bound features;
            // they are derived quantities, recomputable by re-running the
            // static analyser on the program. Rebuilt samples fall back to
            // zeros (the `HLSGNN_FEATURES=analytic` columns become inert).
            node_analytic: vec![[0.0; 3]; num_nodes],
            targets: self.targets,
            hls_estimate: self.hls_estimate,
        })
    }
}

/// A whole exported dataset plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedDataset {
    /// Free-form description of how the corpus was generated.
    pub description: String,
    /// Number of graphs.
    pub graph_count: usize,
    /// Total number of nodes across all graphs.
    pub node_count: usize,
    /// The graphs.
    pub graphs: Vec<ExportedGraph>,
}

impl ExportedDataset {
    /// Converts an in-memory dataset into the release format.
    pub fn from_dataset(dataset: &Dataset, description: impl Into<String>) -> Self {
        let graphs: Vec<ExportedGraph> = dataset.samples.iter().map(ExportedGraph::from).collect();
        ExportedDataset {
            description: description.into(),
            graph_count: graphs.len(),
            node_count: dataset.total_nodes(),
            graphs,
        }
    }

    /// Serialises the dataset to pretty-printed JSON.
    ///
    /// # Errors
    /// Returns a [`crate::Error::Config`] if serialisation fails (which only
    /// happens for non-finite floats, which the flow never produces).
    pub fn to_json(&self) -> crate::Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| crate::Error::Config(format!("failed to serialise dataset: {e}")))
    }

    /// Parses a dataset from JSON.
    ///
    /// # Errors
    /// Returns a [`crate::Error::Config`] on malformed input.
    pub fn from_json(json: &str) -> crate::Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| crate::Error::Config(format!("failed to parse dataset: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

    fn tiny_dataset() -> Dataset {
        DatasetBuilder::new(ProgramFamily::Control)
            .count(3)
            .seed(4)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::Control))
            .build()
            .unwrap()
    }

    #[test]
    fn export_preserves_counts_and_labels() {
        let dataset = tiny_dataset();
        let exported = ExportedDataset::from_dataset(&dataset, "unit-test corpus");
        assert_eq!(exported.graph_count, dataset.len());
        assert_eq!(exported.node_count, dataset.total_nodes());
        for (graph, sample) in exported.graphs.iter().zip(&dataset.samples) {
            assert_eq!(graph.nodes.len(), sample.num_nodes());
            assert_eq!(graph.edges.len(), sample.structure.edge_count());
            assert_eq!(graph.targets, sample.targets);
            assert_eq!(graph.kind, "cdfg");
        }
    }

    #[test]
    fn export_round_trips_through_json() {
        let dataset = tiny_dataset();
        let exported = ExportedDataset::from_dataset(&dataset, "round trip");
        let json = exported.to_json().unwrap();
        let parsed = ExportedDataset::from_json(&json).unwrap();
        assert!(json.contains("\"cdfg\""));
        assert_eq!(parsed.description, exported.description);
        assert_eq!(parsed.graph_count, exported.graph_count);
        assert_eq!(parsed.node_count, exported.node_count);
        for (parsed_graph, original) in parsed.graphs.iter().zip(&exported.graphs) {
            assert_eq!(parsed_graph.name, original.name);
            assert_eq!(parsed_graph.nodes.len(), original.nodes.len());
            assert_eq!(parsed_graph.edges, original.edges);
            // Floating-point labels survive the text round trip to within
            // printing precision.
            for (a, b) in parsed_graph.targets.iter().zip(&original.targets) {
                assert!((a - b).abs() < 1e-6 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(ExportedDataset::from_json("{not json").is_err());
    }

    #[test]
    fn exported_graphs_rebuild_into_equivalent_samples() {
        let dataset = tiny_dataset();
        for sample in &dataset.samples {
            let rebuilt = ExportedGraph::from(sample).to_sample().expect("export round trips");
            assert_eq!(rebuilt.name, sample.name);
            assert_eq!(rebuilt.kind, sample.kind);
            assert_eq!(rebuilt.structure, sample.structure);
            assert_eq!(rebuilt.node_features, sample.node_features);
            assert_eq!(rebuilt.node_aux_resources, sample.node_aux_resources);
            assert_eq!(rebuilt.node_resource_types, sample.node_resource_types);
            assert_eq!(rebuilt.targets, sample.targets);
            assert_eq!(rebuilt.hls_estimate, sample.hls_estimate);
            assert_eq!(rebuilt.structure.content_hash(), sample.structure.content_hash());
        }
    }

    #[test]
    fn malformed_exported_graphs_are_rejected_not_panicked_on() {
        let dataset = tiny_dataset();
        let good = ExportedGraph::from(&dataset.samples[0]);

        let mut bad_kind = good.clone();
        bad_kind.kind = "cfg".to_owned();
        assert!(matches!(bad_kind.to_sample(), Err(crate::Error::Parse(_))));

        let mut empty = good.clone();
        empty.nodes.clear();
        empty.edges.clear();
        assert!(matches!(empty.to_sample(), Err(crate::Error::Parse(_))));

        let mut dangling_edge = good.clone();
        dangling_edge.edges[0].dst = good.nodes.len() + 7;
        assert!(matches!(dangling_edge.to_sample(), Err(crate::Error::Parse(_))));

        let mut bad_relation = good.clone();
        bad_relation.edges[0].relation = crate::dataset::GraphSample::NUM_RELATIONS;
        assert!(matches!(bad_relation.to_sample(), Err(crate::Error::Parse(_))));

        let mut bad_vocab = good.clone();
        bad_vocab.nodes[0].opcode = usize::MAX;
        assert!(matches!(bad_vocab.to_sample(), Err(crate::Error::Parse(_))));

        let mut bad_flag = good;
        bad_flag.nodes[0].is_start_of_path = 2;
        assert!(matches!(bad_flag.to_sample(), Err(crate::Error::Parse(_))));
    }
}
