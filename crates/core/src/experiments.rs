//! The evaluation harness: one function per table / figure of the paper.
//!
//! | Paper artefact | Function | Bench binary |
//! |---|---|---|
//! | Table 2 (off-the-shelf MAPE, 14 models, DFG & CDFG) | [`run_table2`] | `table2` |
//! | Table 3 (node-level classification accuracy) | [`run_table3`] | `table3` |
//! | Table 4 (three approaches with RGCN/PNA) | [`run_table4`] | `table4` |
//! | Table 5 (generalisation to real applications vs HLS) | [`run_table5`] | `table5` |
//! | §1 / Fig. 1 timeliness claim ("up to 40× faster than HLS") | [`run_speedup`] | `speedup` |
//! | Design-choice ablations (pooling, relations, hierarchy) | [`run_ablation`] | `ablation` |
//! | Analytic-bound feature ablation (`HLSGNN_FEATURES=analytic`) | [`run_analytic_ablation`] | `ablation` |
//!
//! Every run is parameterised by an [`ExperimentConfig`]; the scale can be
//! selected through the `HLSGNN_SCALE` environment variable (`fast`,
//! `standard`, `paper`), and the worker count of the parallel runtime through
//! `HLSGNN_WORKERS` (see [`crate::runtime::ParallelConfig`]). Every sweep
//! trains its approach × backbone combinations on thread-confined workers and
//! produces bit-identical tables for any worker count.

use std::fmt;
use std::time::Instant;

use gnn::GnnKind;
use hls_progen::synthetic::ProgramFamily;
use hls_sim::{run_flow, FpgaDevice};
use serde::{Deserialize, Serialize};

use crate::approach::{hls_baseline_mape, GnnPredictor};
use crate::builder::{ApproachKind, PredictorSpec};
use crate::dataset::{Dataset, DatasetBuilder, Split};
use crate::encode::FeatureMode;
use crate::metrics::TargetNormalizer;
use crate::model::{GraphRegressor, NodeClassifierModel};
use crate::predictor::Predictor;
use crate::runtime::{self, ParallelConfig};
use crate::task::TargetMetric;
use crate::train::{
    evaluate_node_classifier, evaluate_regressor, train_node_classifier, train_regressor,
    TrainConfig,
};
use crate::Result;

/// How big the corpora and models are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Minutes on a laptop CPU: small corpora, small models.
    Fast,
    /// The default for the bench binaries.
    Standard,
    /// The paper-scale setting (tens of thousands of programs, hidden 300).
    Paper,
}

impl ExperimentScale {
    /// Values accepted by `HLSGNN_SCALE`, for error messages and docs.
    pub const ACCEPTED_VALUES: &'static str = "fast, standard (alias: default), paper";

    /// Reads the scale from `HLSGNN_SCALE` (`fast` / `standard` / `paper`),
    /// defaulting to [`ExperimentScale::Fast`] when the variable is unset or
    /// empty. An unrecognised value also falls back to `Fast`, but emits a
    /// warning on stderr instead of silently masking the typo.
    pub fn from_env() -> Self {
        let raw = std::env::var("HLSGNN_SCALE").unwrap_or_default();
        let raw = raw.trim();
        match raw.to_lowercase().as_str() {
            "" | "fast" => ExperimentScale::Fast,
            "paper" => ExperimentScale::Paper,
            "standard" | "default" => ExperimentScale::Standard,
            _ => {
                eprintln!(
                    "warning: unrecognised HLSGNN_SCALE value `{raw}`; falling back to `fast` \
                     (accepted values: {})",
                    Self::ACCEPTED_VALUES
                );
                ExperimentScale::Fast
            }
        }
    }
}

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Scale label recorded in the reports.
    pub scale: ExperimentScale,
    /// Number of synthetic straight-line programs (the DFG corpus).
    pub dfg_programs: usize,
    /// Number of synthetic control-flow programs (the CDFG corpus).
    pub cdfg_programs: usize,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Corpus generation / split seed.
    pub seed: u64,
    /// GNN models included in the Table-2 sweep (all 14 by default).
    pub table2_models: Vec<GnnKind>,
    /// Target device.
    pub device: FpgaDevice,
    /// Worker configuration for the parallel runtime (every preset reads
    /// `HLSGNN_WORKERS`; tables are bit-identical for any worker count).
    pub parallel: ParallelConfig,
}

impl ExperimentConfig {
    /// Fast configuration (CI, smoke tests).
    pub fn fast() -> Self {
        let mut train = TrainConfig::fast();
        train.epochs = 6;
        ExperimentConfig {
            scale: ExperimentScale::Fast,
            dfg_programs: 64,
            cdfg_programs: 64,
            train,
            seed: 1,
            table2_models: GnnKind::ALL.to_vec(),
            device: FpgaDevice::default(),
            parallel: ParallelConfig::from_env(),
        }
    }

    /// Standard configuration used by the bench binaries.
    pub fn standard() -> Self {
        ExperimentConfig {
            scale: ExperimentScale::Standard,
            dfg_programs: 200,
            cdfg_programs: 200,
            train: TrainConfig::standard(),
            seed: 1,
            table2_models: GnnKind::ALL.to_vec(),
            device: FpgaDevice::default(),
            parallel: ParallelConfig::from_env(),
        }
    }

    /// Paper-scale configuration (§5.1): 19k/18k programs, hidden 300, 100
    /// epochs. Provided for completeness; expect very long runtimes on CPU.
    pub fn paper() -> Self {
        ExperimentConfig {
            scale: ExperimentScale::Paper,
            dfg_programs: 19_120,
            cdfg_programs: 18_570,
            train: TrainConfig::paper(),
            seed: 1,
            table2_models: GnnKind::ALL.to_vec(),
            device: FpgaDevice::default(),
            parallel: ParallelConfig::from_env(),
        }
    }

    /// Builds the configuration selected by `HLSGNN_SCALE`.
    pub fn from_env() -> Self {
        match ExperimentScale::from_env() {
            ExperimentScale::Fast => Self::fast(),
            ExperimentScale::Standard => Self::standard(),
            ExperimentScale::Paper => Self::paper(),
        }
    }

    /// Restricts the Table-2 sweep to a subset of models.
    pub fn with_models(mut self, models: Vec<GnnKind>) -> Self {
        self.table2_models = models;
        self
    }

    /// Overrides the worker configuration of the parallel runtime.
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    fn build_corpus(&self, family: ProgramFamily, count: usize) -> Result<Split> {
        let dataset = DatasetBuilder::new(family)
            .count(count)
            .seed(self.seed)
            .device(self.device.clone())
            .build()?;
        Ok(dataset.split(0.8, 0.1, self.seed.wrapping_add(7)))
    }
}

fn format_mape_row(name: &str, values: &[f64]) -> String {
    let cells: Vec<String> = values.iter().map(|v| format!("{:>8.2}%", v * 100.0)).collect();
    format!("{name:<10} {}", cells.join(" "))
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One row of Table 2: per-target MAPE of an off-the-shelf model on the DFG
/// and CDFG test sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Model name.
    pub model: String,
    /// `[DSP, LUT, FF, CP]` MAPE on the DFG test set.
    pub dfg: [f64; 4],
    /// `[DSP, LUT, FF, CP]` MAPE on the CDFG test set.
    pub cdfg: [f64; 4],
}

/// Table 2 of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    /// One row per screened GNN model.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Mean MAPE (over the four targets) per dataset — used for the
    /// DFG-vs-CDFG difficulty analysis of §5.2.
    pub fn dataset_means(&self) -> (f64, f64) {
        let count = (self.rows.len() * 4).max(1) as f64;
        let dfg: f64 = self.rows.iter().flat_map(|r| r.dfg.iter()).sum::<f64>() / count;
        let cdfg: f64 = self.rows.iter().flat_map(|r| r.cdfg.iter()).sum::<f64>() / count;
        (dfg, cdfg)
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: MAPE of graph-level regression (off-the-shelf approach)")?;
        writeln!(
            f,
            "{:<10} {:>36} | {:>36}",
            "model", "DFG  (DSP/LUT/FF/CP)", "CDFG (DSP/LUT/FF/CP)"
        )?;
        for row in &self.rows {
            let dfg: Vec<String> = row.dfg.iter().map(|v| format!("{:>7.2}%", v * 100.0)).collect();
            let cdfg: Vec<String> =
                row.cdfg.iter().map(|v| format!("{:>7.2}%", v * 100.0)).collect();
            writeln!(f, "{:<10} {} | {}", row.model, dfg.join(" "), cdfg.join(" "))?;
        }
        let (dfg_mean, cdfg_mean) = self.dataset_means();
        writeln!(f, "mean MAPE: DFG {:.2}%  CDFG {:.2}%", dfg_mean * 100.0, cdfg_mean * 100.0)
    }
}

/// Runs the Table-2 sweep: every configured model, trained on the DFG corpus
/// and on the CDFG corpus with the off-the-shelf approach. The models train
/// in parallel on `config.parallel` workers, one thread-confined model pair
/// per job; the rows come back in model order and are bit-identical for any
/// worker count.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_table2(config: &ExperimentConfig) -> Result<Table2> {
    let dfg = config.build_corpus(ProgramFamily::StraightLine, config.dfg_programs)?;
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs)?;
    let rows = runtime::try_run_jobs(&config.parallel, config.table2_models.len(), |index| {
        let kind = config.table2_models[index];
        let spec = PredictorSpec::new(ApproachKind::OffTheShelf, kind);
        let mut dfg_model = spec.build(&config.train);
        dfg_model.fit(&dfg.train, &dfg.validation, &config.train)?;
        let dfg_mape = dfg_model.evaluate(&dfg.test);

        let mut cdfg_model = spec.build(&config.train);
        cdfg_model.fit(&cdfg.train, &cdfg.validation, &config.train)?;
        let cdfg_mape = cdfg_model.evaluate(&cdfg.test);

        Ok(Table2Row { model: kind.name().to_owned(), dfg: dfg_mape, cdfg: cdfg_mape })
    })?;
    Ok(Table2 { rows })
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

/// One row of Table 3: node-level classification accuracy of one backbone on
/// DFGs, CDFGs and the real-case applications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// `[DSP, LUT, FF]` accuracy on the DFG test set.
    pub dfg: [f64; 3],
    /// `[DSP, LUT, FF]` accuracy on the CDFG test set.
    pub cdfg: [f64; 3],
    /// `[DSP, LUT, FF]` accuracy on the real-world kernels.
    pub real: [f64; 3],
}

/// Table 3 of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    /// One row per backbone (GCN, SAGE, GIN, RGCN in the paper).
    pub rows: Vec<Table3Row>,
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 3: node-level resource-type classification accuracy")?;
        writeln!(
            f,
            "{:<10} {:>27} | {:>27} | {:>27}",
            "model", "DFG (DSP/LUT/FF)", "CDFG (DSP/LUT/FF)", "Real (DSP/LUT/FF)"
        )?;
        for row in &self.rows {
            let fmt3 = |values: &[f64; 3]| {
                values.iter().map(|v| format!("{:>8.2}%", v * 100.0)).collect::<Vec<_>>().join(" ")
            };
            writeln!(
                f,
                "{:<10} {} | {} | {}",
                row.model,
                fmt3(&row.dfg),
                fmt3(&row.cdfg),
                fmt3(&row.real)
            )?;
        }
        Ok(())
    }
}

/// The four backbones Table 3 evaluates.
pub const TABLE3_MODELS: [GnnKind; 4] =
    [GnnKind::Gcn, GnnKind::GraphSage, GnnKind::Gin, GnnKind::Rgcn];

/// Runs the Table-3 sweep: node classifiers on DFG, CDFG and real-world sets,
/// one backbone per parallel worker.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_table3(config: &ExperimentConfig) -> Result<Table3> {
    let dfg = config.build_corpus(ProgramFamily::StraightLine, config.dfg_programs)?;
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs)?;
    let real = Dataset::real_world(&config.device)?;
    let rows = runtime::run_jobs(&config.parallel, TABLE3_MODELS.len(), |index| {
        let kind = TABLE3_MODELS[index];
        // DFG-trained classifier, evaluated on the DFG test split.
        let dfg_model = NodeClassifierModel::new(kind, &config.train);
        train_node_classifier(&dfg_model, &dfg.train, &config.train);
        let dfg_accuracy = evaluate_node_classifier(&dfg_model, &dfg.test);
        // CDFG-trained classifier, evaluated on the CDFG test split and reused
        // for the real-case generalisation column (as in the paper, real-world
        // programs are never trained on).
        let cdfg_model = NodeClassifierModel::new(kind, &config.train);
        train_node_classifier(&cdfg_model, &cdfg.train, &config.train);
        let cdfg_accuracy = evaluate_node_classifier(&cdfg_model, &cdfg.test);
        let real_accuracy = evaluate_node_classifier(&cdfg_model, &real);
        Table3Row {
            model: kind.name().to_owned(),
            dfg: dfg_accuracy,
            cdfg: cdfg_accuracy,
            real: real_accuracy,
        }
    });
    Ok(Table3 { rows })
}

// ---------------------------------------------------------------------------
// Tables 4 and 5
// ---------------------------------------------------------------------------

/// One row of Table 4: per-target MAPE of one (backbone, approach) pair on the
/// DFG and CDFG test sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Predictor name (`RGCN`, `RGCN-I`, `RGCN-R`, `PNA`, ...).
    pub predictor: String,
    /// `[DSP, LUT, FF, CP]` MAPE on the DFG test set.
    pub dfg: [f64; 4],
    /// `[DSP, LUT, FF, CP]` MAPE on the CDFG test set.
    pub cdfg: [f64; 4],
}

/// Table 4 of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    /// Rows in the paper's order (backbone × {base, -I, -R}).
    pub rows: Vec<Table4Row>,
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: MAPE of the three approaches (RGCN / PNA backbones)")?;
        writeln!(
            f,
            "{:<10} {:>36} | {:>36}",
            "predictor", "DFG  (DSP/LUT/FF/CP)", "CDFG (DSP/LUT/FF/CP)"
        )?;
        for row in &self.rows {
            let dfg: Vec<String> = row.dfg.iter().map(|v| format!("{:>7.2}%", v * 100.0)).collect();
            let cdfg: Vec<String> =
                row.cdfg.iter().map(|v| format!("{:>7.2}%", v * 100.0)).collect();
            writeln!(f, "{:<10} {} | {}", row.predictor, dfg.join(" "), cdfg.join(" "))?;
        }
        Ok(())
    }
}

/// The two backbones carried into Tables 4 and 5.
pub const TABLE4_BACKBONES: [GnnKind; 2] = [GnnKind::Rgcn, GnnKind::Pna];

/// The Table-4/5 row order per backbone: base, then knowledge-infused, then
/// knowledge-rich.
const TABLE4_APPROACHES: [ApproachKind; 3] =
    [ApproachKind::OffTheShelf, ApproachKind::Hierarchical, ApproachKind::KnowledgeRich];

/// The Table-4/5 registry combos in row order: backbone-major, approaches in
/// the paper's presentation order. Each combo is one parallel training job.
fn table45_combos() -> Vec<PredictorSpec> {
    let mut combos = Vec::with_capacity(TABLE4_BACKBONES.len() * TABLE4_APPROACHES.len());
    for backbone in TABLE4_BACKBONES {
        for approach in TABLE4_APPROACHES {
            combos.push(PredictorSpec::new(approach, backbone));
        }
    }
    combos
}

/// Runs the Table-4 comparison of the three approaches on synthetic corpora,
/// one (backbone × approach) combo per parallel worker.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_table4(config: &ExperimentConfig) -> Result<Table4> {
    let dfg = config.build_corpus(ProgramFamily::StraightLine, config.dfg_programs)?;
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs)?;
    let combos = table45_combos();
    let rows = runtime::try_run_jobs(&config.parallel, combos.len(), |index| {
        let spec = combos[index];
        let mut dfg_model = spec.build(&config.train);
        dfg_model.fit(&dfg.train, &dfg.validation, &config.train)?;
        let mut cdfg_model = spec.build(&config.train);
        cdfg_model.fit(&cdfg.train, &cdfg.validation, &config.train)?;
        Ok(Table4Row {
            predictor: dfg_model.name(),
            dfg: dfg_model.evaluate(&dfg.test),
            cdfg: cdfg_model.evaluate(&cdfg.test),
        })
    })?;
    Ok(Table4 { rows })
}

/// One column of Table 5: per-target MAPE of one predictor (or the HLS report)
/// on the real-case applications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Column {
    /// Predictor name (`HLS`, `RGCN`, `RGCN-I`, ...).
    pub predictor: String,
    /// `[DSP, LUT, FF, CP]` MAPE on the real-world kernel suite.
    pub mape: [f64; 4],
}

/// Table 5 of the paper (generalisation to unseen real applications).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    /// The HLS baseline followed by the six GNN predictors.
    pub columns: Vec<Table5Column>,
}

impl Table5 {
    /// Improvement factor of a predictor over the HLS baseline for one target
    /// (the "outperforms HLS by up to 40×" statement of the paper).
    pub fn improvement_over_hls(&self, predictor: &str, target: TargetMetric) -> Option<f64> {
        let hls = self.columns.iter().find(|c| c.predictor == "HLS")?;
        let column = self.columns.iter().find(|c| c.predictor == predictor)?;
        let index = target.index();
        if column.mape[index] <= 0.0 {
            return None;
        }
        Some(hls.mape[index] / column.mape[index])
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 5: testing MAPE on real-case applications")?;
        write!(f, "{:<6}", "")?;
        for column in &self.columns {
            write!(f, "{:>10}", column.predictor)?;
        }
        writeln!(f)?;
        for target in TargetMetric::ALL {
            write!(f, "{:<6}", target.name())?;
            for column in &self.columns {
                write!(f, "{:>9.2}%", column.mape[target.index()] * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Runs the Table-5 generalisation study: train on the synthetic CDFG corpus,
/// evaluate on the real-world kernels, compare against the HLS report. The
/// six GNN columns train one combo per parallel worker.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_table5(config: &ExperimentConfig) -> Result<Table5> {
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs)?;
    let real = Dataset::real_world(&config.device)?;
    let combos = table45_combos();
    let mut columns =
        vec![Table5Column { predictor: "HLS".to_owned(), mape: hls_baseline_mape(&real) }];
    columns.extend(runtime::try_run_jobs(&config.parallel, combos.len(), |index| {
        let mut predictor = combos[index].build(&config.train);
        predictor.fit(&cdfg.train, &cdfg.validation, &config.train)?;
        Ok(Table5Column { predictor: predictor.name(), mape: predictor.evaluate(&real) })
    })?);
    Ok(Table5 { columns })
}

// ---------------------------------------------------------------------------
// Timeliness (speed-up) figure
// ---------------------------------------------------------------------------

/// Reference wall-clock of a real Vitis HLS synthesis + implementation run on
/// kernels of this size, in seconds. The paper reports "minutes to hours"; we
/// use a conservative five minutes. This calibration is needed because the
/// `hls-sim` substrate is itself a micro-second-scale simulator, unlike the
/// real tool it stands in for (see DESIGN.md and EXPERIMENTS.md).
pub const REFERENCE_VITIS_SECONDS: f64 = 300.0;

/// Wall-clock comparison for one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Kernel name.
    pub kernel: String,
    /// Time of the full (simulated) HLS + implementation flow, in microseconds.
    pub hls_flow_us: f64,
    /// Time of one GNN prediction (graph already extracted), in microseconds.
    pub gnn_inference_us: f64,
    /// `hls_flow_us / gnn_inference_us` — the raw ratio against the simulator.
    pub speedup: f64,
    /// `REFERENCE_VITIS_SECONDS / gnn_inference` — the ratio against a real
    /// HLS + implementation run, which is what the paper's claim refers to.
    pub calibrated_speedup: f64,
}

/// The timeliness comparison behind the paper's "up to 40× faster" claim.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// One row per evaluated kernel.
    pub rows: Vec<SpeedupRow>,
}

impl SpeedupReport {
    /// Geometric-mean raw speed-up across kernels.
    pub fn geometric_mean(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.speedup.max(1e-9).ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }

    /// Maximum raw speed-up across kernels.
    pub fn max_speedup(&self) -> f64 {
        self.rows.iter().map(|r| r.speedup).fold(0.0, f64::max)
    }

    /// Geometric-mean speed-up against the calibrated real-tool reference.
    pub fn calibrated_geometric_mean(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.calibrated_speedup.max(1e-9).ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

impl fmt::Display for SpeedupReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Prediction timeliness: GNN inference vs HLS flow")?;
        writeln!(
            f,
            "{:<22} {:>16} {:>12} {:>12} {:>14}",
            "kernel", "sim flow (us)", "GNN (us)", "vs sim", "vs real tool"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<22} {:>16.1} {:>12.1} {:>11.1}x {:>13.0}x",
                row.kernel,
                row.hls_flow_us,
                row.gnn_inference_us,
                row.speedup,
                row.calibrated_speedup
            )?;
        }
        writeln!(
            f,
            "geometric mean vs simulator {:.2}x; vs a {:.0}-second real HLS+implementation run {:.0}x",
            self.geometric_mean(),
            REFERENCE_VITIS_SECONDS,
            self.calibrated_geometric_mean()
        )
    }
}

/// Measures HLS-flow time vs GNN-inference time on a subset of the real-world
/// kernels (the paper's timeliness argument).
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_speedup(config: &ExperimentConfig) -> Result<SpeedupReport> {
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs.min(64))?;
    let mut predictor =
        PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Rgcn).build(&config.train);
    predictor.fit(&cdfg.train, &cdfg.validation, &config.train)?;

    let real = Dataset::real_world(&config.device)?;
    let kernels = hls_progen::all_kernels();
    let mut rows = Vec::new();
    for (kernel, sample) in kernels.iter().zip(&real.samples) {
        let start = Instant::now();
        let _ = run_flow(&kernel.function, &config.device)?;
        let hls_flow_us = start.elapsed().as_secs_f64() * 1e6;

        let start = Instant::now();
        let _ = predictor.predict(sample)?;
        let gnn_inference_us = start.elapsed().as_secs_f64() * 1e6;

        rows.push(SpeedupRow {
            kernel: kernel.name.clone(),
            hls_flow_us,
            gnn_inference_us,
            speedup: hls_flow_us / gnn_inference_us.max(1e-9),
            calibrated_speedup: REFERENCE_VITIS_SECONDS * 1e6 / gnn_inference_us.max(1e-9),
        });
    }
    Ok(SpeedupReport { rows })
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// One ablation setting and its CDFG test MAPE.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Setting description.
    pub setting: String,
    /// `[DSP, LUT, FF, CP]` MAPE on the CDFG test set.
    pub mape: [f64; 4],
}

/// Ablation study over the design choices called out in DESIGN.md: pooling
/// (sum vs mean), relational edges (RGCN vs GCN), and the hierarchical stage
/// (off-the-shelf vs knowledge-infused).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationReport {
    /// One row per setting.
    pub rows: Vec<AblationRow>,
}

impl fmt::Display for AblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations (CDFG test MAPE, DSP/LUT/FF/CP)")?;
        for row in &self.rows {
            writeln!(f, "{}", format_mape_row(&row.setting, &row.mape))?;
        }
        Ok(())
    }
}

/// Runs the ablation sweep on the CDFG corpus, one setting per parallel
/// worker.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_ablation(config: &ExperimentConfig) -> Result<AblationReport> {
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs)?;

    // The settings, in report order; each one is an independent training job.
    let mut settings: Vec<(String, PredictorSpec, TrainConfig)> = Vec::new();
    // Pooling: mean vs sum readout on the RGCN backbone.
    for pooling in gnn::Pooling::ALL {
        let mut train = config.train.clone();
        train.pooling = pooling;
        settings.push((
            format!("RGCN/{} pooling", pooling.name()),
            PredictorSpec::new(ApproachKind::OffTheShelf, GnnKind::Rgcn),
            train,
        ));
    }
    // Relational edges: RGCN (uses edge types) vs plain GCN (ignores them).
    for kind in [GnnKind::Gcn, GnnKind::Rgcn] {
        settings.push((
            format!("{} (relational: {})", kind.name(), kind.is_relational()),
            PredictorSpec::new(ApproachKind::OffTheShelf, kind),
            config.train.clone(),
        ));
    }
    // Hierarchy: off-the-shelf vs knowledge-infused on the same backbone.
    settings.push((
        "RGCN-I (hierarchical)".to_owned(),
        PredictorSpec::new(ApproachKind::Hierarchical, GnnKind::Rgcn),
        config.train.clone(),
    ));

    let rows = runtime::try_run_jobs(&config.parallel, settings.len(), |index| {
        let (setting, spec, train) = &settings[index];
        let mut predictor = spec.build(train);
        predictor.fit(&cdfg.train, &cdfg.validation, train)?;
        Ok(AblationRow { setting: setting.clone(), mape: predictor.evaluate(&cdfg.test) })
    })?;

    Ok(AblationReport { rows })
}

/// Analytic-bound feature ablation on the Table-2 CDFG protocol: the same
/// off-the-shelf backbone trained with and without the three static-analysis
/// node features (`HLSGNN_FEATURES=analytic`: critical-path depth,
/// on-recurrence flag, memory-port pressure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyticAblationReport {
    /// One row per setting (base features, base + analytic bounds).
    pub rows: Vec<AblationRow>,
}

impl fmt::Display for AnalyticAblationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Analytic-feature ablation (CDFG test MAPE, DSP/LUT/FF/CP)")?;
        for row in &self.rows {
            writeln!(f, "{}", format_mape_row(&row.setting, &row.mape))?;
        }
        Ok(())
    }
}

/// Runs the analytic-feature ablation: both variants train on the same CDFG
/// corpus and split, on parallel workers, differing only in the three extra
/// feature columns.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn run_analytic_ablation(config: &ExperimentConfig) -> Result<AnalyticAblationReport> {
    let cdfg = config.build_corpus(ProgramFamily::Control, config.cdfg_programs)?;
    let settings = [("RGCN (base features)", false), ("RGCN + analytic bounds", true)];
    let rows = runtime::try_run_jobs(&config.parallel, settings.len(), |index| {
        let (setting, analytic) = settings[index];
        let model = GraphRegressor::with_analytic_features(
            GnnKind::Rgcn,
            FeatureMode::Base,
            &config.train,
            analytic,
        );
        let normalizer = TargetNormalizer::fit(&cdfg.train)?;
        train_regressor(&model, &normalizer, &cdfg.train, &config.train);
        Ok(AblationRow {
            setting: setting.to_owned(),
            mape: evaluate_regressor(&model, &normalizer, &cdfg.test),
        })
    })?;
    Ok(AnalyticAblationReport { rows })
}

/// Held-out MAPE of one registry combo under the fixed parity protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityEntry {
    /// Canonical `"approach/backbone"` id of the combo.
    pub id: String,
    /// Per-target test MAPE (`[DSP, LUT, FF, CP]`), in percent.
    pub mape: [f64; TargetMetric::COUNT],
}

/// The registry-wide parity report: every combo's held-out MAPE under a
/// frozen protocol, used to pin the autodiff engine's training numerics
/// across refactors (`results/parity_baseline.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParityReport {
    /// Corpus size (synthetic straight-line programs).
    pub programs: usize,
    /// Corpus generation / split seed.
    pub corpus_seed: u64,
    /// Training seed.
    pub train_seed: u64,
    /// Epochs per combo (one — the protocol pins the first optimisation
    /// steps, where numerical drift would surface immediately).
    pub epochs: usize,
    /// Hidden dimension of the trained models.
    pub hidden_dim: usize,
    /// One entry per registry combo, in [`PredictorSpec::all`] order.
    pub entries: Vec<ParityEntry>,
}

/// Trains every registry combo (3 approaches × 14 backbones) for one epoch
/// on a fixed tiny synthetic corpus with fixed seeds and reports the held-out
/// per-target MAPE of each. The protocol is deliberately frozen: any change
/// to the autodiff engine, the kernels or the training loop that alters
/// floating-point results shows up as a diff against the checked-in baseline
/// (`results/parity_baseline.json`, regenerated by the `parity_baseline`
/// bench binary).
///
/// The combos run on the given worker configuration; results are
/// bit-identical for any worker count (each job's RNG state derives purely
/// from its seed and models never cross threads).
///
/// The fusion configuration is pinned (node budget 128, the default at the
/// time the baseline was generated) rather than read from `HLSGNN_BATCH*`:
/// a chunk plan determines floating-point accumulation order, so leaving it
/// to the tunable default would make the gate fail on every budget retune
/// instead of only on real engine changes.
///
/// # Errors
/// Propagates dataset-construction and training errors.
pub fn registry_parity(parallel: &ParallelConfig) -> Result<ParityReport> {
    use hls_progen::synthetic::SyntheticConfig;
    let programs = 16;
    let corpus_seed = 1234;
    let batch = runtime::BatchConfig::default_fused().with_node_budget(128);
    let mut train = TrainConfig::fast();
    train.epochs = 1;
    train.seed = 7;
    let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(programs)
        .seed(corpus_seed)
        .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
        .build()?;
    let split = dataset.split(0.7, 0.15, 1);
    let specs = PredictorSpec::all();
    let entries = runtime::try_run_jobs(parallel, specs.len(), |index| {
        let spec = specs[index];
        let mut predictor = GnnPredictor::new(spec, &train);
        predictor.fit_source_with(&batch, &split.train, &split.validation, &train)?;
        Ok(ParityEntry { id: spec.id(), mape: predictor.evaluate(&split.test) })
    })?;
    Ok(ParityReport {
        programs,
        corpus_seed,
        train_seed: train.seed,
        epochs: train.epochs,
        hidden_dim: train.hidden_dim,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine-parity gate: recomputes the frozen protocol on this build
    /// and compares against the checked-in pre-refactor baseline
    /// (`results/parity_baseline.json`, generated by the old `Rc`-graph
    /// engine). Tolerance is 1e-9 MAPE points — the arena tape replays the
    /// old engine's traversal and accumulation order, so the two engines are
    /// currently bit-identical and the slack only exists to absorb a future
    /// *documented* benign change (regenerate the baseline and say so in the
    /// commit if a numerical change is intentional).
    ///
    /// The same run also pins worker-count determinism: the report must be
    /// exactly equal at `HLSGNN_WORKERS`-equivalent configs 1 and 4.
    #[test]
    fn registry_parity_matches_the_checked_in_baseline() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/parity_baseline.json");
        let raw = std::fs::read_to_string(path).expect("checked-in parity baseline exists");
        let baseline: ParityReport = serde_json::from_str(&raw).expect("baseline parses");

        let serial = registry_parity(&ParallelConfig::serial()).expect("parity protocol runs");
        let parallel =
            registry_parity(&ParallelConfig::with_workers(4)).expect("parity protocol runs");
        assert_eq!(serial, parallel, "parity report must be bit-identical at any worker count");

        assert_eq!(serial.programs, baseline.programs);
        assert_eq!(serial.corpus_seed, baseline.corpus_seed);
        assert_eq!(serial.train_seed, baseline.train_seed);
        assert_eq!(serial.epochs, baseline.epochs);
        assert_eq!(serial.hidden_dim, baseline.hidden_dim);
        assert_eq!(serial.entries.len(), baseline.entries.len());
        const TOLERANCE: f64 = 1e-9;
        for (ours, theirs) in serial.entries.iter().zip(&baseline.entries) {
            assert_eq!(ours.id, theirs.id, "combo order must match the baseline");
            for (target, (a, b)) in ours.mape.iter().zip(&theirs.mape).enumerate() {
                assert!(
                    (a - b).abs() <= TOLERANCE,
                    "{} target {target}: this engine {a}, baseline {b} (|Δ| > {TOLERANCE})",
                    ours.id
                );
            }
        }
    }

    fn smoke_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::fast();
        config.dfg_programs = 16;
        config.cdfg_programs = 16;
        config.train.epochs = 2;
        config.train.hidden_dim = 8;
        config.train.embed_dim = 3;
        config.with_models(vec![GnnKind::Gcn, GnnKind::Rgcn])
    }

    #[test]
    fn scale_presets_grow_monotonically() {
        let fast = ExperimentConfig::fast();
        let standard = ExperimentConfig::standard();
        let paper = ExperimentConfig::paper();
        assert!(fast.dfg_programs < standard.dfg_programs);
        assert!(standard.dfg_programs < paper.dfg_programs);
        assert_eq!(paper.dfg_programs, 19_120, "paper DFG corpus size");
        assert_eq!(paper.cdfg_programs, 18_570, "paper CDFG corpus size");
        assert_eq!(GnnKind::ALL.len(), fast.table2_models.len());
    }

    #[test]
    fn table2_smoke_run_produces_all_rows() {
        let config = smoke_config();
        let table = run_table2(&config).expect("table 2 runs");
        assert_eq!(table.rows.len(), 2);
        assert!(table.rows.iter().all(|r| r
            .dfg
            .iter()
            .chain(r.cdfg.iter())
            .all(|m| m.is_finite())));
        let rendered = table.to_string();
        assert!(rendered.contains("GCN"));
        assert!(rendered.contains("RGCN"));
        let (dfg_mean, cdfg_mean) = table.dataset_means();
        assert!(dfg_mean >= 0.0 && cdfg_mean >= 0.0);
        // Round-trip through serde for EXPERIMENTS.md regeneration.
        let json = serde_json::to_string(&table).unwrap();
        let back: Table2 = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), table.rows.len());
    }

    #[test]
    fn speedup_report_helpers_work() {
        let report = SpeedupReport {
            rows: vec![
                SpeedupRow {
                    kernel: "a".into(),
                    hls_flow_us: 100.0,
                    gnn_inference_us: 10.0,
                    speedup: 10.0,
                    calibrated_speedup: 1000.0,
                },
                SpeedupRow {
                    kernel: "b".into(),
                    hls_flow_us: 400.0,
                    gnn_inference_us: 10.0,
                    speedup: 40.0,
                    calibrated_speedup: 4000.0,
                },
            ],
        };
        assert_eq!(report.max_speedup(), 40.0);
        assert!((report.geometric_mean() - 20.0).abs() < 1.0);
        assert!((report.calibrated_geometric_mean() - 2000.0).abs() < 10.0);
        assert!(report.to_string().contains("vs real tool"));
        assert_eq!(SpeedupReport { rows: vec![] }.geometric_mean(), 1.0);
    }

    #[test]
    fn table5_improvement_helper() {
        let table = Table5 {
            columns: vec![
                Table5Column { predictor: "HLS".into(), mape: [0.2, 8.0, 3.0, 0.3] },
                Table5Column { predictor: "RGCN-I".into(), mape: [0.4, 0.4, 0.4, 0.05] },
            ],
        };
        let lut = table.improvement_over_hls("RGCN-I", TargetMetric::Lut).unwrap();
        assert!((lut - 20.0).abs() < 1e-9);
        assert!(table.improvement_over_hls("missing", TargetMetric::Lut).is_none());
        assert!(table.to_string().contains("RGCN-I"));
    }

    #[test]
    fn scale_from_env_defaults_to_fast() {
        // The variable is not set in the test environment.
        assert_eq!(ExperimentScale::from_env(), ExperimentScale::Fast);
    }
}
