//! `hls-gnn-core` — the paper's contribution: GNN-based HLS performance
//! prediction at the earliest design stage.
//!
//! This crate ties the substrates together into the system evaluated by the
//! paper:
//!
//! * [`dataset`] builds the benchmark: synthetic DFG/CDFG corpora and the
//!   real-world kernel suite, each program run through the `hls-sim` flow to
//!   obtain ground-truth labels, per-node auxiliary features and node-level
//!   resource-type labels.
//! * [`encode`] turns Table-1 features into learned embeddings, optionally
//!   augmented with the auxiliary information each approach uses.
//! * [`model`] provides the graph-level regressor (GNN stack + pooling +
//!   `hidden-2·hidden-hidden-4` head) and the node-level classifier.
//! * [`predictor`] defines the dyn-safe [`Predictor`] trait — the single
//!   interface every model is trained, batched and persisted through — and
//!   [`approach`] implements the three prediction strategies of §2 behind it
//!   (off-the-shelf, knowledge-rich, knowledge-infused hierarchical).
//! * [`builder`] constructs any approach × backbone combination at runtime
//!   from a [`PredictorSpec`] (parseable from strings like `"hier/rgcn"`),
//!   and [`persist`] snapshots trained predictors to JSON and back.
//! * [`train`] and [`metrics`] hold the shared training loops, MAPE/accuracy
//!   metrics and target normalisation. Mini-batches run on the fused
//!   batching engine: [`gnn::GraphBatch`] disjoint-unions the batch into one
//!   block-diagonal super-graph so a single autodiff tape covers the whole
//!   gradient step (`HLSGNN_BATCH=1` selects the exact legacy
//!   one-tape-per-graph path).
//! * [`runtime`] is the deterministic execution layer: the parallel runtime
//!   (thread-confined workers — the autodiff tape is `!Send` — that train
//!   and evaluate independent models concurrently and rehydrate [`persist`]
//!   snapshots per thread to shard batched inference; `HLSGNN_WORKERS`) and
//!   the fused-batching configuration ([`runtime::BatchConfig`];
//!   `HLSGNN_BATCH`, `HLSGNN_BATCH_NODES`). Results are bit-identical for
//!   any worker count and fusion width.
//! * [`experiments`] regenerates every table and figure of the evaluation
//!   section (Tables 2–5, the DFG-vs-CDFG analysis, the speed-up figure and
//!   the ablations), driving everything through the [`Predictor`] API — each
//!   sweep training its approach × backbone combinations on [`runtime`]
//!   workers.
//!
//! # Quick start
//!
//! ```
//! use hls_gnn_core::builder::PredictorBuilder;
//! use hls_gnn_core::dataset::DatasetBuilder;
//! use hls_gnn_core::predictor::Predictor;
//! use hls_gnn_core::train::TrainConfig;
//! use hls_progen::synthetic::ProgramFamily;
//!
//! # fn main() -> Result<(), hls_gnn_core::Error> {
//! // A tiny corpus so the example runs in seconds.
//! let dataset = DatasetBuilder::new(ProgramFamily::StraightLine).count(24).seed(7).build()?;
//! let split = dataset.split(0.8, 0.1, 42);
//!
//! // Select the model from a config string and train it.
//! let predictor = PredictorBuilder::parse("base/sage")?
//!     .config(TrainConfig::fast())
//!     .train(&split.train, &split.validation)?;
//!
//! // Batched inference over the whole held-out set in one call.
//! let predictions = predictor.predict_batch(&split.test.samples);
//! assert_eq!(predictions.len(), split.test.len());
//! let mape = predictor.evaluate(&split.test);
//! assert!(mape.iter().all(|m| m.is_finite()));
//!
//! // Persist the trained model and revive it elsewhere.
//! let snapshot = predictor.save_json()?;
//! let reloaded = hls_gnn_core::builder::load_predictor(&snapshot)?;
//! assert_eq!(
//!     reloaded.predict(&split.test.samples[0])?,
//!     predictor.predict(&split.test.samples[0])?,
//! );
//! # Ok(())
//! # }
//! ```

pub mod approach;
pub mod builder;
pub mod dataset;
pub mod encode;
pub mod experiments;
pub mod export;
pub mod fingerprint;
pub mod metrics;
pub mod model;
pub mod persist;
pub mod predictor;
pub mod runtime;
pub mod task;
pub mod train;

use std::fmt;

pub use approach::{
    hls_baseline_mape, seed_averaged_mape, seed_averaged_mape_source, seed_averaged_mape_with,
    GnnPredictor,
};
pub use builder::{
    load_predictor, load_predictor_from_reader, ApproachKind, PredictorBuilder, PredictorSpec,
};
pub use dataset::{Dataset, DatasetBuilder, GraphSample, SampleSource, Split};
pub use encode::{FeatureEncoder, FeatureMode};
pub use fingerprint::{sample_fingerprint, Fingerprint};
pub use metrics::{accuracy, f1_score, kendall_tau, mape, rmse, spearman_rho, TargetNormalizer};
pub use persist::SavedPredictor;
pub use predictor::Predictor;
pub use runtime::{predict_batch_sharded, BatchConfig, ParallelConfig};
pub use task::{ResourceClass, TargetMetric};
pub use train::TrainConfig;

/// Errors produced by dataset construction, training, or evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The HLS front end or flow failed on a program.
    Flow(String),
    /// A dataset was too small for the requested split or training run.
    DatasetTooSmall(String),
    /// A model was used before being trained.
    NotTrained(String),
    /// Configuration error (invalid hyper-parameters, unknown model name, ...).
    Config(String),
    /// Malformed serialised input: truncated or invalid JSON, a snapshot from
    /// an unknown future format version, or a structurally invalid exported
    /// graph. Distinct from [`Error::Config`] so callers that accept
    /// untrusted bytes (the serving subsystem, file loaders) can map parse
    /// failures to "bad request" rather than "server misconfigured".
    Parse(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Flow(msg) => write!(f, "hls flow error: {msg}"),
            Error::DatasetTooSmall(msg) => write!(f, "dataset too small: {msg}"),
            Error::NotTrained(msg) => write!(f, "model not trained: {msg}"),
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<hls_sim::Error> for Error {
    fn from(e: hls_sim::Error) -> Self {
        Error::Flow(e.to_string())
    }
}

impl From<hls_ir::Error> for Error {
    fn from(e: hls_ir::Error) -> Self {
        Error::Flow(e.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
