//! Model persistence: serde-serialisable snapshots of trained predictors.
//!
//! A [`SavedPredictor`] records everything needed to reconstruct a predictor
//! bit-exactly in another process: the [`crate::builder::PredictorSpec`], the
//! [`TrainConfig`] (which fixes every architecture dimension), the fitted
//! target normaliser, and the parameter matrices of the regressor (and, for
//! the hierarchical approach, the node classifier). JSON is the wire format;
//! floats are written with shortest-round-trip formatting, so a
//! save → load → predict cycle reproduces the original predictions exactly.
//!
//! Snapshots are also the bridge across *threads*: unlike a live model
//! (whose autodiff tape is `Rc`-based and `!Send`), every snapshot type here
//! is plain data and `Send + Sync` — the parallel runtime
//! ([`crate::runtime`]) ships trained state between workers as a
//! [`SavedPredictor`] and rehydrates one thread-confined model per worker.

use gnn_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::builder::PredictorSpec;
use crate::metrics::TargetNormalizer;
use crate::task::TargetMetric;
use crate::train::TrainConfig;
use crate::{Error, Result};

/// Current snapshot format version, bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One parameter matrix in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedTensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major values (`rows * cols` entries).
    pub data: Vec<f32>,
}

impl SavedTensor {
    /// Snapshots a matrix.
    pub fn from_matrix(matrix: &Matrix) -> Self {
        SavedTensor { rows: matrix.rows(), cols: matrix.cols(), data: matrix.data().to_vec() }
    }

    /// Rebuilds the matrix.
    ///
    /// # Errors
    /// Returns [`Error::Config`] when the data length does not match the
    /// recorded shape.
    pub fn to_matrix(&self) -> Result<Matrix> {
        if self.data.len() != self.rows * self.cols {
            return Err(Error::Config(format!(
                "saved tensor claims {}x{} but carries {} values",
                self.rows,
                self.cols,
                self.data.len()
            )));
        }
        Ok(Matrix::from_vec(self.rows, self.cols, self.data.clone()))
    }

    /// Snapshots a whole parameter list (a model "state dict").
    pub fn from_state(state: &[Matrix]) -> Vec<SavedTensor> {
        state.iter().map(SavedTensor::from_matrix).collect()
    }

    /// Rebuilds a parameter list.
    ///
    /// # Errors
    /// Returns [`Error::Config`] when any tensor is malformed.
    pub fn to_state(tensors: &[SavedTensor]) -> Result<Vec<Matrix>> {
        tensors.iter().map(SavedTensor::to_matrix).collect()
    }
}

/// The fitted target-normalisation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedNormalizer {
    /// Per-target mean of `log1p(target)` on the training set.
    pub mean: [f64; TargetMetric::COUNT],
    /// Per-target standard deviation of `log1p(target)`.
    pub std: [f64; TargetMetric::COUNT],
}

impl SavedNormalizer {
    /// Snapshots a fitted normaliser.
    pub fn from_normalizer(normalizer: &TargetNormalizer) -> Self {
        SavedNormalizer { mean: normalizer.mean(), std: normalizer.std() }
    }

    /// Rebuilds the normaliser.
    pub fn to_normalizer(&self) -> TargetNormalizer {
        TargetNormalizer::from_parts(self.mean, self.std)
    }
}

/// A complete trained-predictor snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedPredictor {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Which approach × backbone this is.
    pub spec: PredictorSpec,
    /// Hyper-parameters; these fix every architecture dimension, so the
    /// snapshot is self-describing.
    pub config: TrainConfig,
    /// Fitted target normaliser.
    pub normalizer: SavedNormalizer,
    /// Graph-level regressor parameters, in [`crate::model::GraphRegressor`]
    /// state order.
    pub regressor: Vec<SavedTensor>,
    /// Node-classifier parameters (hierarchical approach only).
    pub classifier: Option<Vec<SavedTensor>>,
}

// The parallel runtime relies on snapshots crossing thread boundaries; keep
// that guarantee explicit so a future `Rc`/`RefCell` field fails to compile
// here rather than deep inside a scoped-thread bound.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SavedPredictor>();
    assert_send_sync::<SavedTensor>();
    assert_send_sync::<SavedNormalizer>();
};

impl SavedPredictor {
    /// Serialises the snapshot to pretty-printed JSON.
    ///
    /// # Errors
    /// Returns [`Error::Config`] if serialisation fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::Config(format!("failed to serialise predictor: {e}")))
    }

    /// Parses a snapshot from JSON, checking the format version.
    ///
    /// # Errors
    /// Returns [`Error::Config`] on malformed input or a version mismatch.
    pub fn from_json(json: &str) -> Result<Self> {
        let saved: SavedPredictor = serde_json::from_str(json)
            .map_err(|e| Error::Config(format!("failed to parse predictor snapshot: {e}")))?;
        if saved.version != SNAPSHOT_VERSION {
            return Err(Error::Config(format!(
                "predictor snapshot version {} is not supported (expected {SNAPSHOT_VERSION})",
                saved.version
            )));
        }
        Ok(saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensors_round_trip_and_validate() {
        let matrix = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.25 - 0.6);
        let saved = SavedTensor::from_matrix(&matrix);
        assert_eq!(saved.to_matrix().unwrap(), matrix);

        let broken = SavedTensor { rows: 3, cols: 2, data: vec![0.0; 5] };
        assert!(broken.to_matrix().is_err());
    }

    #[test]
    fn normalizer_snapshot_round_trips() {
        let normalizer = TargetNormalizer::from_parts([1.0, 2.0, 3.0, 4.0], [0.5, 0.5, 2.0, 1.0]);
        let back = SavedNormalizer::from_normalizer(&normalizer).to_normalizer();
        assert_eq!(back, normalizer);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let snapshot = SavedPredictor {
            version: SNAPSHOT_VERSION + 1,
            spec: "base/gcn".parse().unwrap(),
            config: TrainConfig::fast(),
            normalizer: SavedNormalizer { mean: [0.0; 4], std: [1.0; 4] },
            regressor: Vec::new(),
            classifier: None,
        };
        let json = snapshot.to_json().unwrap();
        assert!(matches!(SavedPredictor::from_json(&json), Err(Error::Config(_))));
    }
}
