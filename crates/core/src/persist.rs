//! Model persistence: serde-serialisable snapshots of trained predictors.
//!
//! A [`SavedPredictor`] records everything needed to reconstruct a predictor
//! bit-exactly in another process: the [`crate::builder::PredictorSpec`], the
//! [`TrainConfig`] (which fixes every architecture dimension), the fitted
//! target normaliser, and the parameter matrices of the regressor (and, for
//! the hierarchical approach, the node classifier). JSON is the wire format;
//! floats are written with shortest-round-trip formatting, so a
//! save → load → predict cycle reproduces the original predictions exactly.
//!
//! Snapshots are also the bridge across *threads*: unlike a live model
//! (whose autodiff tape is `Rc`-based and `!Send`), every snapshot type here
//! is plain data and `Send + Sync` — the parallel runtime
//! ([`crate::runtime`]) ships trained state between workers as a
//! [`SavedPredictor`] and rehydrates one thread-confined model per worker.

use gnn_tensor::Matrix;
use serde::{Deserialize, Serialize};

use crate::builder::PredictorSpec;
use crate::metrics::TargetNormalizer;
use crate::task::TargetMetric;
use crate::train::TrainConfig;
use crate::{Error, Result};

/// Current snapshot format version, bumped on incompatible layout changes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One parameter matrix in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedTensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major values (`rows * cols` entries).
    pub data: Vec<f32>,
}

impl SavedTensor {
    /// Snapshots a matrix.
    pub fn from_matrix(matrix: &Matrix) -> Self {
        SavedTensor { rows: matrix.rows(), cols: matrix.cols(), data: matrix.data().to_vec() }
    }

    /// Rebuilds the matrix.
    ///
    /// # Errors
    /// Returns [`Error::Config`] when the data length does not match the
    /// recorded shape.
    pub fn to_matrix(&self) -> Result<Matrix> {
        if self.data.len() != self.rows * self.cols {
            return Err(Error::Config(format!(
                "saved tensor claims {}x{} but carries {} values",
                self.rows,
                self.cols,
                self.data.len()
            )));
        }
        Ok(Matrix::from_vec(self.rows, self.cols, self.data.clone()))
    }

    /// Snapshots a whole parameter list (a model "state dict").
    pub fn from_state(state: &[Matrix]) -> Vec<SavedTensor> {
        state.iter().map(SavedTensor::from_matrix).collect()
    }

    /// Rebuilds a parameter list.
    ///
    /// # Errors
    /// Returns [`Error::Config`] when any tensor is malformed.
    pub fn to_state(tensors: &[SavedTensor]) -> Result<Vec<Matrix>> {
        tensors.iter().map(SavedTensor::to_matrix).collect()
    }
}

/// The fitted target-normalisation statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavedNormalizer {
    /// Per-target mean of `log1p(target)` on the training set.
    pub mean: [f64; TargetMetric::COUNT],
    /// Per-target standard deviation of `log1p(target)`.
    pub std: [f64; TargetMetric::COUNT],
}

impl SavedNormalizer {
    /// Snapshots a fitted normaliser.
    pub fn from_normalizer(normalizer: &TargetNormalizer) -> Self {
        SavedNormalizer { mean: normalizer.mean(), std: normalizer.std() }
    }

    /// Rebuilds the normaliser.
    pub fn to_normalizer(&self) -> TargetNormalizer {
        TargetNormalizer::from_parts(self.mean, self.std)
    }
}

/// A complete trained-predictor snapshot.
///
/// Deserialisation is hand-written (not derived) for one reason: the
/// `version` field. Snapshots written before the field existed carry no
/// `version` key at all; those legacy files are accepted and read as
/// [`SNAPSHOT_VERSION`] 1, whose layout they share. Snapshots from a *newer*
/// format version are rejected with a typed [`Error::Parse`] instead of being
/// misinterpreted field-by-field.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SavedPredictor {
    /// Snapshot format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Which approach × backbone this is.
    pub spec: PredictorSpec,
    /// Hyper-parameters; these fix every architecture dimension, so the
    /// snapshot is self-describing.
    pub config: TrainConfig,
    /// Fitted target normaliser.
    pub normalizer: SavedNormalizer,
    /// Graph-level regressor parameters, in [`crate::model::GraphRegressor`]
    /// state order.
    pub regressor: Vec<SavedTensor>,
    /// Node-classifier parameters (hierarchical approach only).
    pub classifier: Option<Vec<SavedTensor>>,
}

impl Deserialize for SavedPredictor {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::DeError> {
        let obj = value.as_object().ok_or_else(|| {
            serde::DeError::custom(format!("expected object for SavedPredictor, found {value:?}"))
        })?;
        let field = |name: &str| serde::field(obj, name);
        // A missing (or null) version marks a legacy file from before the
        // field existed; its layout is exactly version 1 — the literal, not
        // `SNAPSHOT_VERSION`, which will move past 1 while legacy files
        // stay what they are.
        let version = match field("version") {
            serde::Value::Null => 1,
            value => u32::from_value(value)
                .map_err(|e| serde::DeError::custom(format!("SavedPredictor.version: {e}")))?,
        };
        macro_rules! parse_field {
            ($name:literal) => {
                Deserialize::from_value(field($name)).map_err(|e| {
                    serde::DeError::custom(format!(concat!("SavedPredictor.", $name, ": {}"), e))
                })?
            };
        }
        Ok(SavedPredictor {
            version,
            spec: parse_field!("spec"),
            config: parse_field!("config"),
            normalizer: parse_field!("normalizer"),
            regressor: parse_field!("regressor"),
            classifier: parse_field!("classifier"),
        })
    }
}

// The parallel runtime relies on snapshots crossing thread boundaries; keep
// that guarantee explicit so a future `Rc`/`RefCell` field fails to compile
// here rather than deep inside a scoped-thread bound.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SavedPredictor>();
    assert_send_sync::<SavedTensor>();
    assert_send_sync::<SavedNormalizer>();
};

impl SavedPredictor {
    /// Serialises the snapshot to pretty-printed JSON.
    ///
    /// # Errors
    /// Returns [`Error::Config`] if serialisation fails.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| Error::Config(format!("failed to serialise predictor: {e}")))
    }

    /// Parses a snapshot from JSON, checking the format version.
    ///
    /// Files written before the `version` field existed (no `version` key)
    /// are accepted and read as version 1 — their layout is identical.
    /// Versions newer than [`SNAPSHOT_VERSION`] are refused: a future format
    /// may have changed field meanings, and misreading weights silently would
    /// be far worse than a typed error.
    ///
    /// # Errors
    /// Returns [`Error::Parse`] on truncated or malformed JSON, on a value
    /// whose shape does not match the schema, and on an unknown future
    /// format version. Never panics, regardless of input.
    pub fn from_json(json: &str) -> Result<Self> {
        let saved: SavedPredictor = serde_json::from_str(json)
            .map_err(|e| Error::Parse(format!("failed to parse predictor snapshot: {e}")))?;
        if saved.version > SNAPSHOT_VERSION {
            return Err(Error::Parse(format!(
                "predictor snapshot version {} is from a newer format than this build \
                 understands (supported: 1..={SNAPSHOT_VERSION}); refusing to reinterpret it",
                saved.version
            )));
        }
        if saved.version == 0 {
            return Err(Error::Parse(
                "predictor snapshot declares version 0, which was never a valid format \
                 (legacy files simply omit the field)"
                    .to_owned(),
            ));
        }
        Ok(saved)
    }

    /// [`SavedPredictor::from_json`] from any reader (a file, a socket): the
    /// text is read into one buffer *here* instead of forcing every caller
    /// to slurp the file itself and then hand over a borrowed `&str` — with
    /// the old API, loaders ended up holding the snapshot text twice.
    ///
    /// # Errors
    /// Returns [`Error::Parse`] on I/O failure, non-UTF-8 bytes, or any of
    /// the [`SavedPredictor::from_json`] failures.
    pub fn from_reader(mut reader: impl std::io::Read) -> Result<Self> {
        let mut json = String::new();
        reader
            .read_to_string(&mut json)
            .map_err(|e| Error::Parse(format!("cannot read predictor snapshot: {e}")))?;
        SavedPredictor::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensors_round_trip_and_validate() {
        let matrix = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.25 - 0.6);
        let saved = SavedTensor::from_matrix(&matrix);
        assert_eq!(saved.to_matrix().unwrap(), matrix);

        let broken = SavedTensor { rows: 3, cols: 2, data: vec![0.0; 5] };
        assert!(broken.to_matrix().is_err());
    }

    #[test]
    fn normalizer_snapshot_round_trips() {
        let normalizer = TargetNormalizer::from_parts([1.0, 2.0, 3.0, 4.0], [0.5, 0.5, 2.0, 1.0]);
        let back = SavedNormalizer::from_normalizer(&normalizer).to_normalizer();
        assert_eq!(back, normalizer);
    }

    fn snapshot_with_version(version: u32) -> SavedPredictor {
        SavedPredictor {
            version,
            spec: "base/gcn".parse().unwrap(),
            config: TrainConfig::fast(),
            normalizer: SavedNormalizer { mean: [0.0; 4], std: [1.0; 4] },
            regressor: Vec::new(),
            classifier: None,
        }
    }

    #[test]
    fn future_versions_are_rejected_with_a_typed_error() {
        for version in [SNAPSHOT_VERSION + 1, 7, u32::MAX] {
            let json = snapshot_with_version(version).to_json().unwrap();
            let error = SavedPredictor::from_json(&json).unwrap_err();
            assert!(matches!(&error, Error::Parse(message) if message.contains("newer format")));
        }
        // Version 0 never existed; an explicit 0 is malformed, not legacy.
        let json = snapshot_with_version(0).to_json().unwrap();
        assert!(matches!(SavedPredictor::from_json(&json), Err(Error::Parse(_))));
    }

    #[test]
    fn version_less_legacy_files_are_accepted_as_version_one() {
        let current = snapshot_with_version(SNAPSHOT_VERSION);
        let json = current.to_json().unwrap();
        // Strip the version line to reproduce a pre-versioning file.
        let legacy: String = json
            .lines()
            .filter(|line| !line.contains("\"version\""))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!legacy.contains("version"));
        let reloaded = SavedPredictor::from_json(&legacy).expect("legacy snapshot loads");
        assert_eq!(reloaded, current);
    }
}
