//! Benchmark construction: programs → IR graphs → ground-truth labels.
//!
//! Mirrors §3 of the paper. Each sample couples
//!
//! * an IR graph (DFG or CDFG) with its Table-1 node/edge features,
//! * per-node auxiliary resource estimates from the HLS intermediate results
//!   (the knowledge-rich inputs),
//! * per-node resource-type labels from the implementation (the
//!   knowledge-infused classification targets), and
//! * graph-level ground truth (`DSP`, `LUT`, `FF`, `CP`) plus the HLS report
//!   used as the baseline estimator.

use std::borrow::Cow;

use gnn::GraphData;
use hls_gnn_analyze::bounds::analyze_bounds;
use hls_ir::ast::Function;
use hls_ir::features::{edge_features, node_features, EdgeFeatures, NodeFeatures};
use hls_ir::graph::{extract_from_ir, GraphKind};
use hls_progen::kernels::all_kernels;
use hls_progen::synthetic::{ProgramFamily, ProgramGenerator, SyntheticConfig};
use hls_sim::{run_flow, FpgaDevice};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Error, Result};

/// One benchmark program with everything the three approaches need.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSample {
    /// Program name.
    pub name: String,
    /// DFG or CDFG.
    pub kind: GraphKind,
    /// Graph connectivity (with mirrored edges; relation ids encode edge type,
    /// back-edge flag and direction).
    pub structure: GraphData,
    /// Table-1 node features, one entry per node.
    pub node_features: Vec<NodeFeatures>,
    /// Per-node `[DSP, LUT, FF]` estimates from the HLS intermediate results
    /// (all zeros for block nodes) — the knowledge-rich auxiliary input.
    pub node_aux_resources: Vec<[f32; 3]>,
    /// Per-node ground-truth resource-type labels `[DSP, LUT, FF]` (0/1) — the
    /// knowledge-infused classification target.
    pub node_resource_types: Vec<[f32; 3]>,
    /// Per-node analytic-bound features `[chain depth, on-recurrence,
    /// port pressure]` from the static analyser (all zeros for block nodes
    /// and for samples rebuilt from the release format, which does not carry
    /// them — they are recomputable from the program). Appended to the model
    /// input only under `HLSGNN_FEATURES=analytic`.
    pub node_analytic: Vec<[f32; 3]>,
    /// Graph-level ground truth `[DSP, LUT, FF, CP]` after implementation.
    pub targets: [f64; 4],
    /// The HLS report's own estimate of the same four metrics (the baseline).
    pub hls_estimate: [f64; 4],
}

impl GraphSample {
    /// Number of edge relations used by the graph encoding: edge type ×
    /// back-edge flag × direction (original / mirrored).
    pub const NUM_RELATIONS: usize = EdgeFeatures::RELATION_VOCAB * 2;

    /// Builds a sample by extracting the requested graph kind and running the
    /// full HLS + implementation flow for labels.
    ///
    /// # Errors
    /// Propagates front-end and flow errors.
    pub fn from_function(func: &Function, kind: GraphKind, device: &FpgaDevice) -> Result<Self> {
        let flow = run_flow(func, device)?;
        let graph = extract_from_ir(&flow.ir, kind)?;
        let features = node_features(&graph);
        let edges = edge_features(&graph);

        // Connectivity with relations; mirror edges so information can also
        // flow against the data-dependence direction.
        let edge_src: Vec<usize> = graph.edges().iter().map(|e| e.src.index()).collect();
        let edge_dst: Vec<usize> = graph.edges().iter().map(|e| e.dst.index()).collect();
        let edge_relation: Vec<usize> = edges.iter().map(EdgeFeatures::relation).collect();
        let structure = GraphData::new(
            graph.node_count(),
            edge_src,
            edge_dst,
            edge_relation,
            EdgeFeatures::RELATION_VOCAB,
        )
        .with_reverse_edges();

        // Analytic lower bounds over the same IR, mapped onto graph nodes by
        // originating operation below.
        let decls: Vec<_> = func.vars().map(|(id, decl)| (id, decl.ty)).collect();
        let bounds = analyze_bounds(&flow.ir, &decls, device);

        // Per-node annotations, mapped from the originating IR operation.
        let annotations = flow.annotations_by_op();
        let mut node_aux_resources = Vec::with_capacity(graph.node_count());
        let mut node_resource_types = Vec::with_capacity(graph.node_count());
        let mut node_analytic = Vec::with_capacity(graph.node_count());
        for node in graph.nodes() {
            node_analytic.push(node.op.map_or([0.0; 3], |op| bounds.node_features(op)));
            match node.op.and_then(|op| annotations.get(&op)) {
                Some(annotation) => {
                    node_aux_resources.push([
                        annotation.hls.dsp as f32,
                        annotation.hls.lut as f32,
                        annotation.hls.ff as f32,
                    ]);
                    node_resource_types.push(annotation.types.as_labels());
                }
                None => {
                    node_aux_resources.push([0.0; 3]);
                    node_resource_types.push([0.0; 3]);
                }
            }
        }

        Ok(GraphSample {
            name: func.name.clone(),
            kind,
            structure,
            node_features: features,
            node_aux_resources,
            node_resource_types,
            node_analytic,
            targets: flow.implementation.as_targets(),
            hls_estimate: flow.hls_report.as_targets(),
        })
    }

    /// Number of nodes in the graph.
    pub fn num_nodes(&self) -> usize {
        self.structure.num_nodes
    }
}

/// Random access to training samples, whether they live in RAM or on disk.
///
/// This is the seam between the training loops and the storage layer: an
/// in-memory [`Dataset`] hands out borrowed samples at zero cost, while a
/// sharded on-disk store (`hls_gnn_store::ShardedDataset`) decodes shards on
/// demand and hands out owned copies, keeping peak memory bounded by its
/// cache budget instead of the corpus size.
///
/// Contract: `fetch(i)` for a fixed `i` always yields the same sample, and
/// the training loops promise to request whole mini-batches in their shuffled
/// order — so a streamed source produces *bit-identical* results to
/// materialising it into a [`Dataset`] first (the loops share one code path;
/// see [`crate::train::train_regressor_source_with`]).
///
/// `Sync` is required so the seed-averaged evaluation protocol can share one
/// source across its worker threads.
pub trait SampleSource: Sync {
    /// Number of samples addressable through [`SampleSource::fetch`].
    fn len(&self) -> usize;

    /// True when the source holds no samples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns sample `index` — borrowed when the source is in memory, owned
    /// when it had to be decoded from storage.
    ///
    /// # Errors
    /// Returns [`Error::Parse`] (or an I/O-flavoured variant) when a stored
    /// sample cannot be read back; panics on an out-of-range index, which is
    /// a caller bug just like slice indexing.
    fn fetch(&self, index: usize) -> Result<Cow<'_, GraphSample>>;
}

impl SampleSource for Dataset {
    fn len(&self) -> usize {
        self.samples.len()
    }

    fn fetch(&self, index: usize) -> Result<Cow<'_, GraphSample>> {
        Ok(Cow::Borrowed(&self.samples[index]))
    }
}

/// A collection of [`GraphSample`]s.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<GraphSample>,
}

/// Train / validation / test split of a [`Dataset`].
#[derive(Debug, Clone)]
pub struct Split {
    /// Training samples (80% in the paper).
    pub train: Dataset,
    /// Validation samples (10%).
    pub validation: Dataset,
    /// Test samples (10%).
    pub test: Dataset,
}

impl Dataset {
    /// Creates a dataset from samples.
    pub fn new(samples: Vec<GraphSample>) -> Self {
        Dataset { samples }
    }

    /// Materialises any [`SampleSource`] into an in-memory dataset. This is
    /// the fallback for predictors without a native streaming path — it
    /// trades the source's memory bound for the simplicity of one `Vec`.
    ///
    /// # Errors
    /// Propagates the first fetch failure.
    pub fn from_source(source: &(impl SampleSource + ?Sized)) -> Result<Dataset> {
        let mut samples = Vec::with_capacity(source.len());
        for index in 0..source.len() {
            samples.push(source.fetch(index)?.into_owned());
        }
        Ok(Dataset::new(samples))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total number of nodes across all samples (the node-level dataset size).
    pub fn total_nodes(&self) -> usize {
        self.samples.iter().map(GraphSample::num_nodes).sum()
    }

    /// Randomly splits the dataset into train/validation/test parts with the
    /// given fractions (the remainder goes to test), shuffling with `seed`.
    ///
    /// Train and validation counts are rounded to the nearest sample, but the
    /// rounding remainder is redistributed: if the implied test fraction is
    /// nonzero, the test set receives at least one sample whenever that does
    /// not require emptying the training set (independent rounding used to be
    /// able to consume all samples — e.g. 5 samples at 0.7/0.2 rounded to
    /// 4 + 1, silently leaving an empty test set for downstream metrics to
    /// "ace"). The donated sample comes from the larger of train/validation,
    /// preferring validation on a tie and never taking the last training
    /// sample — a split that cannot train is worse than a missing test
    /// sample.
    ///
    /// # Panics
    /// Panics when either fraction is outside `[0, 1]`, not finite, or the
    /// two sum past 1 — such a split is a configuration bug, not a dataset
    /// property.
    pub fn split(&self, train_fraction: f64, validation_fraction: f64, seed: u64) -> Split {
        assert!(
            (0.0..=1.0).contains(&train_fraction) && (0.0..=1.0).contains(&validation_fraction),
            "split fractions must be within [0, 1], got train = {train_fraction}, \
             validation = {validation_fraction}"
        );
        assert!(
            train_fraction + validation_fraction <= 1.0 + 1e-9,
            "split fractions must sum to at most 1, got train = {train_fraction}, \
             validation = {validation_fraction}"
        );
        let count = self.samples.len();
        let mut indices: Vec<usize> = (0..count).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let test_fraction = (1.0 - train_fraction - validation_fraction).max(0.0);
        let mut train_count = ((count as f64 * train_fraction).round() as usize).min(count);
        let mut validation_count =
            ((count as f64 * validation_fraction).round() as usize).min(count - train_count);
        if test_fraction > 1e-9 && train_count + validation_count == count && count > 0 {
            // Redistribute the rounding remainder into the test set without
            // ever emptying the training set.
            if validation_count > 0 && (validation_count >= train_count || train_count <= 1) {
                validation_count -= 1;
            } else if train_count > 1 {
                train_count -= 1;
            }
        }
        let take = |slice: &[usize]| {
            Dataset::new(slice.iter().map(|&index| self.samples[index].clone()).collect())
        };
        let validation_end = train_count + validation_count;
        Split {
            train: take(&indices[..train_count]),
            validation: take(&indices[train_count..validation_end]),
            test: take(&indices[validation_end..]),
        }
    }

    /// Builds the real-world generalisation set (MachSuite / CHStone /
    /// PolyBench analogues), used only for evaluation in the paper.
    ///
    /// # Errors
    /// Propagates flow errors.
    pub fn real_world(device: &FpgaDevice) -> Result<Dataset> {
        let mut samples = Vec::new();
        for kernel in all_kernels() {
            let sample = GraphSample::from_function(&kernel.function, GraphKind::Cdfg, device)?;
            samples.push(sample);
        }
        Ok(Dataset::new(samples))
    }
}

/// Builder for synthetic DFG/CDFG corpora (the `ldrgen`-generated part of the
/// benchmark).
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    family: ProgramFamily,
    count: usize,
    seed: u64,
    device: FpgaDevice,
    config: Option<SyntheticConfig>,
}

impl DatasetBuilder {
    /// Starts a builder for the given program family.
    pub fn new(family: ProgramFamily) -> Self {
        DatasetBuilder { family, count: 100, seed: 0, device: FpgaDevice::default(), config: None }
    }

    /// Number of programs to generate (default 100).
    pub fn count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// Generation seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Target device (default: the 100 MHz medium part).
    pub fn device(mut self, device: FpgaDevice) -> Self {
        self.device = device;
        self
    }

    /// Overrides the synthetic-generator configuration.
    pub fn generator_config(mut self, config: SyntheticConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Generates the programs and runs the flow on each of them.
    ///
    /// # Errors
    /// Returns an error if the corpus would be empty or if any program fails
    /// the flow (generated programs are valid by construction, so a failure
    /// indicates a bug in the substrates).
    pub fn build(self) -> Result<Dataset> {
        if self.count == 0 {
            return Err(Error::DatasetTooSmall("requested a dataset of zero programs".to_owned()));
        }
        let config = self.config.unwrap_or_else(|| match self.family {
            ProgramFamily::StraightLine => SyntheticConfig::straight_line(),
            ProgramFamily::Control => SyntheticConfig::control(),
        });
        let kind = self.family.graph_kind();
        let mut generator = ProgramGenerator::new(config, self.seed);
        let mut samples = Vec::with_capacity(self.count);
        for func in generator.generate_many(self.count) {
            samples.push(GraphSample::from_function(&func, kind, &self.device)?);
        }
        Ok(Dataset::new(samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset(family: ProgramFamily, count: usize) -> Dataset {
        DatasetBuilder::new(family)
            .count(count)
            .seed(11)
            .generator_config(SyntheticConfig::tiny(family))
            .build()
            .expect("dataset builds")
    }

    #[test]
    fn dfg_dataset_has_consistent_per_sample_shapes() {
        let dataset = tiny_dataset(ProgramFamily::StraightLine, 6);
        assert_eq!(dataset.len(), 6);
        for sample in &dataset.samples {
            assert_eq!(sample.kind, GraphKind::Dfg);
            assert_eq!(sample.node_features.len(), sample.num_nodes());
            assert_eq!(sample.node_aux_resources.len(), sample.num_nodes());
            assert_eq!(sample.node_resource_types.len(), sample.num_nodes());
            assert!(sample.targets.iter().all(|t| t.is_finite() && *t >= 0.0));
            assert!(sample.hls_estimate[1] > 0.0, "HLS always reports some LUTs");
            // Mirrored edges double the edge count.
            assert_eq!(sample.structure.edge_count() % 2, 0);
        }
        assert!(dataset.total_nodes() > dataset.len());
    }

    #[test]
    fn cdfg_dataset_uses_control_relations() {
        let dataset = tiny_dataset(ProgramFamily::Control, 6);
        assert!(dataset.samples.iter().any(|sample| sample
            .structure
            .edge_relation
            .iter()
            .any(|&r| r >= 2)));
        assert_eq!(dataset.samples[0].structure.num_relations, GraphSample::NUM_RELATIONS);
    }

    #[test]
    fn node_labels_are_binary_and_sometimes_positive() {
        let dataset = tiny_dataset(ProgramFamily::Control, 4);
        let mut lut_positives = 0usize;
        for sample in &dataset.samples {
            for labels in &sample.node_resource_types {
                assert!(labels.iter().all(|&l| l == 0.0 || l == 1.0));
                lut_positives += usize::from(labels[1] > 0.5);
            }
        }
        assert!(lut_positives > 0, "some nodes must use LUTs");
    }

    #[test]
    fn split_fractions_are_respected() {
        let dataset = tiny_dataset(ProgramFamily::StraightLine, 10);
        let split = dataset.split(0.8, 0.1, 3);
        assert_eq!(split.train.len(), 8);
        assert_eq!(split.validation.len(), 1);
        assert_eq!(split.test.len(), 1);
        // Splitting with the same seed is deterministic.
        let again = dataset.split(0.8, 0.1, 3);
        assert_eq!(
            split.train.samples.iter().map(|s| s.name.clone()).collect::<Vec<_>>(),
            again.train.samples.iter().map(|s| s.name.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_remainder_is_redistributed_into_a_nonzero_test_fraction() {
        // 5 samples at 0.7/0.2: independent rounding gives 4 + 1 = 5, which
        // used to leave the 0.1 test fraction with zero samples.
        let dataset = tiny_dataset(ProgramFamily::StraightLine, 5);
        let split = dataset.split(0.7, 0.2, 3);
        assert_eq!(split.train.len() + split.validation.len() + split.test.len(), 5);
        assert!(!split.test.is_empty(), "a nonzero test fraction must yield a nonzero test set");
        // A genuinely zero test fraction still yields an empty test set.
        let no_test = dataset.split(0.8, 0.2, 3);
        assert_eq!(no_test.test.len(), 0);
        assert_eq!(no_test.train.len() + no_test.validation.len(), 5);
    }

    #[test]
    fn split_redistribution_never_empties_the_train_set() {
        // 2 samples at 0.4/0.4 round to 1 + 1; the test sample must come out
        // of validation, not train (an untrainable split is worse than a
        // missing test sample).
        let pair = tiny_dataset(ProgramFamily::StraightLine, 2);
        let split = pair.split(0.4, 0.4, 7);
        assert_eq!(split.train.len(), 1);
        assert_eq!(split.validation.len(), 0);
        assert_eq!(split.test.len(), 1);
        // A single sample stays in train even for a nonzero test fraction —
        // the guarantee yields rather than producing an untrainable split.
        let single = tiny_dataset(ProgramFamily::StraightLine, 1);
        let split = single.split(0.7, 0.2, 7);
        assert_eq!(split.train.len(), 1);
        assert_eq!(split.test.len(), 0);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn split_rejects_out_of_range_fractions() {
        tiny_dataset(ProgramFamily::StraightLine, 4).split(1.2, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn split_rejects_fractions_summing_past_one() {
        tiny_dataset(ProgramFamily::StraightLine, 4).split(0.8, 0.5, 0);
    }

    #[test]
    fn zero_count_is_rejected() {
        let result = DatasetBuilder::new(ProgramFamily::StraightLine).count(0).build();
        assert!(matches!(result, Err(Error::DatasetTooSmall(_))));
    }

    #[test]
    fn real_world_set_covers_all_three_suites() {
        let dataset = Dataset::real_world(&FpgaDevice::default()).expect("kernels run the flow");
        assert!(dataset.len() >= 40, "expected the full kernel suite, got {}", dataset.len());
        assert!(dataset.samples.iter().all(|s| s.kind == GraphKind::Cdfg));
        assert!(dataset.samples.iter().any(|s| s.name.starts_with("ms_")));
        assert!(dataset.samples.iter().any(|s| s.name.starts_with("ch_")));
        assert!(dataset.samples.iter().any(|s| s.name.starts_with("pb_")));
    }
}
