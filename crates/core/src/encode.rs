//! Feature encoding: Table-1 categorical features → learned embeddings, plus
//! the approach-specific auxiliary channels.
//!
//! * [`FeatureMode::Base`] — only the seven off-the-shelf features.
//! * [`FeatureMode::ResourceValues`] — adds the per-node DSP/LUT/FF estimates
//!   from the HLS intermediate results (knowledge-rich approach).
//! * [`FeatureMode::ResourceTypes`] — adds three binary resource-type flags,
//!   taken from the ground truth during training and from the node-level
//!   classifier during inference (knowledge-infused approach).

use gnn_tensor::{Embedding, Matrix, Var};
use hls_ir::features::NodeFeatures;
use rand::rngs::StdRng;

use crate::dataset::GraphSample;

/// Which auxiliary information is appended to the base features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FeatureMode {
    /// Off-the-shelf approach: Table-1 features only.
    #[default]
    Base,
    /// Knowledge-rich approach: per-node HLS resource values.
    ResourceValues,
    /// Knowledge-infused approach: per-node resource-type flags.
    ResourceTypes,
}

impl FeatureMode {
    /// Number of auxiliary feature columns this mode appends.
    pub fn aux_width(self) -> usize {
        match self {
            FeatureMode::Base => 0,
            FeatureMode::ResourceValues | FeatureMode::ResourceTypes => 3,
        }
    }

    /// Short name used in reports (`""`, `"-R"`, `"-I"`), matching the paper's
    /// table notation.
    pub fn suffix(self) -> &'static str {
        match self {
            FeatureMode::Base => "",
            FeatureMode::ResourceValues => "-R",
            FeatureMode::ResourceTypes => "-I",
        }
    }
}

/// True when `HLSGNN_FEATURES` lists the `analytic` token, enabling the three
/// static-analysis bound columns (`[chain depth, on-recurrence, port
/// pressure]`) as extra node features. Off by default, so the encoding — and
/// every trained artefact — is bit-identical unless explicitly opted in. The
/// knob is read at encoder construction; keep it consistent between training
/// a model and loading its snapshot, or the input width will not match.
pub fn analytic_features_enabled() -> bool {
    std::env::var("HLSGNN_FEATURES")
        .is_ok_and(|raw| raw.split(',').any(|token| token.trim() == "analytic"))
}

/// Learned encoder from [`NodeFeatures`] (plus auxiliary channels) to the GNN
/// input matrix.
#[derive(Debug)]
pub struct FeatureEncoder {
    mode: FeatureMode,
    node_type: Embedding,
    bitwidth: Embedding,
    category: Embedding,
    opcode: Embedding,
    embed_dim: usize,
    analytic: bool,
}

/// Number of plain numeric base features (is-start-of-path, normalised cluster
/// group).
const NUMERIC_BASE_FEATURES: usize = 2;

impl FeatureEncoder {
    /// Creates an encoder whose categorical embeddings all have `embed_dim`
    /// columns.
    pub fn new(mode: FeatureMode, embed_dim: usize, rng: &mut StdRng) -> Self {
        FeatureEncoder {
            mode,
            node_type: Embedding::new(NodeFeatures::NODE_TYPE_VOCAB, embed_dim, rng),
            bitwidth: Embedding::new(NodeFeatures::BITWIDTH_BUCKETS, embed_dim, rng),
            category: Embedding::new(NodeFeatures::OPCODE_CATEGORY_VOCAB, embed_dim, rng),
            opcode: Embedding::new(NodeFeatures::OPCODE_VOCAB, embed_dim, rng),
            embed_dim,
            analytic: analytic_features_enabled(),
        }
    }

    /// The feature mode of this encoder.
    pub fn mode(&self) -> FeatureMode {
        self.mode
    }

    /// Overrides the `HLSGNN_FEATURES=analytic` opt-in programmatically —
    /// the env knob only sets the default at construction. Must be applied
    /// before the downstream GNN stack is sized off [`Self::output_dim`].
    pub fn with_analytic(mut self, enabled: bool) -> Self {
        self.analytic = enabled;
        self
    }

    /// Width of the encoded node-feature matrix.
    pub fn output_dim(&self) -> usize {
        4 * self.embed_dim
            + NUMERIC_BASE_FEATURES
            + self.mode.aux_width()
            + 3 * usize::from(self.analytic)
    }

    /// Log-compresses one analytic feature triple: depth and pressure are
    /// unbounded counts, the recurrence flag passes through.
    fn analytic_columns(values: &[f32; 3]) -> [f32; 3] {
        [(values[0].max(0.0) + 1.0).ln(), values[1], (values[2].max(0.0) + 1.0).ln()]
    }

    /// Encodes one sample. For [`FeatureMode::ResourceTypes`],
    /// `type_override` replaces the ground-truth flags (used at inference time
    /// with the classifier's self-inferred types); it must have one `[f32; 3]`
    /// entry per node.
    ///
    /// # Panics
    /// Panics if `type_override` is provided with the wrong length.
    pub fn encode(&self, sample: &GraphSample, type_override: Option<&[[f32; 3]]>) -> Var {
        let assemble = gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Assemble);
        let n = sample.num_nodes();
        let node_type_ids: Vec<usize> = sample.node_features.iter().map(|f| f.node_type).collect();
        let bitwidth_ids: Vec<usize> =
            sample.node_features.iter().map(|f| f.bitwidth_bucket()).collect();
        let category_ids: Vec<usize> =
            sample.node_features.iter().map(|f| f.opcode_category).collect();
        let opcode_ids: Vec<usize> = sample.node_features.iter().map(|f| f.opcode).collect();

        let numeric = Matrix::from_fn(n, NUMERIC_BASE_FEATURES, |row, col| {
            let feature = &sample.node_features[row];
            match col {
                0 => f32::from(feature.is_start_of_path),
                _ => (feature.cluster_group as f32 / 32.0).clamp(-1.0, 8.0),
            }
        });
        drop(assemble);

        let mut parts = vec![
            self.node_type.forward(&node_type_ids),
            self.bitwidth.forward(&bitwidth_ids),
            self.category.forward(&category_ids),
            self.opcode.forward(&opcode_ids),
            Var::new(numeric),
        ];

        match self.mode {
            FeatureMode::Base => {}
            FeatureMode::ResourceValues => {
                let aux = Matrix::from_fn(n, 3, |row, col| {
                    (sample.node_aux_resources[row][col].max(0.0) + 1.0).ln()
                });
                parts.push(Var::new(aux));
            }
            FeatureMode::ResourceTypes => {
                let flags: &[[f32; 3]] = match type_override {
                    Some(flags) => {
                        assert_eq!(flags.len(), n, "type override must cover every node");
                        flags
                    }
                    None => &sample.node_resource_types,
                };
                let aux = Matrix::from_fn(n, 3, |row, col| flags[row][col]);
                parts.push(Var::new(aux));
            }
        }

        if self.analytic {
            let aux = Matrix::from_fn(n, 3, |row, col| {
                Self::analytic_columns(&sample.node_analytic[row])[col]
            });
            parts.push(Var::new(aux));
        }

        Var::concat_cols(&parts)
    }

    /// Encodes a fused mini-batch: one feature matrix covering every node of
    /// every sample, rows in sample order then node order — exactly the node
    /// order of [`gnn::GraphBatch::fuse`] over the same samples. Each
    /// embedding table is consulted once for the whole batch, and every row
    /// is bit-identical to the row [`FeatureEncoder::encode`] would produce
    /// for that sample alone.
    ///
    /// `type_overrides`, when provided, must carry one override per sample
    /// (see [`FeatureEncoder::encode`]).
    ///
    /// # Panics
    /// Panics if `samples` is empty or an override has the wrong length.
    pub fn encode_batch(
        &self,
        samples: &[&GraphSample],
        type_overrides: Option<&[Vec<[f32; 3]>]>,
    ) -> Var {
        assert!(!samples.is_empty(), "cannot encode an empty batch");
        if let Some(overrides) = type_overrides {
            assert_eq!(overrides.len(), samples.len(), "one type override per sample");
        }
        let assemble = gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Assemble);
        let total_nodes: usize = samples.iter().map(|s| s.num_nodes()).sum();
        let mut node_type_ids = Vec::with_capacity(total_nodes);
        let mut bitwidth_ids = Vec::with_capacity(total_nodes);
        let mut category_ids = Vec::with_capacity(total_nodes);
        let mut opcode_ids = Vec::with_capacity(total_nodes);
        let mut numeric = Matrix::zeros(total_nodes, NUMERIC_BASE_FEATURES);
        let mut row = 0;
        for sample in samples {
            // Index by node position (not by iterating the feature list) so a
            // sample with missing per-node entries panics like the per-graph
            // encoder would, instead of silently shifting every following
            // sample's rows.
            for node in 0..sample.num_nodes() {
                let feature = &sample.node_features[node];
                node_type_ids.push(feature.node_type);
                bitwidth_ids.push(feature.bitwidth_bucket());
                category_ids.push(feature.opcode_category);
                opcode_ids.push(feature.opcode);
                numeric.set(row, 0, f32::from(feature.is_start_of_path));
                numeric.set(row, 1, (feature.cluster_group as f32 / 32.0).clamp(-1.0, 8.0));
                row += 1;
            }
        }
        drop(assemble);

        let mut parts = vec![
            self.node_type.forward(&node_type_ids),
            self.bitwidth.forward(&bitwidth_ids),
            self.category.forward(&category_ids),
            self.opcode.forward(&opcode_ids),
            Var::new(numeric),
        ];

        match self.mode {
            FeatureMode::Base => {}
            FeatureMode::ResourceValues => {
                let mut aux = Matrix::zeros(total_nodes, 3);
                let mut row = 0;
                for sample in samples {
                    for node in 0..sample.num_nodes() {
                        for (col, &value) in sample.node_aux_resources[node].iter().enumerate() {
                            aux.set(row, col, (value.max(0.0) + 1.0).ln());
                        }
                        row += 1;
                    }
                }
                parts.push(Var::new(aux));
            }
            FeatureMode::ResourceTypes => {
                let mut aux = Matrix::zeros(total_nodes, 3);
                let mut row = 0;
                for (index, sample) in samples.iter().enumerate() {
                    let flags: &[[f32; 3]] = match type_overrides {
                        Some(overrides) => {
                            let flags = &overrides[index];
                            assert_eq!(
                                flags.len(),
                                sample.num_nodes(),
                                "type override must cover every node"
                            );
                            flags
                        }
                        None => &sample.node_resource_types,
                    };
                    assert_eq!(
                        flags.len(),
                        sample.num_nodes(),
                        "resource-type flags must cover every node"
                    );
                    for values in flags {
                        for (col, &value) in values.iter().enumerate() {
                            aux.set(row, col, value);
                        }
                        row += 1;
                    }
                }
                parts.push(Var::new(aux));
            }
        }

        if self.analytic {
            let mut aux = Matrix::zeros(total_nodes, 3);
            let mut row = 0;
            for sample in samples {
                for node in 0..sample.num_nodes() {
                    let columns = Self::analytic_columns(&sample.node_analytic[node]);
                    for (col, value) in columns.into_iter().enumerate() {
                        aux.set(row, col, value);
                    }
                    row += 1;
                }
            }
            parts.push(Var::new(aux));
        }

        Var::concat_cols(&parts)
    }

    /// Trainable parameters (the four embedding tables).
    pub fn parameters(&self) -> Vec<Var> {
        let mut params = self.node_type.parameters();
        params.extend(self.bitwidth.parameters());
        params.extend(self.category.parameters());
        params.extend(self.opcode.parameters());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};
    use rand::SeedableRng;

    fn sample() -> GraphSample {
        DatasetBuilder::new(ProgramFamily::Control)
            .count(1)
            .seed(5)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::Control))
            .build()
            .unwrap()
            .samples
            .remove(0)
    }

    #[test]
    fn output_width_tracks_mode() {
        let mut rng = StdRng::seed_from_u64(0);
        let base = FeatureEncoder::new(FeatureMode::Base, 4, &mut rng);
        let rich = FeatureEncoder::new(FeatureMode::ResourceValues, 4, &mut rng);
        let infused = FeatureEncoder::new(FeatureMode::ResourceTypes, 4, &mut rng);
        assert_eq!(base.output_dim(), 18);
        assert_eq!(rich.output_dim(), 21);
        assert_eq!(infused.output_dim(), 21);
        assert_eq!(base.mode(), FeatureMode::Base);
    }

    #[test]
    fn encoded_matrix_matches_graph_and_width() {
        let sample = sample();
        let mut rng = StdRng::seed_from_u64(1);
        for mode in [FeatureMode::Base, FeatureMode::ResourceValues, FeatureMode::ResourceTypes] {
            let encoder = FeatureEncoder::new(mode, 5, &mut rng);
            let encoded = encoder.encode(&sample, None);
            assert_eq!(encoded.shape(), (sample.num_nodes(), encoder.output_dim()));
            assert!(!encoded.value().has_non_finite());
        }
    }

    #[test]
    fn type_override_changes_the_encoding() {
        let sample = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let encoder = FeatureEncoder::new(FeatureMode::ResourceTypes, 4, &mut rng);
        let ground_truth = encoder.encode(&sample, None).value();
        let flipped: Vec<[f32; 3]> = sample
            .node_resource_types
            .iter()
            .map(|labels| [1.0 - labels[0], 1.0 - labels[1], 1.0 - labels[2]])
            .collect();
        let overridden = encoder.encode(&sample, Some(&flipped)).value();
        assert_ne!(ground_truth, overridden);
    }

    #[test]
    fn embeddings_receive_gradients() {
        let sample = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let encoder = FeatureEncoder::new(FeatureMode::Base, 4, &mut rng);
        encoder.encode(&sample, None).sum().backward();
        assert_eq!(encoder.parameters().len(), 4);
        assert!(encoder.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn analytic_columns_extend_the_width_and_change_the_encoding() {
        let sample = sample();
        let mut rng = StdRng::seed_from_u64(4);
        let plain = FeatureEncoder::new(FeatureMode::Base, 4, &mut rng).with_analytic(false);
        let mut rng = StdRng::seed_from_u64(4);
        let analytic = FeatureEncoder::new(FeatureMode::Base, 4, &mut rng).with_analytic(true);
        assert_eq!(analytic.output_dim(), plain.output_dim() + 3);
        let encoded = analytic.encode(&sample, None);
        assert_eq!(encoded.shape(), (sample.num_nodes(), analytic.output_dim()));
        assert!(!encoded.value().has_non_finite());
        // The tiny control program has a loop, so some operation carries a
        // nonzero analytic feature — the new columns are not dead weight.
        assert!(sample.node_analytic.iter().any(|f| f.iter().any(|&v| v > 0.0)));
        // The shared embedding prefix is unchanged: the analytic columns are
        // purely appended.
        let base = plain.encode(&sample, None).value();
        let extended = encoded.value();
        for row in 0..sample.num_nodes() {
            for col in 0..plain.output_dim() {
                assert_eq!(base.get(row, col), extended.get(row, col));
            }
        }
    }

    #[test]
    fn analytic_batch_rows_match_per_sample_encoding() {
        let dataset = DatasetBuilder::new(ProgramFamily::Control)
            .count(3)
            .seed(9)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::Control))
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let encoder = FeatureEncoder::new(FeatureMode::Base, 4, &mut rng).with_analytic(true);
        let samples: Vec<&GraphSample> = dataset.samples.iter().collect();
        let fused = encoder.encode_batch(&samples, None).value();
        let mut row = 0;
        for sample in &samples {
            let single = encoder.encode(sample, None).value();
            for node in 0..sample.num_nodes() {
                for col in 0..encoder.output_dim() {
                    assert_eq!(single.get(node, col), fused.get(row, col));
                }
                row += 1;
            }
        }
    }

    #[test]
    fn suffixes_match_paper_notation() {
        assert_eq!(FeatureMode::Base.suffix(), "");
        assert_eq!(FeatureMode::ResourceValues.suffix(), "-R");
        assert_eq!(FeatureMode::ResourceTypes.suffix(), "-I");
    }
}
