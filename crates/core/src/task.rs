//! Problem formulation: the graph-level regression targets and the node-level
//! classification tasks of §3.1.

use std::fmt;

/// The four graph-level regression targets: three resource counts and the
/// critical-path timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TargetMetric {
    /// DSP block usage.
    Dsp,
    /// Look-up table usage.
    Lut,
    /// Flip-flop usage.
    Ff,
    /// Critical-path timing in nanoseconds.
    Cp,
}

impl TargetMetric {
    /// All targets in the column order used by the paper's tables.
    pub const ALL: [TargetMetric; 4] =
        [TargetMetric::Dsp, TargetMetric::Lut, TargetMetric::Ff, TargetMetric::Cp];

    /// Number of targets.
    pub const COUNT: usize = Self::ALL.len();

    /// Column index of this target in `[DSP, LUT, FF, CP]` vectors.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|t| *t == self).expect("target present in ALL")
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            TargetMetric::Dsp => "DSP",
            TargetMetric::Lut => "LUT",
            TargetMetric::Ff => "FF",
            TargetMetric::Cp => "CP",
        }
    }
}

impl fmt::Display for TargetMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three binary node-level classification tasks (does this node use a
/// DSP / LUT / FF in the final implementation?). A node matching none of the
/// three is "empty".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ResourceClass {
    /// Node is implemented (at least partly) with DSP blocks.
    Dsp,
    /// Node is implemented (at least partly) with LUTs.
    Lut,
    /// Node is implemented (at least partly) with flip-flops.
    Ff,
}

impl ResourceClass {
    /// All classes in the column order used by Table 3.
    pub const ALL: [ResourceClass; 3] = [ResourceClass::Dsp, ResourceClass::Lut, ResourceClass::Ff];

    /// Number of classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Column index of this class in `[DSP, LUT, FF]` label vectors.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).expect("class present in ALL")
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ResourceClass::Dsp => "DSP",
            ResourceClass::Lut => "LUT",
            ResourceClass::Ff => "FF",
        }
    }
}

impl fmt::Display for ResourceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_indices_are_dense_and_ordered() {
        assert_eq!(TargetMetric::Dsp.index(), 0);
        assert_eq!(TargetMetric::Lut.index(), 1);
        assert_eq!(TargetMetric::Ff.index(), 2);
        assert_eq!(TargetMetric::Cp.index(), 3);
        assert_eq!(TargetMetric::COUNT, 4);
    }

    #[test]
    fn resource_class_indices_match_label_layout() {
        for (expected, class) in ResourceClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), expected);
        }
        assert_eq!(ResourceClass::COUNT, 3);
    }

    #[test]
    fn names_match_paper_columns() {
        assert_eq!(TargetMetric::Cp.to_string(), "CP");
        assert_eq!(ResourceClass::Lut.to_string(), "LUT");
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&TargetMetric::Lut).unwrap();
        assert_eq!(serde_json::from_str::<TargetMetric>(&json).unwrap(), TargetMetric::Lut);
    }
}
