//! The two model shapes used throughout the paper: the graph-level regressor
//! (feature encoder → GNN stack → pooling → FFN head) and the node-level
//! resource-type classifier (feature encoder → GNN stack → linear head).

use gnn::{GnnKind, GnnStack, GraphBatch, Pooling};
use gnn_tensor::{Linear, Mlp, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::GraphSample;
use crate::encode::{FeatureEncoder, FeatureMode};
use crate::task::{ResourceClass, TargetMetric};
use crate::train::TrainConfig;

/// Graph-level regressor predicting the normalised `[DSP, LUT, FF, CP]`
/// vector of one design.
#[derive(Debug)]
pub struct GraphRegressor {
    encoder: FeatureEncoder,
    stack: GnnStack,
    pooling: Pooling,
    head: Mlp,
    kind: GnnKind,
}

impl GraphRegressor {
    /// Builds a regressor for the given backbone and feature mode. The
    /// analytic-bound feature columns follow the `HLSGNN_FEATURES=analytic`
    /// opt-in (see [`crate::encode::analytic_features_enabled`]).
    pub fn new(kind: GnnKind, mode: FeatureMode, config: &TrainConfig) -> Self {
        Self::with_analytic_features(kind, mode, config, crate::encode::analytic_features_enabled())
    }

    /// [`GraphRegressor::new`] with the analytic-bound feature columns
    /// enabled or disabled programmatically instead of through the
    /// environment — the ablation harness trains both variants side by side
    /// in one process. Parameter initialisation draws the same RNG stream
    /// either way; only the first GNN layer's input width differs.
    pub fn with_analytic_features(
        kind: GnnKind,
        mode: FeatureMode,
        config: &TrainConfig,
        analytic: bool,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let encoder = FeatureEncoder::new(mode, config.embed_dim, &mut rng).with_analytic(analytic);
        let stack = GnnStack::new(
            kind,
            encoder.output_dim(),
            config.hidden_dim,
            config.num_layers,
            GraphSample::NUM_RELATIONS,
            &mut rng,
        )
        .with_dropout(config.dropout);
        // The paper's regression head: hidden — 2·hidden — hidden — targets.
        let head = Mlp::new(
            &[config.hidden_dim, 2 * config.hidden_dim, config.hidden_dim, TargetMetric::COUNT],
            &mut rng,
        );
        GraphRegressor { encoder, stack, pooling: config.pooling, head, kind }
    }

    /// Backbone kind of this regressor.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Feature mode of this regressor.
    pub fn mode(&self) -> FeatureMode {
        self.encoder.mode()
    }

    /// Forward pass producing a `1 × 4` normalised prediction.
    /// `type_override` supplies self-inferred resource types at inference time
    /// for the knowledge-infused approach.
    pub fn forward(
        &self,
        sample: &GraphSample,
        type_override: Option<&[[f32; 3]]>,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let features = self.encoder.encode(sample, type_override);
        let embeddings = self.stack.forward(&sample.structure, &features, training, rng);
        let pooled = self.pooling.apply(&embeddings);
        self.head.forward(&pooled)
    }

    /// Fused forward pass over a mini-batch, producing a `B × 4` normalised
    /// prediction matrix — one row per sample, in order. The samples'
    /// structures are disjoint-unioned into one [`GraphBatch`] super-graph,
    /// so the whole mini-batch shares a single autodiff tape; segment-aware
    /// pooling reads out one graph embedding per member graph.
    ///
    /// At inference (`training = false`, dropout inactive) every output row
    /// is bit-identical to the `1 × 4` result of [`GraphRegressor::forward`]
    /// on that sample alone. During training the fused tape draws dropout
    /// masks in one pass over the super-graph, so with nonzero dropout the
    /// RNG stream differs from per-graph forwards.
    ///
    /// `type_overrides`, when provided, carries one override per sample (the
    /// knowledge-infused inference path).
    ///
    /// # Panics
    /// Panics if `samples` is empty or an override has the wrong length.
    pub fn forward_batch(
        &self,
        samples: &[&GraphSample],
        type_overrides: Option<&[Vec<[f32; 3]>]>,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        assert!(!samples.is_empty(), "cannot run a fused forward pass on an empty batch");
        let assemble = gnn_tensor::profile::phase_timer(gnn_tensor::profile::Phase::Assemble);
        let structures: Vec<&gnn::GraphData> = samples.iter().map(|s| &s.structure).collect();
        let batch = GraphBatch::fuse(&structures);
        drop(assemble);
        let features = self.encoder.encode_batch(samples, type_overrides);
        let embeddings = self.stack.forward(batch.graph(), &features, training, rng);
        let pooled =
            self.pooling.apply_segmented(&embeddings, batch.segments(), batch.num_graphs());
        self.head.forward(&pooled)
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut params = self.encoder.parameters();
        params.extend(self.stack.parameters());
        params.extend(self.head.parameters());
        params
    }

    /// Snapshot of all parameter values (a "state dict"), in a stable order.
    pub fn state(&self) -> Vec<Matrix> {
        self.parameters().iter().map(Var::value).collect()
    }

    /// Restores a parameter snapshot taken from a regressor with the same
    /// architecture (backbone, feature mode and [`TrainConfig`] dimensions).
    ///
    /// # Errors
    /// Returns [`crate::Error::Config`] if the number or shapes of the
    /// matrices do not match this model's parameters.
    pub fn load_state(&self, state: &[Matrix]) -> crate::Result<()> {
        load_state_into(&self.parameters(), state)
    }
}

use gnn_tensor::Matrix;

/// Copies `state` into `params`, validating counts and shapes.
fn load_state_into(params: &[Var], state: &[Matrix]) -> crate::Result<()> {
    if params.len() != state.len() {
        return Err(crate::Error::Config(format!(
            "state has {} tensors but the model has {} parameters",
            state.len(),
            params.len()
        )));
    }
    for (index, (param, value)) in params.iter().zip(state).enumerate() {
        if param.shape() != value.shape() {
            return Err(crate::Error::Config(format!(
                "parameter {index} has shape {:?} but the state provides {:?}",
                param.shape(),
                value.shape()
            )));
        }
    }
    for (param, value) in params.iter().zip(state) {
        param.set_value(value.clone());
    }
    Ok(())
}

/// Node-level classifier predicting, for every node, which resource types it
/// will use in the final implementation (three binary tasks).
#[derive(Debug)]
pub struct NodeClassifierModel {
    encoder: FeatureEncoder,
    stack: GnnStack,
    head: Linear,
    kind: GnnKind,
}

impl NodeClassifierModel {
    /// Builds a node classifier for the given backbone.
    pub fn new(kind: GnnKind, config: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        let encoder = FeatureEncoder::new(FeatureMode::Base, config.embed_dim, &mut rng);
        let stack = GnnStack::new(
            kind,
            encoder.output_dim(),
            config.hidden_dim,
            config.num_layers,
            GraphSample::NUM_RELATIONS,
            &mut rng,
        )
        .with_dropout(config.dropout);
        let head = Linear::new(config.hidden_dim, ResourceClass::COUNT, &mut rng);
        NodeClassifierModel { encoder, stack, head, kind }
    }

    /// Backbone kind of this classifier.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// Forward pass producing `n × 3` logits.
    pub fn forward(&self, sample: &GraphSample, training: bool, rng: &mut StdRng) -> Var {
        let features = self.encoder.encode(sample, None);
        let embeddings = self.stack.forward(&sample.structure, &features, training, rng);
        self.head.forward(&embeddings)
    }

    /// Predicted resource-type flags (0/1) per node, thresholding the logits
    /// at zero (sigmoid 0.5).
    pub fn predict_types(&self, sample: &GraphSample, rng: &mut StdRng) -> Vec<[f32; 3]> {
        let logits = self.forward(sample, false, rng).value();
        // Single-use inference tape: recycle its buffers right away.
        gnn_tensor::tape::reset();
        (0..sample.num_nodes())
            .map(|node| {
                [
                    f32::from(logits.get(node, 0) > 0.0),
                    f32::from(logits.get(node, 1) > 0.0),
                    f32::from(logits.get(node, 2) > 0.0),
                ]
            })
            .collect()
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut params = self.encoder.parameters();
        params.extend(self.stack.parameters());
        params.extend(self.head.parameters());
        params
    }

    /// Snapshot of all parameter values, in a stable order.
    pub fn state(&self) -> Vec<Matrix> {
        self.parameters().iter().map(Var::value).collect()
    }

    /// Restores a parameter snapshot taken from a classifier with the same
    /// architecture.
    ///
    /// # Errors
    /// Returns [`crate::Error::Config`] on a count or shape mismatch.
    pub fn load_state(&self, state: &[Matrix]) -> crate::Result<()> {
        load_state_into(&self.parameters(), state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;
    use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};

    fn sample() -> GraphSample {
        DatasetBuilder::new(ProgramFamily::Control)
            .count(1)
            .seed(9)
            .generator_config(SyntheticConfig::tiny(ProgramFamily::Control))
            .build()
            .unwrap()
            .samples
            .remove(0)
    }

    #[test]
    fn regressor_outputs_four_targets() {
        let config = TrainConfig::fast();
        let sample = sample();
        let mut rng = StdRng::seed_from_u64(0);
        for mode in [FeatureMode::Base, FeatureMode::ResourceValues, FeatureMode::ResourceTypes] {
            let model = GraphRegressor::new(GnnKind::Rgcn, mode, &config);
            let out = model.forward(&sample, None, false, &mut rng);
            assert_eq!(out.shape(), (1, TargetMetric::COUNT));
            assert_eq!(model.mode(), mode);
            assert_eq!(model.kind(), GnnKind::Rgcn);
            assert!(model.parameters().len() > 10);
        }
    }

    #[test]
    fn classifier_outputs_per_node_logits_and_types() {
        let config = TrainConfig::fast();
        let sample = sample();
        let model = NodeClassifierModel::new(GnnKind::GraphSage, &config);
        let mut rng = StdRng::seed_from_u64(1);
        let logits = model.forward(&sample, false, &mut rng);
        assert_eq!(logits.shape(), (sample.num_nodes(), ResourceClass::COUNT));
        let types = model.predict_types(&sample, &mut rng);
        assert_eq!(types.len(), sample.num_nodes());
        assert!(types.iter().flatten().all(|&flag| flag == 0.0 || flag == 1.0));
        assert_eq!(model.kind(), GnnKind::GraphSage);
    }

    #[test]
    fn regressor_gradients_reach_encoder_and_head() {
        let config = TrainConfig::fast();
        let sample = sample();
        let model = GraphRegressor::new(GnnKind::Gcn, FeatureMode::Base, &config);
        let mut rng = StdRng::seed_from_u64(2);
        model.forward(&sample, None, true, &mut rng).sum().backward();
        let with_grad = model.parameters().iter().filter(|p| p.grad().is_some()).count();
        assert!(with_grad * 2 >= model.parameters().len());
    }

    #[test]
    fn state_round_trips_between_identical_architectures() {
        let config = TrainConfig::fast();
        let sample = sample();
        let mut rng = StdRng::seed_from_u64(7);
        // Two regressors with different seeds have different weights.
        let source = GraphRegressor::new(GnnKind::Rgcn, FeatureMode::Base, &config);
        let target =
            GraphRegressor::new(GnnKind::Rgcn, FeatureMode::Base, &config.clone().with_seed(99));
        let before = target.forward(&sample, None, false, &mut rng).value();
        target.load_state(&source.state()).expect("state loads");
        let after = target.forward(&sample, None, false, &mut rng).value();
        let reference = source.forward(&sample, None, false, &mut rng).value();
        assert_ne!(before, after, "loading the state must change the weights");
        assert_eq!(after, reference, "loaded model predicts exactly like the source");
    }

    #[test]
    fn state_loading_rejects_mismatched_architectures() {
        let config = TrainConfig::fast();
        let mut larger = TrainConfig::fast();
        larger.hidden_dim *= 2;
        let small = GraphRegressor::new(GnnKind::Gcn, FeatureMode::Base, &config);
        let big = GraphRegressor::new(GnnKind::Gcn, FeatureMode::Base, &larger);
        assert!(big.load_state(&small.state()).is_err());
        let classifier = NodeClassifierModel::new(GnnKind::Gcn, &config);
        assert!(classifier.load_state(&[]).is_err());
        assert!(classifier.load_state(&classifier.state()).is_ok());
    }

    #[test]
    fn inference_is_deterministic() {
        let config = TrainConfig::fast();
        let sample = sample();
        let model = GraphRegressor::new(GnnKind::Pna, FeatureMode::Base, &config);
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(99);
        let a = model.forward(&sample, None, false, &mut rng_a).value();
        let b = model.forward(&sample, None, false, &mut rng_b).value();
        assert_eq!(a, b);
    }
}
