//! Neural-network building blocks: initialisation, linear layers, MLPs and
//! embedding tables.

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;
use crate::var::Var;

/// Xavier/Glorot uniform initialisation for a `rows × cols` weight matrix.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / (rows + cols).max(1) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

/// He/Kaiming uniform initialisation (suited to ReLU activations).
pub fn he_uniform(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let bound = (6.0 / rows.max(1) as f32).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-bound..=bound))
}

/// A dense affine layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Var,
    bias: Var,
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: Var::parameter(xavier_uniform(in_features, out_features, rng)),
            bias: Var::parameter(Matrix::zeros(1, out_features)),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// Applies the layer to an `n × in_features` input.
    pub fn forward(&self, input: &Var) -> Var {
        input.matmul(&self.weight).add_row_broadcast(&self.bias)
    }

    /// The trainable parameters (weight then bias).
    pub fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A feed-forward network with ReLU activations between layers.
///
/// The paper's regression head is the MLP `300-600-300-1`; graph-level models
/// instantiate exactly that shape on top of pooled graph embeddings.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Creates an MLP from a list of layer widths, e.g. `[300, 600, 300, 1]`.
    ///
    /// # Panics
    /// Panics if fewer than two widths are given.
    pub fn new(widths: &[usize], rng: &mut StdRng) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least an input and an output width");
        let layers = widths.windows(2).map(|pair| Linear::new(pair[0], pair[1], rng)).collect();
        Mlp { layers }
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Applies the network (ReLU between layers, no activation after the last).
    pub fn forward(&self, input: &Var) -> Var {
        let mut hidden = input.clone();
        for (index, layer) in self.layers.iter().enumerate() {
            hidden = layer.forward(&hidden);
            if index + 1 < self.layers.len() {
                hidden = hidden.relu();
            }
        }
        hidden
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(Linear::parameters).collect()
    }
}

/// A learned embedding table for categorical features.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Var,
}

impl Embedding {
    /// Creates a `vocab_size × dim` embedding table.
    pub fn new(vocab_size: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding { table: Var::parameter(xavier_uniform(vocab_size.max(1), dim, rng)) }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Looks up one embedding row per index (out-of-range indices are clamped
    /// to the last row, which acts as the "misc" bucket).
    pub fn forward(&self, indices: &[usize]) -> Var {
        let vocab = self.vocab_size();
        let clamped: Vec<usize> = indices.iter().map(|&index| index.min(vocab - 1)).collect();
        self.table.gather_rows(&clamped)
    }

    /// The trainable parameters (the table).
    pub fn parameters(&self) -> Vec<Var> {
        vec![self.table.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(50, 30, &mut rng);
        let bound = (6.0f32 / 80.0).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound + 1e-6));
        assert!(w.data().iter().any(|v| v.abs() > bound / 10.0));
        let h = he_uniform(50, 30, &mut rng);
        assert!(h.data().iter().all(|v| v.abs() <= (6.0f32 / 50.0).sqrt() + 1e-6));
    }

    #[test]
    fn linear_forward_shape_and_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 3, &mut rng);
        assert_eq!((layer.in_features(), layer.out_features()), (4, 3));
        let input = Var::new(Matrix::full(5, 4, 0.5));
        let output = layer.forward(&input);
        assert_eq!(output.shape(), (5, 3));
        output.sum().backward();
        for param in layer.parameters() {
            assert!(param.grad().is_some(), "all parameters receive gradients");
        }
    }

    #[test]
    fn mlp_matches_paper_head_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let head = Mlp::new(&[300, 600, 300, 1], &mut rng);
        assert_eq!(head.depth(), 3);
        let input = Var::new(Matrix::zeros(2, 300));
        assert_eq!(head.forward(&input).shape(), (2, 1));
        assert_eq!(head.parameters().len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least an input and an output width")]
    fn mlp_rejects_single_width() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = Mlp::new(&[10], &mut rng);
    }

    #[test]
    fn embedding_lookup_and_clamping() {
        let mut rng = StdRng::seed_from_u64(5);
        let table = Embedding::new(6, 4, &mut rng);
        assert_eq!((table.vocab_size(), table.dim()), (6, 4));
        let out = table.forward(&[0, 5, 99]);
        assert_eq!(out.shape(), (3, 4));
        // The out-of-range index collapses onto the last row.
        assert_eq!(out.value().row(1), out.value().row(2));
        out.sum().backward();
        assert!(table.parameters()[0].grad().is_some());
    }
}
