//! Dense row-major `f32` matrix.
//!
//! All tensors handled by the GNN stack are two-dimensional (`nodes × features`,
//! `edges × features`, or `1 × features` for pooled graph representations), so a
//! simple dense matrix is the only storage type needed. The autodiff layer
//! ([`crate::var`]) wraps matrices; this module is pure numerics.

use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Creates a `1 × n` row vector.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates a `n × 1` column vector.
    pub fn column_vector(values: &[f32]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col]
    }

    /// Element update.
    ///
    /// # Panics
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index ({row},{col}) out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// A view of one row.
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix product `self × other`.
    ///
    /// Dense, branch-free kernel: cache-blocked over the inner dimension with
    /// an autovectorizable axpy inner loop. For matrices whose *left* operand
    /// is mostly zeros (e.g. one-hot encodings) see [`Matrix::matmul_sparse_lhs`].
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({}x{}) x ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::matmul(&mut out.data, &self.data, &other.data, self.rows, self.cols, other.cols);
        out
    }

    /// Matrix product `self × other` with a zero-skip fast path over the
    /// entries of `self`.
    ///
    /// This is the caller-chosen sparse entry point: when the left operand is
    /// mostly zeros (one-hot rows, masks) skipping zero entries beats the dense
    /// kernel because each skipped entry avoids a full row-length axpy. On
    /// dense inputs the per-element branch defeats autovectorization — use
    /// [`Matrix::matmul`] there.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul_sparse_lhs(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: ({}x{}) x ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Fused product `self × otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: ({}x{}) x ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        let mut scratch = Vec::new();
        kernels::matmul_transpose_b(
            &mut out.data,
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.rows,
            &mut scratch,
        );
        out
    }

    /// Fused product `selfᵀ × other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a shape mismatch: ({}x{})ᵀ x ({}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        kernels::matmul_transpose_a(
            &mut out.data,
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise binary combination of two same-shape matrices.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Matrix, mut f: impl FnMut(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise map.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Element-wise sum of two matrices.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column-wise sums as a `1 × cols` matrix.
    pub fn sum_axis0(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontally concatenates matrices with the same number of rows.
    ///
    /// # Panics
    /// Panics if the matrices disagree on the row count or the list is empty.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols needs at least one matrix");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|m| m.rows == rows), "concat_cols row mismatch");
        let total_cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, total_cols);
        for r in 0..rows {
            let mut offset = 0;
            for part in parts {
                out.data[r * total_cols + offset..r * total_cols + offset + part.cols]
                    .copy_from_slice(part.row(r));
                offset += part.cols;
            }
        }
        out
    }

    /// Vertically concatenates matrices with the same number of columns.
    ///
    /// # Panics
    /// Panics if the matrices disagree on the column count or the list is
    /// empty.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows needs at least one matrix");
        let cols = parts[0].cols;
        assert!(parts.iter().all(|m| m.cols == cols), "concat_rows column mismatch");
        let total_rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(total_rows * cols);
        for part in parts {
            data.extend_from_slice(&part.data);
        }
        Matrix { rows: total_rows, cols, data }
    }

    /// Selects rows by index (rows may repeat).
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (out_row, &index) in indices.iter().enumerate() {
            assert!(index < self.rows, "gather index {index} out of bounds ({} rows)", self.rows);
            out.row_mut(out_row).copy_from_slice(self.row(index));
        }
        out
    }

    /// Adds every row of `self` into `out_rows`-row accumulator at the row given
    /// by `indices` (scatter-add).
    ///
    /// # Panics
    /// Panics if `indices.len() != self.rows()` or an index is out of bounds.
    pub fn scatter_add_rows(&self, indices: &[usize], out_rows: usize) -> Matrix {
        assert_eq!(indices.len(), self.rows, "one target index per row is required");
        let mut out = Matrix::zeros(out_rows, self.cols);
        for (row, &index) in indices.iter().enumerate() {
            assert!(index < out_rows, "scatter index {index} out of bounds ({out_rows} rows)");
            let src = &self.data[row * self.cols..(row + 1) * self.cols];
            let dst = &mut out.data[index * self.cols..(index + 1) * self.cols];
            for (o, s) in dst.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// Slice-level dense kernels shared by [`Matrix`] and the arena tape
/// ([`crate::tape`]), which stores values and gradients in flat `f32` buffers
/// and therefore cannot pay for a `Matrix` round trip per op.
///
/// All kernels **accumulate** (`+=`) into `out`; the caller zeroes the
/// destination when plain assignment is wanted. Within each output element the
/// reduction order is ascending over the inner dimension, independent of
/// blocking, so results are bit-identical to the textbook triple loop.
pub(crate) mod kernels {
    /// Inner-dimension block size for [`matmul`]. Chosen so a block of the
    /// right-hand operand's rows (`K_BLOCK × n` floats) stays L1/L2-resident
    /// while every output row streams over it.
    const K_BLOCK: usize = 64;

    /// `out (m×n) += a (m×k) × b (k×n)`, cache-blocked over `k` and
    /// register-tiled over 4 output rows.
    ///
    /// Blocks iterate outermost with `k` ascending within each block, and the
    /// row tile reuses each loaded `b` row for 4 output rows (≈1.1–1.7×
    /// over the plain ikj loop, best at the narrow widths GNN layers use).
    /// Every `(i, j)` element still accumulates in ascending-`k` order, so
    /// results are bit-identical to the textbook triple loop.
    pub fn matmul(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(out.len(), m * n);
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + K_BLOCK).min(k);
            let mut i = 0;
            while i + 4 <= m {
                let tile = &mut out[i * n..(i + 4) * n];
                let (r0, rest) = tile.split_at_mut(n);
                let (r1, rest) = rest.split_at_mut(n);
                let (r2, r3) = rest.split_at_mut(n);
                for kk in k0..k1 {
                    let b_row = &b[kk * n..(kk + 1) * n];
                    let a0 = a[i * k + kk];
                    let a1 = a[(i + 1) * k + kk];
                    let a2 = a[(i + 2) * k + kk];
                    let a3 = a[(i + 3) * k + kk];
                    let rows =
                        r0.iter_mut().zip(r1.iter_mut()).zip(r2.iter_mut()).zip(r3.iter_mut());
                    for ((((o0, o1), o2), o3), &bv) in rows.zip(b_row) {
                        *o0 += a0 * bv;
                        *o1 += a1 * bv;
                        *o2 += a2 * bv;
                        *o3 += a3 * bv;
                    }
                }
                i += 4;
            }
            while i < m {
                let a_row = &a[i * k + k0..i * k + k1];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (kk, &aik) in a_row.iter().enumerate() {
                    let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
                i += 1;
            }
            k0 = k1;
        }
    }

    /// `out (rows×cols) = aᵀ`, plain assignment (`a` is `cols×rows`).
    pub fn transpose(out: &mut [f32], a: &[f32], rows: usize, cols: usize) {
        debug_assert_eq!(out.len(), rows * cols);
        debug_assert_eq!(a.len(), rows * cols);
        for r in 0..cols {
            let a_row = &a[r * rows..(r + 1) * rows];
            for (c, &v) in a_row.iter().enumerate() {
                out[c * cols + r] = v;
            }
        }
    }

    /// `out (m×k) += g (m×n) × bᵀ` where `b` is `k×n`. Materializes `bᵀ`
    /// into `bt_scratch` and runs the axpy-form product — a naive per-element
    /// row-dot is ~3× slower here because a sequential float reduction cannot
    /// vectorize without reassociation, while the axpy inner loop does.
    ///
    /// Each `out` element still accumulates in ascending-`n` order, so when
    /// `out` starts zeroed the result is bit-identical to folding a local dot
    /// product and adding it once.
    pub fn matmul_transpose_b(
        out: &mut [f32],
        g: &[f32],
        b: &[f32],
        m: usize,
        n: usize,
        k: usize,
        bt_scratch: &mut Vec<f32>,
    ) {
        debug_assert_eq!(out.len(), m * k);
        debug_assert_eq!(g.len(), m * n);
        debug_assert_eq!(b.len(), k * n);
        bt_scratch.clear();
        bt_scratch.resize(n * k, 0.0);
        transpose(bt_scratch, b, n, k);
        matmul(out, g, bt_scratch, m, n, k);
    }

    /// `out (k×n) += aᵀ × g` where `a` is `m×k` and `g` is `m×n`, without
    /// materializing the transpose. Axpy formulation with `m` scattered adds
    /// per output element; when bit-exact accumulation order against a
    /// materialize-then-add baseline matters, target a zeroed scratch and add
    /// it onto the destination afterwards.
    pub fn matmul_transpose_a(out: &mut [f32], a: &[f32], g: &[f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(out.len(), k * n);
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(g.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let g_row = &g[i * n..(i + 1) * n];
            for (j, &aij) in a_row.iter().enumerate() {
                let out_row = &mut out[j * n..(j + 1) * n];
                for (o, &gv) in out_row.iter_mut().zip(g_row) {
                    *o += aij * gv;
                }
            }
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        let f = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(f.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn sparse_lhs_matmul_matches_dense_kernel() {
        // Odd sizes exercise the partial-block tail of the dense kernel; the
        // zero rows exercise the sparse skip.
        let a = Matrix::from_fn(5, 131, |r, c| {
            if r % 2 == 0 {
                0.0
            } else {
                ((r * 131 + c) % 17) as f32 - 8.0
            }
        });
        let b = Matrix::from_fn(131, 7, |r, c| ((r * 7 + c) % 13) as f32 - 6.0);
        assert_eq!(a.matmul_sparse_lhs(&b).data(), a.matmul(&b).data());
    }

    #[test]
    fn fused_transpose_products_match_materialized_transpose() {
        let a = Matrix::from_fn(9, 70, |r, c| ((r * 70 + c) % 11) as f32 * 0.25 - 1.0);
        let b = Matrix::from_fn(9, 70, |r, c| ((r * 70 + c) % 7) as f32 * 0.5 - 1.5);
        let g = Matrix::from_fn(9, 5, |r, c| ((r * 5 + c) % 5) as f32 - 2.0);
        // self × otherᵀ : (9×70) × (9×70)ᵀ = 9×9.
        assert_eq!(a.matmul_transpose_b(&b).data(), a.matmul(&b.transpose()).data());
        // selfᵀ × other : (9×70)ᵀ × (9×5) = 70×5.
        assert_eq!(a.matmul_transpose_a(&g).data(), a.transpose().matmul(&g).data());
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let t = a.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.transpose(), a);
        assert_eq!(t.get(2, 1), a.get(1, 2));
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_axis0().data(), &[4.0, 6.0]);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn concat_cols_joins_horizontally() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let joined = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(joined.shape(), (2, 3));
        assert_eq!(joined.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(joined.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn gather_and_scatter_are_adjoint_shapes() {
        let h = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let gathered = h.gather_rows(&[0, 2, 2, 3]);
        assert_eq!(gathered.shape(), (4, 2));
        assert_eq!(gathered.row(1), h.row(2));
        let scattered = gathered.scatter_add_rows(&[1, 1, 0, 3], 4);
        assert_eq!(scattered.shape(), (4, 2));
        // Row 1 accumulates rows 0 and 2 of the original matrix.
        assert_eq!(scattered.row(1), &[h.get(0, 0) + h.get(2, 0), h.get(0, 1) + h.get(2, 1)]);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }

    #[test]
    fn display_is_not_empty() {
        let a = Matrix::zeros(2, 2);
        assert!(!a.to_string().is_empty());
    }
}
