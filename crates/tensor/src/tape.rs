//! Index-based arena tape for reverse-mode autodiff.
//!
//! One [`Tape`] lives in a thread-local slot. Every op appends a typed
//! [`Op`] record to a flat node arena and writes its forward value into a
//! shared `f32` buffer; gradients live in a second flat buffer with the same
//! offsets. A [`crate::Var`] node handle is just `(generation, index, shape)`
//! — no per-op heap allocation, no reference counting, no boxed backward
//! closures, and dropping a deep chain of handles is trivially O(1) per
//! handle, so the old iterative-teardown `Drop` workaround is gone.
//!
//! Parameters (and constants, which behave like non-trainable parameters)
//! are *not* tape nodes: they live in [`ParamCell`]s owned by their `Var`
//! handles, so they survive [`reset`] and free when the model drops. Their
//! accumulated gradients also live in the cell, which is what lets gradients
//! accumulate across multiple backward passes exactly like the previous
//! engine.
//!
//! # Lifecycle
//!
//! [`reset`] ends a step: it bumps the tape generation and clears the arenas
//! **retaining their capacity**, so a whole training epoch performs O(1) tape
//! allocations instead of O(ops). Node handles from before the reset are
//! stale; using one panics with "stale Var handle". Forgetting a reset is a
//! bounded memory leak within the thread, never unsoundness.
//!
//! # Determinism
//!
//! The backward pass replays the exact traversal of the previous
//! reference-counted engine: a depth-first post-order over the node graph
//! (children in parent-list order), iterated in reverse, with per-parent
//! contributions accumulated in parent-list order. Single-consumer
//! contributions add directly into the destination region; multi-term
//! contributions (dense matmul's right-operand gradient, gather's scatter
//! adjoint) materialize into a reusable scratch buffer first and are added
//! in one pass, preserving the old engine's floating-point accumulation
//! order. All state is thread-local, so results are bit-identical at any
//! worker count.

use std::cell::{Cell, Ref, RefCell};
use std::rc::Rc;
use std::time::Instant;

use crate::matrix::{kernels, Matrix};
use crate::profile::{self, OpKind};

/// A parameter (or constant) leaf: value and accumulated gradient live here,
/// outside the tape, so they survive [`reset`].
pub(crate) struct ParamCell {
    pub(crate) id: u64,
    pub(crate) trainable: bool,
    pub(crate) value: RefCell<Matrix>,
    pub(crate) grad: RefCell<Option<Matrix>>,
    /// `(generation, index into Tape::params)` — caches the registration of
    /// this cell on the current tape so repeated uses don't rescan.
    slot: Cell<(u64, u32)>,
}

impl ParamCell {
    pub(crate) fn new(id: u64, trainable: bool, value: Matrix) -> Self {
        ParamCell {
            id,
            trainable,
            value: RefCell::new(value),
            grad: RefCell::new(None),
            slot: Cell::new((0, 0)),
        }
    }
}

/// An operand: an earlier tape node or a registered parameter cell.
#[derive(Clone, Copy)]
pub(crate) enum Src {
    Node(u32),
    Param(u32),
}

/// A `(start, len)` window into one of the tape's side arenas
/// (`srcs`, `idx` or `aux`).
#[derive(Clone, Copy)]
pub(crate) struct Range32 {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl Range32 {
    fn bounds(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// Typed op record. Operand order matches the parent-list order of the
/// previous engine — the backward traversal depends on it.
#[derive(Clone, Copy)]
pub(crate) enum Op {
    Add(Src, Src),
    Sub(Src, Src),
    Mul(Src, Src),
    DivEps(Src, Src, f32),
    Scale(Src, f32),
    AddScalar(Src, f32),
    MulScalarVar(Src, Src),
    MulColBroadcast(Src, Src),
    Matmul(Src, Src),
    AddRowBroadcast(Src, Src),
    LeakyRelu(Src, f32),
    Sigmoid(Src),
    Tanh(Src),
    Exp(Src),
    LogEps(Src, f32),
    SqrtEps(Src, f32),
    /// Mask (already scaled by `1/keep`) stored in `aux`.
    Dropout(Src, Range32),
    Sum(Src),
    SumAxis0(Src),
    ConcatCols(Range32),
    ConcatRows(Range32),
    GatherRows(Src, Range32),
    ScatterAddRows(Src, Range32),
    ScatterAddOnto(Src, Src, Range32),
    SegmentSum(Src, Range32),
    /// `segments` are ids in `idx`; `winners` is a `num_segments × cols`
    /// argmax table in `idx` filled during forward (`u32::MAX` = empty).
    SegmentExtremum {
        input: Src,
        segments: Range32,
        winners: Range32,
        is_max: bool,
    },
    /// Per-row constant factors stored in `aux` (no gradient w.r.t. them).
    ScaleRows(Src, Range32),
    /// Target stored in `aux`.
    Mse(Src, Range32),
    /// Target stored in `aux`.
    BceWithLogits(Src, Range32),
}

impl Op {
    /// The `i`-th operand in parent-list order, if any.
    fn nth_src(&self, srcs: &[Src], i: usize) -> Option<Src> {
        let pair = |a: Src, b: Src, i: usize| match i {
            0 => Some(a),
            1 => Some(b),
            _ => None,
        };
        let single = |a: Src, i: usize| (i == 0).then_some(a);
        match *self {
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::DivEps(a, b, _)
            | Op::MulScalarVar(a, b)
            | Op::MulColBroadcast(a, b)
            | Op::Matmul(a, b)
            | Op::AddRowBroadcast(a, b)
            | Op::ScatterAddOnto(a, b, _) => pair(a, b, i),
            Op::Scale(a, _)
            | Op::AddScalar(a, _)
            | Op::LeakyRelu(a, _)
            | Op::Sigmoid(a)
            | Op::Tanh(a)
            | Op::Exp(a)
            | Op::LogEps(a, _)
            | Op::SqrtEps(a, _)
            | Op::Dropout(a, _)
            | Op::Sum(a)
            | Op::SumAxis0(a)
            | Op::GatherRows(a, _)
            | Op::ScatterAddRows(a, _)
            | Op::SegmentSum(a, _)
            | Op::SegmentExtremum { input: a, .. }
            | Op::ScaleRows(a, _)
            | Op::Mse(a, _)
            | Op::BceWithLogits(a, _) => single(a, i),
            Op::ConcatCols(r) | Op::ConcatRows(r) => {
                if i < r.len as usize {
                    Some(srcs[r.start as usize + i])
                } else {
                    None
                }
            }
        }
    }

    /// Profile aggregation key ([`crate::profile`]) for this record.
    fn kind(&self) -> OpKind {
        match self {
            Op::Add(..) => OpKind::Add,
            Op::Sub(..) => OpKind::Sub,
            Op::Mul(..) => OpKind::Mul,
            Op::DivEps(..) => OpKind::DivEps,
            Op::Scale(..) => OpKind::Scale,
            Op::AddScalar(..) => OpKind::AddScalar,
            Op::MulScalarVar(..) => OpKind::MulScalarVar,
            Op::MulColBroadcast(..) => OpKind::MulColBroadcast,
            Op::Matmul(..) => OpKind::Matmul,
            Op::AddRowBroadcast(..) => OpKind::AddRowBroadcast,
            Op::LeakyRelu(..) => OpKind::LeakyRelu,
            Op::Sigmoid(..) => OpKind::Sigmoid,
            Op::Tanh(..) => OpKind::Tanh,
            Op::Exp(..) => OpKind::Exp,
            Op::LogEps(..) => OpKind::LogEps,
            Op::SqrtEps(..) => OpKind::SqrtEps,
            Op::Dropout(..) => OpKind::Dropout,
            Op::Sum(..) => OpKind::Sum,
            Op::SumAxis0(..) => OpKind::SumAxis0,
            Op::ConcatCols(..) => OpKind::ConcatCols,
            Op::ConcatRows(..) => OpKind::ConcatRows,
            Op::GatherRows(..) => OpKind::GatherRows,
            Op::ScatterAddRows(..) => OpKind::ScatterAddRows,
            Op::ScatterAddOnto(..) => OpKind::ScatterAddOnto,
            Op::SegmentSum(..) => OpKind::SegmentSum,
            Op::SegmentExtremum { .. } => OpKind::SegmentExtremum,
            Op::ScaleRows(..) => OpKind::ScaleRows,
            Op::Mse(..) => OpKind::Mse,
            Op::BceWithLogits(..) => OpKind::BceWithLogits,
        }
    }
}

#[derive(Clone, Copy)]
struct NodeRec {
    rows: u32,
    cols: u32,
    /// Offset of this node's value (and gradient) in the flat buffers.
    off: usize,
    op: Op,
}

impl NodeRec {
    fn len(&self) -> usize {
        self.rows as usize * self.cols as usize
    }
}

/// Size and reuse statistics of the thread's tape (see [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TapeStats {
    /// Ops recorded since the last reset.
    pub ops: usize,
    /// `f32`s of forward values recorded since the last reset.
    pub value_floats: usize,
    /// Capacity of the value buffer — stable across steady-state resets,
    /// which is what makes a training epoch O(1) allocations.
    pub value_capacity: usize,
}

/// The arena tape. One per thread, reachable via [`with`].
pub(crate) struct Tape {
    generation: u64,
    nodes: Vec<NodeRec>,
    vals: Vec<f32>,
    grads: Vec<f32>,
    srcs: Vec<Src>,
    idx: Vec<u32>,
    aux: Vec<f32>,
    params: Vec<Rc<ParamCell>>,
    scratch: Vec<f32>,
    scratch2: Vec<f32>,
    order: Vec<u32>,
    stack: Vec<(u32, u32)>,
    mark: Vec<u32>,
    mark_gen: u32,
}

thread_local! {
    static TAPE: RefCell<Tape> = RefCell::new(Tape::new());
}

/// Runs `f` with the thread's tape. Do not call [`Var`](crate::Var) methods
/// from inside `f` — they re-borrow the tape.
pub(crate) fn with<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
    TAPE.with(|tape| f(&mut tape.borrow_mut()))
}

/// Ends the current step: bumps the tape generation and clears the node,
/// value, gradient and side arenas **retaining capacity**. Parameters keep
/// their values and accumulated gradients; node handles recorded before the
/// reset become stale and panic on use.
pub fn reset() {
    with(Tape::reset_in_place);
}

/// Size/reuse statistics of the thread's tape.
pub fn stats() -> TapeStats {
    with(|tape| TapeStats {
        ops: tape.nodes.len(),
        value_floats: tape.vals.len(),
        value_capacity: tape.vals.capacity(),
    })
}

/// A resolved operand value: a slice of the value buffer for node operands,
/// or a borrow of the cell for parameter operands.
enum SrcVal<'a> {
    Slice(&'a [f32]),
    Guard(Ref<'a, Matrix>),
}

impl SrcVal<'_> {
    fn as_slice(&self) -> &[f32] {
        match self {
            SrcVal::Slice(slice) => slice,
            SrcVal::Guard(guard) => guard.data(),
        }
    }
}

fn src_val<'a>(
    vals: &'a [f32],
    nodes: &[NodeRec],
    params: &'a [Rc<ParamCell>],
    src: Src,
) -> SrcVal<'a> {
    match src {
        Src::Node(i) => {
            let rec = &nodes[i as usize];
            SrcVal::Slice(&vals[rec.off..rec.off + rec.len()])
        }
        Src::Param(p) => SrcVal::Guard(params[p as usize].value.borrow()),
    }
}

fn src_dims(nodes: &[NodeRec], params: &[Rc<ParamCell>], src: Src) -> (usize, usize) {
    match src {
        Src::Node(i) => (nodes[i as usize].rows as usize, nodes[i as usize].cols as usize),
        Src::Param(p) => params[p as usize].value.borrow().shape(),
    }
}

/// Runs `f` on the gradient region of `src`: a slice of the flat gradient
/// buffer for nodes, or the parameter cell's gradient matrix (created zeroed
/// on first touch, matching the previous engine's `None → clone` semantics up
/// to `0.0 + x`).
fn with_grad_dst(
    grads_head: &mut [f32],
    nodes: &[NodeRec],
    params: &[Rc<ParamCell>],
    src: Src,
    f: impl FnOnce(&mut [f32]),
) {
    match src {
        Src::Node(i) => {
            let rec = &nodes[i as usize];
            f(&mut grads_head[rec.off..rec.off + rec.len()]);
        }
        Src::Param(p) => {
            let cell = &params[p as usize];
            let mut guard = cell.grad.borrow_mut();
            if guard.is_none() {
                let (rows, cols) = cell.value.borrow().shape();
                *guard = Some(Matrix::zeros(rows, cols));
            }
            f(guard.as_mut().expect("just ensured").data_mut());
        }
    }
}

impl Tape {
    fn new() -> Self {
        Tape {
            generation: 1,
            nodes: Vec::new(),
            vals: Vec::new(),
            grads: Vec::new(),
            srcs: Vec::new(),
            idx: Vec::new(),
            aux: Vec::new(),
            params: Vec::new(),
            scratch: Vec::new(),
            scratch2: Vec::new(),
            order: Vec::new(),
            stack: Vec::new(),
            mark: Vec::new(),
            mark_gen: 0,
        }
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    fn reset_in_place(&mut self) {
        self.generation += 1;
        self.nodes.clear();
        self.vals.clear();
        self.grads.clear();
        self.srcs.clear();
        self.idx.clear();
        self.aux.clear();
        self.params.clear();
    }

    /// Registers a parameter cell on this tape (idempotent per generation).
    pub(crate) fn param_src(&mut self, cell: &Rc<ParamCell>) -> Src {
        let (slot_generation, slot_index) = cell.slot.get();
        if slot_generation == self.generation {
            return Src::Param(slot_index);
        }
        let index = u32::try_from(self.params.len()).expect("tape parameter limit exceeded");
        self.params.push(Rc::clone(cell));
        cell.slot.set((self.generation, index));
        Src::Param(index)
    }

    /// Copies operand handles into the `srcs` arena (for concat ops).
    pub(crate) fn push_srcs(&mut self, list: &[Src]) -> Range32 {
        let start = u32::try_from(self.srcs.len()).expect("tape source arena limit exceeded");
        self.srcs.extend_from_slice(list);
        Range32 { start, len: list.len() as u32 }
    }

    /// Copies row/segment indices into the `idx` arena.
    pub(crate) fn push_idx(&mut self, ids: &[usize]) -> Range32 {
        let start = u32::try_from(self.idx.len()).expect("tape index arena limit exceeded");
        self.idx
            .extend(ids.iter().map(|&i| u32::try_from(i).expect("row index exceeds u32 range")));
        Range32 { start, len: ids.len() as u32 }
    }

    /// Reserves a `len`-slot winner table in the `idx` arena, initialised to
    /// the `u32::MAX` "empty" sentinel (filled by the extremum forward pass).
    pub(crate) fn push_winner_slots(&mut self, len: usize) -> Range32 {
        let start = u32::try_from(self.idx.len()).expect("tape index arena limit exceeded");
        self.idx.resize(self.idx.len() + len, u32::MAX);
        Range32 { start, len: len as u32 }
    }

    /// Copies auxiliary floats (dropout masks, row factors, loss targets)
    /// into the `aux` arena.
    pub(crate) fn push_aux(&mut self, values: &[f32]) -> Range32 {
        let start = u32::try_from(self.aux.len()).expect("tape aux arena limit exceeded");
        self.aux.extend_from_slice(values);
        Range32 { start, len: values.len() as u32 }
    }

    /// Values of node `index` as a fresh [`Matrix`].
    pub(crate) fn node_matrix(&self, index: u32) -> Matrix {
        let rec = &self.nodes[index as usize];
        Matrix::from_vec(
            rec.rows as usize,
            rec.cols as usize,
            self.vals[rec.off..rec.off + rec.len()].to_vec(),
        )
    }

    /// Gradient of node `index` as a fresh [`Matrix`], if its region has been
    /// materialised by a backward pass.
    pub(crate) fn node_grad_matrix(&self, index: u32) -> Option<Matrix> {
        let rec = &self.nodes[index as usize];
        if self.grads.len() < rec.off + rec.len() {
            return None;
        }
        Some(Matrix::from_vec(
            rec.rows as usize,
            rec.cols as usize,
            self.grads[rec.off..rec.off + rec.len()].to_vec(),
        ))
    }

    /// Overwrites the value region of node `index` (same shape required).
    pub(crate) fn set_node_value(&mut self, index: u32, value: &Matrix) {
        let rec = self.nodes[index as usize];
        assert_eq!(
            value.shape(),
            (rec.rows as usize, rec.cols as usize),
            "set_value must preserve the shape of a tape node"
        );
        self.vals[rec.off..rec.off + rec.len()].copy_from_slice(value.data());
    }

    /// Zeroes the gradient region of node `index`, if materialised.
    pub(crate) fn zero_node_grad(&mut self, index: u32) {
        let rec = self.nodes[index as usize];
        if self.grads.len() >= rec.off + rec.len() {
            self.grads[rec.off..rec.off + rec.len()].fill(0.0);
        }
    }

    /// Adds `delta` into the gradient region of node `index`.
    pub(crate) fn accumulate_node_grad(&mut self, index: u32, delta: &Matrix) {
        let rec = self.nodes[index as usize];
        assert_eq!(
            delta.shape(),
            (rec.rows as usize, rec.cols as usize),
            "gradient shape mismatch"
        );
        if self.grads.len() < self.vals.len() {
            self.grads.resize(self.vals.len(), 0.0);
        }
        let dst = &mut self.grads[rec.off..rec.off + rec.len()];
        for (slot, &d) in dst.iter_mut().zip(delta.data()) {
            *slot += d;
        }
    }

    /// Appends a node, computes its forward value, returns its index. When
    /// the per-op profiler is on the forward computation is timed and its
    /// analytic cost credited to the op's kind; the disabled path pays one
    /// relaxed atomic load.
    pub(crate) fn record(&mut self, rows: usize, cols: usize, op: Op) -> u32 {
        if profile::enabled() {
            // The timer covers the arena bookkeeping too, so tape overhead
            // is attributed to the op that caused it rather than dropped.
            let start = Instant::now();
            let index = self.record_inner(rows, cols, op);
            let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let (flops, bytes) = self.op_cost(index as usize, false);
            profile::record_forward(op.kind(), elapsed_ns, flops, bytes);
            index
        } else {
            self.record_inner(rows, cols, op)
        }
    }

    fn record_inner(&mut self, rows: usize, cols: usize, op: Op) -> u32 {
        let index = u32::try_from(self.nodes.len()).expect("tape node limit exceeded");
        let off = self.vals.len();
        self.vals.resize(off + rows * cols, 0.0);
        self.nodes.push(NodeRec { rows: rows as u32, cols: cols as u32, off, op });
        self.forward_node(index as usize);
        index
    }

    /// Analytic cost of node `index`: floating-point operations and bytes
    /// moved, derived purely from the op record's shapes (never from values).
    /// The backward replay is modelled as 2× forward — exact for matmul
    /// (`dA = g·Bᵀ` + `dB = Aᵀ·g` is two products against the forward's one)
    /// and the linear elementwise ops, a serviceable bound for the rest.
    fn op_cost(&self, index: usize, backward: bool) -> (u64, u64) {
        const F: u64 = std::mem::size_of::<f32>() as u64;
        let rec = &self.nodes[index];
        let out = rec.len() as u64;
        let src_numel = |s: Src| {
            let (rows, cols) = src_dims(&self.nodes, &self.params, s);
            (rows * cols) as u64
        };
        let (flops, bytes) = match rec.op {
            // Elementwise with two array operands (dropout's mask counts).
            Op::Add(..) | Op::Sub(..) | Op::Mul(..) | Op::Dropout(..) => (out, 3 * out * F),
            Op::DivEps(..) => (2 * out, 3 * out * F),
            // Elementwise against a scalar constant or 1×1 operand.
            Op::Scale(..) | Op::AddScalar(..) | Op::LeakyRelu(..) | Op::MulScalarVar(..) => {
                (out, 2 * out * F)
            }
            Op::MulColBroadcast(..) => (out, 2 * out * F + u64::from(rec.rows) * F),
            Op::AddRowBroadcast(..) => (out, 2 * out * F + u64::from(rec.cols) * F),
            Op::Matmul(a, _) => {
                let (m, k) = src_dims(&self.nodes, &self.params, a);
                let (m, k, n) = (m as u64, k as u64, u64::from(rec.cols));
                (2 * m * k * n, (m * k + k * n + m * n) * F)
            }
            // Transcendental elementwise: a handful of flops per element.
            Op::Sigmoid(..) | Op::Tanh(..) => (4 * out, 2 * out * F),
            Op::Exp(..) | Op::LogEps(..) | Op::SqrtEps(..) => (2 * out, 2 * out * F),
            Op::Sum(a) | Op::SumAxis0(a) => {
                let m = src_numel(a);
                (m, (m + out) * F)
            }
            // Pure data movement.
            Op::ConcatCols(..) | Op::ConcatRows(..) => (0, 2 * out * F),
            Op::GatherRows(_, ids) => (0, 2 * out * F + u64::from(ids.len) * F),
            Op::ScatterAddRows(a, ids) => {
                let m = src_numel(a);
                (m, (2 * m + out) * F + u64::from(ids.len) * F)
            }
            Op::ScatterAddOnto(_, b, ids) => {
                let m = src_numel(b);
                (m, (2 * out + 2 * m) * F + u64::from(ids.len) * F)
            }
            Op::SegmentSum(a, ids) => {
                let m = src_numel(a);
                (m, (m + out) * F + u64::from(ids.len) * F)
            }
            Op::SegmentExtremum { input, segments, winners, .. } => {
                let m = src_numel(input);
                (m, (m + out) * F + u64::from(segments.len + winners.len) * F)
            }
            Op::ScaleRows(_, factors) => (out, 2 * out * F + u64::from(factors.len) * F),
            Op::Mse(a, target) => {
                let m = src_numel(a);
                (3 * m, (m + u64::from(target.len) + out) * F)
            }
            Op::BceWithLogits(a, target) => {
                let m = src_numel(a);
                (8 * m, (m + u64::from(target.len) + out) * F)
            }
        };
        if backward {
            (2 * flops, 2 * bytes)
        } else {
            (flops, bytes)
        }
    }

    /// Computes the forward value of node `index` into its (zeroed) region.
    fn forward_node(&mut self, index: usize) {
        let Tape { nodes, vals, srcs, idx, aux, params, .. } = self;
        let rec = nodes[index];
        let cols = rec.cols as usize;
        let (head, tail) = vals.split_at_mut(rec.off);
        let head: &[f32] = head;
        let out = &mut tail[..rec.len()];
        let sv = |s: Src| src_val(head, nodes, params, s);
        match rec.op {
            Op::Add(a, b) => binary(out, &sv(a), &sv(b), |x, y| x + y),
            Op::Sub(a, b) => binary(out, &sv(a), &sv(b), |x, y| x - y),
            Op::Mul(a, b) => binary(out, &sv(a), &sv(b), |x, y| x * y),
            Op::DivEps(a, b, eps) => binary(out, &sv(a), &sv(b), |x, y| x / (y + eps)),
            Op::Scale(a, factor) => unary(out, &sv(a), |x| x * factor),
            Op::AddScalar(a, constant) => unary(out, &sv(a), |x| x + constant),
            Op::MulScalarVar(a, b) => {
                let s = sv(b).as_slice()[0];
                unary(out, &sv(a), |x| x * s);
            }
            Op::MulColBroadcast(a, b) => {
                let av = sv(a);
                let col = sv(b);
                for ((orow, arow), &factor) in out
                    .chunks_exact_mut(cols.max(1))
                    .zip(av.as_slice().chunks_exact(cols.max(1)))
                    .zip(col.as_slice())
                {
                    for (o, &x) in orow.iter_mut().zip(arow) {
                        *o = x * factor;
                    }
                }
            }
            Op::Matmul(a, b) => {
                let (m, k) = src_dims(nodes, params, a);
                let av = sv(a);
                let bv = sv(b);
                kernels::matmul(out, av.as_slice(), bv.as_slice(), m, k, cols);
            }
            Op::AddRowBroadcast(a, b) => {
                let av = sv(a);
                let bias = sv(b);
                let bias = bias.as_slice();
                for (orow, arow) in
                    out.chunks_exact_mut(cols.max(1)).zip(av.as_slice().chunks_exact(cols.max(1)))
                {
                    for ((o, &x), &bv) in orow.iter_mut().zip(arow).zip(bias) {
                        *o = x + bv;
                    }
                }
            }
            Op::LeakyRelu(a, slope) => unary(out, &sv(a), |x| if x > 0.0 { x } else { slope * x }),
            Op::Sigmoid(a) => unary(out, &sv(a), |x| 1.0 / (1.0 + (-x).exp())),
            Op::Tanh(a) => unary(out, &sv(a), f32::tanh),
            Op::Exp(a) => unary(out, &sv(a), |x| x.min(30.0).exp()),
            Op::LogEps(a, eps) => unary(out, &sv(a), |x| (x + eps).ln()),
            Op::SqrtEps(a, eps) => unary(out, &sv(a), |x| (x.max(0.0) + eps).sqrt()),
            Op::Dropout(a, mask) => {
                let av = sv(a);
                for ((o, &x), &m) in out.iter_mut().zip(av.as_slice()).zip(&aux[mask.bounds()]) {
                    *o = x * m;
                }
            }
            Op::Sum(a) => out[0] = sv(a).as_slice().iter().sum(),
            Op::SumAxis0(a) => {
                let av = sv(a);
                for arow in av.as_slice().chunks_exact(cols.max(1)) {
                    for (o, &x) in out.iter_mut().zip(arow) {
                        *o += x;
                    }
                }
            }
            Op::ConcatCols(range) => {
                let mut col_off = 0;
                for &part in &srcs[range.bounds()] {
                    let (_, part_cols) = src_dims(nodes, params, part);
                    let pv = sv(part);
                    for (orow, prow) in out
                        .chunks_exact_mut(cols.max(1))
                        .zip(pv.as_slice().chunks_exact(part_cols.max(1)))
                    {
                        orow[col_off..col_off + part_cols].copy_from_slice(prow);
                    }
                    col_off += part_cols;
                }
            }
            Op::ConcatRows(range) => {
                let mut write = 0;
                for &part in &srcs[range.bounds()] {
                    let pv = sv(part);
                    let slice = pv.as_slice();
                    out[write..write + slice.len()].copy_from_slice(slice);
                    write += slice.len();
                }
            }
            Op::GatherRows(a, ids) => {
                let av = sv(a);
                let source = av.as_slice();
                for (orow, &id) in out.chunks_exact_mut(cols.max(1)).zip(&idx[ids.bounds()]) {
                    let start = id as usize * cols;
                    orow.copy_from_slice(&source[start..start + cols]);
                }
            }
            Op::ScatterAddRows(a, ids) | Op::SegmentSum(a, ids) => {
                let av = sv(a);
                for (arow, &id) in av.as_slice().chunks_exact(cols.max(1)).zip(&idx[ids.bounds()]) {
                    let start = id as usize * cols;
                    for (o, &x) in out[start..start + cols].iter_mut().zip(arow) {
                        *o += x;
                    }
                }
            }
            Op::ScatterAddOnto(base, rows, ids) => {
                let basev = sv(base);
                out.copy_from_slice(basev.as_slice());
                drop(basev);
                let rv = sv(rows);
                for (arow, &id) in rv.as_slice().chunks_exact(cols.max(1)).zip(&idx[ids.bounds()]) {
                    let start = id as usize * cols;
                    for (o, &x) in out[start..start + cols].iter_mut().zip(arow) {
                        *o += x;
                    }
                }
            }
            Op::SegmentExtremum { input, segments, winners, is_max } => {
                let av = sv(input);
                let source = av.as_slice();
                // Segments and winners are disjoint windows of the same
                // arena; winners start strictly after segments.
                let (seg_head, win_tail) = idx.split_at_mut(winners.start as usize);
                let seg = &seg_head[segments.bounds()];
                let win = &mut win_tail[..winners.len as usize];
                for (row, &segment) in seg.iter().enumerate() {
                    let segment = segment as usize;
                    for c in 0..cols {
                        let candidate = source[row * cols + c];
                        let slot = &mut win[segment * cols + c];
                        let better = if *slot == u32::MAX {
                            true
                        } else {
                            let current = source[*slot as usize * cols + c];
                            if is_max {
                                candidate > current
                            } else {
                                candidate < current
                            }
                        };
                        if better {
                            *slot = row as u32;
                            out[segment * cols + c] = candidate;
                        }
                    }
                }
            }
            Op::ScaleRows(a, factors) => {
                let av = sv(a);
                for ((orow, arow), &factor) in out
                    .chunks_exact_mut(cols.max(1))
                    .zip(av.as_slice().chunks_exact(cols.max(1)))
                    .zip(&aux[factors.bounds()])
                {
                    for (o, &x) in orow.iter_mut().zip(arow) {
                        *o = x * factor;
                    }
                }
            }
            Op::Mse(a, target) => {
                let av = sv(a);
                let count = (target.len as usize).max(1) as f32;
                let mut total = 0.0f32;
                for (&x, &t) in av.as_slice().iter().zip(&aux[target.bounds()]) {
                    let diff = x - t;
                    total += diff * diff;
                }
                out[0] = total / count;
            }
            Op::BceWithLogits(a, target) => {
                let av = sv(a);
                let count = (target.len as usize).max(1) as f32;
                let mut total = 0.0f32;
                for (&x, &t) in av.as_slice().iter().zip(&aux[target.bounds()]) {
                    total += x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln();
                }
                out[0] = total / count;
            }
        }
    }

    /// Depth-first post-order over the node subgraph rooted at `root`,
    /// children visited in parent-list order — the exact traversal of the
    /// previous engine's `topological_order`. Parameter operands are leaves
    /// with no consumers of their own and are skipped (their emission never
    /// affected op ordering).
    fn compute_order(&mut self, root: u32) {
        let Tape { nodes, srcs, order, stack, mark, mark_gen, .. } = self;
        order.clear();
        stack.clear();
        if mark.len() < nodes.len() {
            mark.resize(nodes.len(), 0);
        }
        *mark_gen = mark_gen.wrapping_add(1);
        if *mark_gen == 0 {
            mark.fill(0);
            *mark_gen = 1;
        }
        let visited = *mark_gen;
        stack.push((root, 0));
        while let Some((node, child_index)) = stack.pop() {
            if child_index == 0 && mark[node as usize] == visited {
                continue;
            }
            match nodes[node as usize].op.nth_src(srcs, child_index as usize) {
                Some(src) => {
                    stack.push((node, child_index + 1));
                    if let Src::Node(child) = src {
                        if mark[child as usize] != visited {
                            stack.push((child, 0));
                        }
                    }
                }
                None => {
                    if mark[node as usize] != visited {
                        mark[node as usize] = visited;
                        order.push(node);
                    }
                }
            }
        }
    }

    /// Reverse-mode differentiation from scalar node `root`. Node gradient
    /// regions reachable from the root are zeroed first (node gradients are
    /// per-backward temporaries); parameter gradients accumulate across
    /// calls in their cells.
    pub(crate) fn backward(&mut self, root: u32) {
        let setup_timer = profile::phase_timer(profile::Phase::BackwardSetup);
        self.compute_order(root);
        if self.grads.len() < self.vals.len() {
            self.grads.resize(self.vals.len(), 0.0);
        }
        for position in 0..self.order.len() {
            let rec = self.nodes[self.order[position] as usize];
            self.grads[rec.off..rec.off + rec.len()].fill(0.0);
        }
        let root_off = self.nodes[root as usize].off;
        self.grads[root_off] = 1.0;
        drop(setup_timer);
        if profile::enabled() {
            // Timed replay: chain the clock reads (the end of one op is the
            // start of the next) so profiling costs one read per op.
            let mut mark = Instant::now();
            for position in (0..self.order.len()).rev() {
                let node = self.order[position];
                self.backprop_node(node);
                let now = Instant::now();
                let elapsed_ns =
                    u64::try_from(now.duration_since(mark).as_nanos()).unwrap_or(u64::MAX);
                mark = now;
                let (flops, bytes) = self.op_cost(node as usize, true);
                profile::record_backward(
                    self.nodes[node as usize].op.kind(),
                    elapsed_ns,
                    flops,
                    bytes,
                );
            }
        } else {
            for position in (0..self.order.len()).rev() {
                let node = self.order[position];
                self.backprop_node(node);
            }
        }
    }

    /// Propagates node `n`'s gradient to its operands, in parent-list order.
    fn backprop_node(&mut self, n: u32) {
        let Tape { nodes, vals, grads, srcs, idx, aux, params, scratch, scratch2, .. } = self;
        let rec = nodes[n as usize];
        let cols = rec.cols as usize;
        let values: &[f32] = vals;
        let (grads_head, grads_tail) = grads.split_at_mut(rec.off);
        let g: &[f32] = &grads_tail[..rec.len()];
        let own = &values[rec.off..rec.off + rec.len()];
        let sv = |s: Src| src_val(values, nodes, params, s);
        // Shorthand: run `f` on the gradient destination of operand `s`.
        macro_rules! dst {
            ($s:expr, $f:expr) => {
                with_grad_dst(grads_head, nodes, params, $s, $f)
            };
        }
        match rec.op {
            Op::Add(a, b) => {
                dst!(a, |d| axpy(d, g, 1.0));
                dst!(b, |d| axpy(d, g, 1.0));
            }
            Op::Sub(a, b) => {
                dst!(a, |d| axpy(d, g, 1.0));
                dst!(b, |d| axpy(d, g, -1.0));
            }
            Op::Mul(a, b) => {
                let (av, bv) = (sv(a), sv(b));
                dst!(a, |d| mul_add(d, g, bv.as_slice()));
                dst!(b, |d| mul_add(d, g, av.as_slice()));
            }
            Op::DivEps(a, b, eps) => {
                let (av, bv) = (sv(a), sv(b));
                dst!(a, |d| {
                    for ((slot, &gv), &y) in d.iter_mut().zip(g).zip(bv.as_slice()) {
                        *slot += gv / (y + eps);
                    }
                });
                dst!(b, |d| {
                    for (((slot, &gv), &x), &y) in
                        d.iter_mut().zip(g).zip(av.as_slice()).zip(bv.as_slice())
                    {
                        let gx = gv * x;
                        let denom = y + eps;
                        *slot += -gx / (denom * denom);
                    }
                });
            }
            Op::Scale(a, factor) => dst!(a, |d| axpy(d, g, factor)),
            Op::AddScalar(a, _) => dst!(a, |d| axpy(d, g, 1.0)),
            Op::MulScalarVar(a, b) => {
                let av = sv(a);
                let s = sv(b).as_slice()[0];
                dst!(a, |d| axpy(d, g, s));
                let ds: f32 = g.iter().zip(av.as_slice()).map(|(&gv, &x)| gv * x).sum();
                dst!(b, |d| d[0] += ds);
            }
            Op::MulColBroadcast(a, b) => {
                let av = sv(a);
                let col = sv(b);
                dst!(a, |d| {
                    for ((drow, grow), &factor) in d
                        .chunks_exact_mut(cols.max(1))
                        .zip(g.chunks_exact(cols.max(1)))
                        .zip(col.as_slice())
                    {
                        for (slot, &gv) in drow.iter_mut().zip(grow) {
                            *slot += gv * factor;
                        }
                    }
                });
                dst!(b, |d| {
                    for ((slot, grow), arow) in d
                        .iter_mut()
                        .zip(g.chunks_exact(cols.max(1)))
                        .zip(av.as_slice().chunks_exact(cols.max(1)))
                    {
                        let mut acc = 0.0f32;
                        for (&gv, &x) in grow.iter().zip(arow) {
                            acc += gv * x;
                        }
                        *slot += acc;
                    }
                });
            }
            Op::Matmul(a, b) => {
                let (m, k) = src_dims(nodes, params, a);
                let n = cols;
                let (av, bv) = (sv(a), sv(b));
                // Both operand gradients are multi-term per element:
                // materialize each into zeroed scratch and add it once,
                // preserving the old engine's materialize-then-accumulate
                // floating-point order.
                // d_a = g × bᵀ (bᵀ goes through scratch2 inside the kernel).
                scratch.clear();
                scratch.resize(m * k, 0.0);
                kernels::matmul_transpose_b(scratch, g, bv.as_slice(), m, n, k, scratch2);
                dst!(a, |d| axpy(d, scratch, 1.0));
                // d_b = aᵀ × g.
                scratch.clear();
                scratch.resize(k * n, 0.0);
                kernels::matmul_transpose_a(scratch, av.as_slice(), g, m, k, n);
                dst!(b, |d| axpy(d, scratch, 1.0));
            }
            Op::AddRowBroadcast(a, b) => {
                dst!(a, |d| axpy(d, g, 1.0));
                dst!(b, |d| {
                    for (c, slot) in d.iter_mut().enumerate() {
                        let mut acc = 0.0f32;
                        for grow in g.chunks_exact(cols.max(1)) {
                            acc += grow[c];
                        }
                        *slot += acc;
                    }
                });
            }
            Op::LeakyRelu(a, slope) => {
                let av = sv(a);
                dst!(a, |d| {
                    for ((slot, &gv), &x) in d.iter_mut().zip(g).zip(av.as_slice()) {
                        *slot += if x > 0.0 { gv } else { slope * gv };
                    }
                });
            }
            Op::Sigmoid(a) => dst!(a, |d| {
                for ((slot, &gv), &y) in d.iter_mut().zip(g).zip(own) {
                    *slot += gv * y * (1.0 - y);
                }
            }),
            Op::Tanh(a) => dst!(a, |d| {
                for ((slot, &gv), &y) in d.iter_mut().zip(g).zip(own) {
                    *slot += gv * (1.0 - y * y);
                }
            }),
            Op::Exp(a) => dst!(a, |d| mul_add(d, g, own)),
            Op::LogEps(a, eps) => {
                let av = sv(a);
                dst!(a, |d| {
                    for ((slot, &gv), &x) in d.iter_mut().zip(g).zip(av.as_slice()) {
                        *slot += gv / (x + eps);
                    }
                });
            }
            Op::SqrtEps(a, _) => dst!(a, |d| {
                for ((slot, &gv), &y) in d.iter_mut().zip(g).zip(own) {
                    *slot += gv * 0.5 / y;
                }
            }),
            Op::Dropout(a, mask) => {
                dst!(a, |d| mul_add(d, g, &aux[mask.bounds()]));
            }
            Op::Sum(a) => {
                let seed = g[0];
                dst!(a, |d| {
                    for slot in d.iter_mut() {
                        *slot += seed;
                    }
                });
            }
            Op::SumAxis0(a) => dst!(a, |d| {
                for drow in d.chunks_exact_mut(cols.max(1)) {
                    for (slot, &gv) in drow.iter_mut().zip(g) {
                        *slot += gv;
                    }
                }
            }),
            Op::ConcatCols(range) => {
                let mut col_off = 0;
                for &part in &srcs[range.bounds()] {
                    let (_, part_cols) = src_dims(nodes, params, part);
                    with_grad_dst(grads_head, nodes, params, part, |d| {
                        for (drow, grow) in
                            d.chunks_exact_mut(part_cols.max(1)).zip(g.chunks_exact(cols.max(1)))
                        {
                            for (slot, &gv) in
                                drow.iter_mut().zip(&grow[col_off..col_off + part_cols])
                            {
                                *slot += gv;
                            }
                        }
                    });
                    col_off += part_cols;
                }
            }
            Op::ConcatRows(range) => {
                let mut read = 0;
                for &part in &srcs[range.bounds()] {
                    with_grad_dst(grads_head, nodes, params, part, |d| {
                        axpy(d, &g[read..read + d.len()], 1.0);
                        read += d.len();
                    });
                }
            }
            Op::GatherRows(a, ids) => {
                // Scatter adjoint is multi-term (duplicate indices):
                // materialize into zeroed scratch, then add once.
                let (source_rows, _) = src_dims(nodes, params, a);
                scratch.clear();
                scratch.resize(source_rows * cols, 0.0);
                for (grow, &id) in g.chunks_exact(cols.max(1)).zip(&idx[ids.bounds()]) {
                    let start = id as usize * cols;
                    for (slot, &gv) in scratch[start..start + cols].iter_mut().zip(grow) {
                        *slot += gv;
                    }
                }
                dst!(a, |d| axpy(d, scratch, 1.0));
            }
            Op::ScatterAddRows(a, ids) | Op::SegmentSum(a, ids) => {
                dst!(a, |d| {
                    for (drow, &id) in d.chunks_exact_mut(cols.max(1)).zip(&idx[ids.bounds()]) {
                        let start = id as usize * cols;
                        for (slot, &gv) in drow.iter_mut().zip(&g[start..start + cols]) {
                            *slot += gv;
                        }
                    }
                });
            }
            Op::ScatterAddOnto(base, rows, ids) => {
                dst!(base, |d| axpy(d, g, 1.0));
                dst!(rows, |d| {
                    for (drow, &id) in d.chunks_exact_mut(cols.max(1)).zip(&idx[ids.bounds()]) {
                        let start = id as usize * cols;
                        for (slot, &gv) in drow.iter_mut().zip(&g[start..start + cols]) {
                            *slot += gv;
                        }
                    }
                });
            }
            Op::SegmentExtremum { input, winners, .. } => {
                // Each winner row belongs to exactly one segment, so every
                // destination element receives at most one term per segment
                // scan — direct accumulation matches materialize-then-add.
                dst!(input, |d| {
                    for (grow, winrow) in g
                        .chunks_exact(cols.max(1))
                        .zip(idx[winners.bounds()].chunks_exact(cols.max(1)))
                    {
                        for (c, (&gv, &winner)) in grow.iter().zip(winrow).enumerate() {
                            if winner != u32::MAX {
                                d[winner as usize * cols + c] += gv;
                            }
                        }
                    }
                });
            }
            Op::ScaleRows(a, factors) => dst!(a, |d| {
                for ((drow, grow), &factor) in d
                    .chunks_exact_mut(cols.max(1))
                    .zip(g.chunks_exact(cols.max(1)))
                    .zip(&aux[factors.bounds()])
                {
                    for (slot, &gv) in drow.iter_mut().zip(grow) {
                        *slot += gv * factor;
                    }
                }
            }),
            Op::Mse(a, target) => {
                let av = sv(a);
                let count = (target.len as usize).max(1) as f32;
                let factor = 2.0 * g[0] / count;
                dst!(a, |d| {
                    for ((slot, &x), &t) in
                        d.iter_mut().zip(av.as_slice()).zip(&aux[target.bounds()])
                    {
                        *slot += (x - t) * factor;
                    }
                });
            }
            Op::BceWithLogits(a, target) => {
                let av = sv(a);
                let count = (target.len as usize).max(1) as f32;
                let seed = g[0];
                dst!(a, |d| {
                    for ((slot, &x), &t) in
                        d.iter_mut().zip(av.as_slice()).zip(&aux[target.bounds()])
                    {
                        let sigma = 1.0 / (1.0 + (-x).exp());
                        *slot += seed * (sigma - t) / count;
                    }
                });
            }
        }
    }
}

/// `out[i] = f(a[i], b[i])` over the whole region.
fn binary(out: &mut [f32], a: &SrcVal<'_>, b: &SrcVal<'_>, f: impl Fn(f32, f32) -> f32) {
    for ((o, &x), &y) in out.iter_mut().zip(a.as_slice()).zip(b.as_slice()) {
        *o = f(x, y);
    }
}

/// `out[i] = f(a[i])` over the whole region.
fn unary(out: &mut [f32], a: &SrcVal<'_>, f: impl Fn(f32) -> f32) {
    for (o, &x) in out.iter_mut().zip(a.as_slice()) {
        *o = f(x);
    }
}

/// `dst[i] += src[i] * factor`.
fn axpy(dst: &mut [f32], src: &[f32], factor: f32) {
    for (slot, &x) in dst.iter_mut().zip(src) {
        *slot += x * factor;
    }
}

/// `dst[i] += a[i] * b[i]`.
fn mul_add(dst: &mut [f32], a: &[f32], b: &[f32]) {
    for ((slot, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *slot += x * y;
    }
}
