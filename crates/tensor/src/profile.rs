//! Per-op tape profiler: wall time, invocation counts and analytic
//! FLOPs/bytes per [`OpKind`], aggregated across threads.
//!
//! When enabled (`HLSGNN_PROFILE=1`, or [`set_enabled`]`(true)`), the arena
//! tape times every forward op as it is recorded and every backward op as it
//! is replayed, and attributes an analytic cost model — floating-point
//! operations and bytes moved, both derived purely from the op record's
//! shapes — to the op's kind. [`snapshot`] folds the accumulators into a
//! table with a roofline-style arithmetic-intensity column (FLOPs / byte):
//! high-intensity kinds (matmul) are compute-bound candidates for SIMD and
//! threading, low-intensity kinds (gather/scatter, elementwise) are
//! memory-bound and won't repay vectorisation effort.
//!
//! Training phases that run *outside* the tape — mini-batch fetch and the
//! optimiser (gradient clip + Adam + tape reset) — are timed through
//! [`PhaseTimer`] so the profile accounts for the whole training step, not
//! just the op stream. The `tensor_profile` bin gates on this: ops + phases
//! must cover ≥ 90% of the measured `train_step` wall time.
//!
//! Cost discipline mirrors `hls_gnn_obs`: the disabled path is one relaxed
//! atomic load per op (the `tensor_profile` gate holds the *enabled* path
//! under the same < 2% median-per-pair budget as the span layer), the
//! enabled path is two monotonic clock reads plus a handful of relaxed
//! atomics. Profiling never touches the numerics — loss histories are
//! bit-identical with the profiler on or off.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Environment variable enabling the profiler (`1`/`true`/`on`).
pub const PROFILE_ENV_VAR: &str = "HLSGNN_PROFILE";

/// The kind of a tape op — one variant per [`crate::tape`] op record, used
/// as the profile aggregation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum OpKind {
    Add,
    Sub,
    Mul,
    DivEps,
    Scale,
    AddScalar,
    MulScalarVar,
    MulColBroadcast,
    Matmul,
    AddRowBroadcast,
    LeakyRelu,
    Sigmoid,
    Tanh,
    Exp,
    LogEps,
    SqrtEps,
    Dropout,
    Sum,
    SumAxis0,
    ConcatCols,
    ConcatRows,
    GatherRows,
    ScatterAddRows,
    ScatterAddOnto,
    SegmentSum,
    SegmentExtremum,
    ScaleRows,
    Mse,
    BceWithLogits,
}

impl OpKind {
    /// Number of op kinds.
    pub const COUNT: usize = 29;

    /// Every kind, in declaration order.
    pub const ALL: [OpKind; OpKind::COUNT] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::DivEps,
        OpKind::Scale,
        OpKind::AddScalar,
        OpKind::MulScalarVar,
        OpKind::MulColBroadcast,
        OpKind::Matmul,
        OpKind::AddRowBroadcast,
        OpKind::LeakyRelu,
        OpKind::Sigmoid,
        OpKind::Tanh,
        OpKind::Exp,
        OpKind::LogEps,
        OpKind::SqrtEps,
        OpKind::Dropout,
        OpKind::Sum,
        OpKind::SumAxis0,
        OpKind::ConcatCols,
        OpKind::ConcatRows,
        OpKind::GatherRows,
        OpKind::ScatterAddRows,
        OpKind::ScatterAddOnto,
        OpKind::SegmentSum,
        OpKind::SegmentExtremum,
        OpKind::ScaleRows,
        OpKind::Mse,
        OpKind::BceWithLogits,
    ];

    /// Stable lowercase name (the profile table / JSON key).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::DivEps => "div_eps",
            OpKind::Scale => "scale",
            OpKind::AddScalar => "add_scalar",
            OpKind::MulScalarVar => "mul_scalar_var",
            OpKind::MulColBroadcast => "mul_col_broadcast",
            OpKind::Matmul => "matmul",
            OpKind::AddRowBroadcast => "add_row_broadcast",
            OpKind::LeakyRelu => "leaky_relu",
            OpKind::Sigmoid => "sigmoid",
            OpKind::Tanh => "tanh",
            OpKind::Exp => "exp",
            OpKind::LogEps => "log_eps",
            OpKind::SqrtEps => "sqrt_eps",
            OpKind::Dropout => "dropout",
            OpKind::Sum => "sum",
            OpKind::SumAxis0 => "sum_axis0",
            OpKind::ConcatCols => "concat_cols",
            OpKind::ConcatRows => "concat_rows",
            OpKind::GatherRows => "gather_rows",
            OpKind::ScatterAddRows => "scatter_add_rows",
            OpKind::ScatterAddOnto => "scatter_add_onto",
            OpKind::SegmentSum => "segment_sum",
            OpKind::SegmentExtremum => "segment_extremum",
            OpKind::ScaleRows => "scale_rows",
            OpKind::Mse => "mse",
            OpKind::BceWithLogits => "bce_with_logits",
        }
    }
}

/// A training-loop phase timed outside the op stream (no tape ops run inside
/// these regions, so phase time and op time never overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Mini-batch fetch (dataset access).
    Fetch,
    /// Tape-free input assembly: batch fusing, feature/index/target
    /// marshalling, per-edge normalisation tables.
    Assemble,
    /// Backward-pass setup inside the tape: the reverse-order walk and
    /// gradient-region zeroing that precede the op replay.
    BackwardSetup,
    /// Gradient zero/clip + optimiser update + tape reset.
    Optimizer,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 4;

    /// Every phase, in declaration order.
    pub const ALL: [Phase; Phase::COUNT] =
        [Phase::Fetch, Phase::Assemble, Phase::BackwardSetup, Phase::Optimizer];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Fetch => "fetch",
            Phase::Assemble => "assemble",
            Phase::BackwardSetup => "backward_setup",
            Phase::Optimizer => "optimizer",
        }
    }
}

const ENABLED_UNKNOWN: u8 = 0;
const ENABLED_ON: u8 = 1;
const ENABLED_OFF: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(ENABLED_UNKNOWN);

/// Whether the profiler is recording. Defaults to off; `HLSGNN_PROFILE=1`
/// (or [`set_enabled`]`(true)`) turns it on. The off path of every hook is a
/// single relaxed load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        ENABLED_ON => true,
        ENABLED_OFF => false,
        _ => {
            let on = matches!(
                std::env::var(PROFILE_ENV_VAR).as_deref(),
                Ok("1") | Ok("true") | Ok("on")
            );
            ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the profiler switch at runtime (wins over `HLSGNN_PROFILE`).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ENABLED_ON } else { ENABLED_OFF }, Ordering::Relaxed);
}

/// One per-kind accumulator cell. Plain relaxed atomics: the profile is a
/// monotone sum, exact under any interleaving.
struct KindSlot {
    count: AtomicU64,
    forward_ns: AtomicU64,
    backward_ns: AtomicU64,
    flops: AtomicU64,
    bytes: AtomicU64,
}

impl KindSlot {
    #[allow(clippy::declare_interior_mutable_const)] // array-repeat seed only
    const NEW: KindSlot = KindSlot {
        count: AtomicU64::new(0),
        forward_ns: AtomicU64::new(0),
        backward_ns: AtomicU64::new(0),
        flops: AtomicU64::new(0),
        bytes: AtomicU64::new(0),
    };
}

struct PhaseSlot {
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl PhaseSlot {
    #[allow(clippy::declare_interior_mutable_const)] // array-repeat seed only
    const NEW: PhaseSlot = PhaseSlot { count: AtomicU64::new(0), total_ns: AtomicU64::new(0) };
}

static KINDS: [KindSlot; OpKind::COUNT] = [KindSlot::NEW; OpKind::COUNT];
static PHASES: [PhaseSlot; Phase::COUNT] = [PhaseSlot::NEW; Phase::COUNT];

/// Credits one recorded forward op to `kind`. Called by the tape with the
/// analytic cost of the forward computation.
pub(crate) fn record_forward(kind: OpKind, elapsed_ns: u64, flops: u64, bytes: u64) {
    let slot = &KINDS[kind as usize];
    slot.count.fetch_add(1, Ordering::Relaxed);
    slot.forward_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    slot.flops.fetch_add(flops, Ordering::Relaxed);
    slot.bytes.fetch_add(bytes, Ordering::Relaxed);
}

/// Credits one replayed backward op to `kind`, with the analytic cost of the
/// gradient computation.
pub(crate) fn record_backward(kind: OpKind, elapsed_ns: u64, flops: u64, bytes: u64) {
    let slot = &KINDS[kind as usize];
    slot.backward_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
    slot.flops.fetch_add(flops, Ordering::Relaxed);
    slot.bytes.fetch_add(bytes, Ordering::Relaxed);
}

/// RAII timer for an off-tape [`Phase`]; inert when the profiler is off.
pub struct PhaseTimer {
    phase: Phase,
    start: Option<Instant>,
}

/// Starts timing `phase`. Bind the result so the guard covers the region.
pub fn phase_timer(phase: Phase) -> PhaseTimer {
    PhaseTimer { phase, start: enabled().then(Instant::now) }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let slot = &PHASES[self.phase as usize];
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.total_ns.fetch_add(
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }
}

/// Aggregated statistics for one op kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// The op kind.
    pub kind: OpKind,
    /// Forward invocations recorded.
    pub count: u64,
    /// Total forward wall time, nanoseconds.
    pub forward_ns: u64,
    /// Total backward wall time, nanoseconds.
    pub backward_ns: u64,
    /// Analytic floating-point operations (forward + backward).
    pub flops: u64,
    /// Analytic bytes moved (forward + backward).
    pub bytes: u64,
}

impl OpStats {
    /// Forward + backward wall time, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.forward_ns + self.backward_ns
    }

    /// Roofline arithmetic intensity: FLOPs per byte moved.
    pub fn intensity(&self) -> f64 {
        self.flops as f64 / self.bytes.max(1) as f64
    }
}

/// Aggregated statistics for one off-tape phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStats {
    /// The phase.
    pub phase: Phase,
    /// Timed regions entered.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
}

/// A point-in-time profile snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Per-kind rows, only kinds that were invoked, sorted by descending
    /// total time (ties by name for determinism).
    pub ops: Vec<OpStats>,
    /// Off-tape phase rows, only phases that were entered.
    pub phases: Vec<PhaseStats>,
}

impl OpProfile {
    /// Total attributed wall time — every op (forward + backward) plus every
    /// off-tape phase — in nanoseconds.
    pub fn attributed_ns(&self) -> u64 {
        self.ops.iter().map(OpStats::total_ns).sum::<u64>()
            + self.phases.iter().map(|phase| phase.total_ns).sum::<u64>()
    }
}

/// Folds the global accumulators into a profile snapshot.
pub fn snapshot() -> OpProfile {
    let mut ops: Vec<OpStats> = OpKind::ALL
        .iter()
        .map(|&kind| {
            let slot = &KINDS[kind as usize];
            OpStats {
                kind,
                count: slot.count.load(Ordering::Relaxed),
                forward_ns: slot.forward_ns.load(Ordering::Relaxed),
                backward_ns: slot.backward_ns.load(Ordering::Relaxed),
                flops: slot.flops.load(Ordering::Relaxed),
                bytes: slot.bytes.load(Ordering::Relaxed),
            }
        })
        .filter(|stats| stats.count > 0)
        .collect();
    ops.sort_by(|a, b| {
        b.total_ns().cmp(&a.total_ns()).then_with(|| a.kind.name().cmp(b.kind.name()))
    });
    let phases = Phase::ALL
        .iter()
        .map(|&phase| {
            let slot = &PHASES[phase as usize];
            PhaseStats {
                phase,
                count: slot.count.load(Ordering::Relaxed),
                total_ns: slot.total_ns.load(Ordering::Relaxed),
            }
        })
        .filter(|stats| stats.count > 0)
        .collect();
    OpProfile { ops, phases }
}

/// Zeroes every accumulator (the profile is cumulative across steps and
/// threads otherwise).
pub fn reset() {
    for slot in &KINDS {
        slot.count.store(0, Ordering::Relaxed);
        slot.forward_ns.store(0, Ordering::Relaxed);
        slot.backward_ns.store(0, Ordering::Relaxed);
        slot.flops.store(0, Ordering::Relaxed);
        slot.bytes.store(0, Ordering::Relaxed);
    }
    for slot in &PHASES {
        slot.count.store(0, Ordering::Relaxed);
        slot.total_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::var::Var;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that flip the global profiler switch. While the
    /// switch is on, *other* test threads' tape ops also land in the global
    /// accumulators, so assertions below are `>=` where another thread could
    /// plausibly add to a row.
    fn global_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn profile_attributes_ops_and_is_resettable() {
        let _guard = global_lock();
        set_enabled(true);
        reset();
        let a = Var::parameter(Matrix::full(8, 8, 1.0));
        let b = Var::parameter(Matrix::full(8, 8, 2.0));
        let loss = a.matmul(&b).leaky_relu(0.1).sum();
        loss.backward();
        crate::tape::reset();
        let profile = snapshot();
        set_enabled(false);
        let kinds: Vec<OpKind> = profile.ops.iter().map(|stats| stats.kind).collect();
        assert!(kinds.contains(&OpKind::Matmul), "matmul missing from {kinds:?}");
        assert!(kinds.contains(&OpKind::LeakyRelu));
        assert!(kinds.contains(&OpKind::Sum));
        let matmul = profile.ops.iter().find(|s| s.kind == OpKind::Matmul).unwrap();
        assert!(matmul.count >= 1);
        // At least forward 2·8·8·8 plus backward 4·8·8·8 analytic FLOPs.
        assert!(matmul.flops >= 2 * 512 + 4 * 512, "flops = {}", matmul.flops);
        assert!(matmul.backward_ns > 0, "backward replay must be timed");
        assert!(matmul.intensity() > 0.0);
        reset();
        assert!(snapshot().ops.is_empty());
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _guard = global_lock();
        set_enabled(false);
        reset();
        let a = Var::parameter(Matrix::full(4, 4, 1.0));
        a.matmul(&a).sum().backward();
        crate::tape::reset();
        assert!(snapshot().ops.is_empty());
        let _timer = phase_timer(Phase::Optimizer);
        drop(_timer);
        assert!(snapshot().phases.is_empty());
    }

    #[test]
    fn phase_timers_accumulate_when_enabled() {
        let _guard = global_lock();
        set_enabled(true);
        reset();
        {
            let _timer = phase_timer(Phase::Fetch);
        }
        {
            let _timer = phase_timer(Phase::Optimizer);
        }
        let profile = snapshot();
        set_enabled(false);
        assert_eq!(profile.phases.len(), 2);
        assert!(profile.phases.iter().any(|p| p.phase == Phase::Fetch && p.count >= 1));
        assert!(profile.phases.iter().any(|p| p.phase == Phase::Optimizer && p.count >= 1));
        reset();
    }

    #[test]
    fn names_are_unique_and_cover_all_kinds() {
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|kind| kind.name()).collect();
        assert_eq!(names.len(), OpKind::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpKind::COUNT, "duplicate OpKind names");
    }
}
