//! `gnn-tensor` — a small dense-matrix autodiff engine for graph neural networks.
//!
//! The Rust deep-learning ecosystem does not currently provide the
//! message-passing layers the paper needs, so this crate supplies the
//! substrate from scratch:
//!
//! * [`matrix::Matrix`] — dense row-major `f32` matrices with the linear
//!   algebra and gather/scatter kernels message passing needs.
//! * [`var::Var`] — reverse-mode automatic differentiation over matrices,
//!   including segment aggregations and the loss functions used by the
//!   prediction tasks.
//! * [`tape`] — the arena tape backing `Var`: one flat op/value/grad store
//!   per thread, reset between training steps so steady-state epochs run
//!   with O(1) allocations.
//! * [`nn`] — linear layers, MLPs and embedding tables.
//! * [`optim`] — Adam and SGD optimisers plus gradient clipping.
//! * [`profile`] — the per-op tape profiler (`HLSGNN_PROFILE=1`): wall time,
//!   invocation counts and analytic FLOPs/bytes per op kind, with a
//!   roofline-style arithmetic-intensity column (`tensor_profile` in the
//!   bench crate prints the table).
//! * [`legacy`] — the frozen pre-arena `Rc`-graph engine, kept only as the
//!   comparison baseline for `tensor_bench`.
//!
//! # Example
//!
//! ```
//! use gnn_tensor::{Matrix, Var};
//! use gnn_tensor::optim::Adam;
//!
//! // Fit y = 2x with a single weight.
//! let weight = Var::parameter(Matrix::full(1, 1, 0.0));
//! let mut adam = Adam::new(vec![weight.clone()], 0.1);
//! let x = Matrix::column_vector(&[1.0, 2.0, 3.0]);
//! let y = Matrix::column_vector(&[2.0, 4.0, 6.0]);
//! for _ in 0..300 {
//!     adam.zero_grad();
//!     let prediction = Var::new(x.clone()).matmul(&weight);
//!     prediction.mse(&y).backward();
//!     adam.step();
//! }
//! assert!((weight.value().get(0, 0) - 2.0).abs() < 0.05);
//! ```

pub mod legacy;
pub mod matrix;
pub mod nn;
pub mod optim;
pub mod profile;
pub mod tape;
pub mod var;

pub use matrix::Matrix;
pub use nn::{he_uniform, xavier_uniform, Embedding, Linear, Mlp};
pub use optim::{clip_grad_norm, Adam, Sgd};
pub use var::Var;
