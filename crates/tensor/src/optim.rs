//! Optimisers and gradient utilities.
//!
//! The paper trains every model with Adam; SGD is provided for ablations and
//! tests. Optimisers own a list of parameter [`Var`]s and update their values
//! in place from the accumulated gradients.

use crate::matrix::Matrix;
use crate::var::Var;

/// Clips the global L2 norm of the gradients of `params` to `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for param in params {
        if let Some(grad) = param.grad() {
            total += grad.data().iter().map(|g| g * g).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for param in params {
            if let Some(grad) = param.grad() {
                param.zero_grad();
                param.accumulate_grad(&grad.scale(scale));
            }
        }
    }
    norm
}

/// The Adam optimiser.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Var>,
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    weight_decay: f32,
    first_moment: Vec<Matrix>,
    second_moment: Vec<Matrix>,
    step_count: u64,
}

impl Adam {
    /// Creates an Adam optimiser with the usual defaults (β₁ = 0.9, β₂ = 0.999).
    pub fn new(params: Vec<Var>, learning_rate: f32) -> Self {
        let first_moment = params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
        let second_moment = params.iter().map(|p| Matrix::zeros(p.rows(), p.cols())).collect();
        Adam {
            params,
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            first_moment,
            second_moment,
            step_count: 0,
        }
    }

    /// Sets decoupled weight decay (AdamW style).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Changes the learning rate (e.g. for a decay schedule).
    pub fn set_learning_rate(&mut self, learning_rate: f32) {
        self.learning_rate = learning_rate;
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Number of parameters tracked.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Clears the gradients of all tracked parameters.
    pub fn zero_grad(&self) {
        for param in &self.params {
            param.zero_grad();
        }
    }

    /// Applies one Adam update from the accumulated gradients. Parameters with
    /// no gradient are left untouched.
    pub fn step(&mut self) {
        self.step_count += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for (index, param) in self.params.iter().enumerate() {
            let Some(grad) = param.grad() else { continue };
            let mut value = param.value();
            if self.weight_decay > 0.0 {
                value = value.map(|v| v * (1.0 - self.learning_rate * self.weight_decay));
            }
            let m = &mut self.first_moment[index];
            let v = &mut self.second_moment[index];
            *m = m.scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
            *v = v.scale(self.beta2).add(&grad.hadamard(&grad).scale(1.0 - self.beta2));
            let update = Matrix::from_fn(value.rows(), value.cols(), |r, c| {
                let m_hat = m.get(r, c) / bias1;
                let v_hat = v.get(r, c) / bias2;
                self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon)
            });
            param.set_value(value.sub(&update));
        }
    }
}

/// Plain stochastic gradient descent (used in tests and ablations).
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Var>,
    learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(params: Vec<Var>, learning_rate: f32) -> Self {
        Sgd { params, learning_rate }
    }

    /// Clears the gradients of all tracked parameters.
    pub fn zero_grad(&self) {
        for param in &self.params {
            param.zero_grad();
        }
    }

    /// Applies one SGD update.
    pub fn step(&self) {
        for param in &self.params {
            if let Some(grad) = param.grad() {
                param.set_value(param.value().sub(&grad.scale(self.learning_rate)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_loss(param: &Var) -> Var {
        // loss = sum((x - 3)^2)
        param.add_scalar(-3.0).mul(&param.add_scalar(-3.0)).sum()
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let param = Var::parameter(Matrix::full(2, 2, 10.0));
        let mut adam = Adam::new(vec![param.clone()], 0.2);
        for _ in 0..200 {
            adam.zero_grad();
            quadratic_loss(&param).backward();
            adam.step();
        }
        for &v in param.value().data() {
            assert!((v - 3.0).abs() < 0.05, "expected ~3.0, got {v}");
        }
    }

    #[test]
    fn sgd_converges_on_a_quadratic() {
        let param = Var::parameter(Matrix::full(1, 3, -5.0));
        let sgd = Sgd::new(vec![param.clone()], 0.05);
        for _ in 0..300 {
            sgd.zero_grad();
            quadratic_loss(&param).backward();
            sgd.step();
        }
        for &v in param.value().data() {
            assert!((v - 3.0).abs() < 0.05, "expected ~3.0, got {v}");
        }
    }

    #[test]
    fn adam_skips_parameters_without_gradients() {
        let used = Var::parameter(Matrix::full(1, 1, 1.0));
        let unused = Var::parameter(Matrix::full(1, 1, 7.0));
        let mut adam = Adam::new(vec![used.clone(), unused.clone()], 0.1);
        adam.zero_grad();
        quadratic_loss(&used).backward();
        adam.step();
        assert_ne!(used.value().get(0, 0), 1.0);
        assert_eq!(unused.value().get(0, 0), 7.0);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let param = Var::parameter(Matrix::full(1, 1, 5.0));
        let mut plain = Adam::new(vec![param.clone()], 0.0);
        plain.zero_grad();
        quadratic_loss(&param).backward();
        plain.step();
        assert_eq!(param.value().get(0, 0), 5.0, "zero lr + no decay leaves the value unchanged");

        let decayed_param = Var::parameter(Matrix::full(1, 1, 5.0));
        let mut decayed = Adam::new(vec![decayed_param.clone()], 0.1).with_weight_decay(0.5);
        decayed.zero_grad();
        quadratic_loss(&decayed_param).backward();
        decayed.step();
        assert!(decayed_param.value().get(0, 0) < 5.0);
    }

    #[test]
    fn grad_clipping_caps_the_norm() {
        let param = Var::parameter(Matrix::full(1, 4, 100.0));
        quadratic_loss(&param).backward();
        let before = clip_grad_norm(std::slice::from_ref(&param), 1.0);
        assert!(before > 1.0);
        let after: f32 = param.grad().unwrap().data().iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((after - 1.0).abs() < 1e-3);
    }

    #[test]
    fn learning_rate_can_be_adjusted() {
        let mut adam = Adam::new(vec![], 0.01);
        assert_eq!(adam.learning_rate(), 0.01);
        adam.set_learning_rate(0.001);
        assert_eq!(adam.learning_rate(), 0.001);
        assert_eq!(adam.param_count(), 0);
    }
}
