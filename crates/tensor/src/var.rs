//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Var`] is a cheap handle into the thread-local arena tape
//! ([`crate::tape`]). Operations on `Var`s append typed op records to the
//! tape and write forward values into a flat reusable buffer; calling
//! [`Var::backward`] on a scalar output propagates gradients to every
//! reachable node. Trainable leaves (created with [`Var::parameter`]) live
//! outside the tape in reference-counted cells, so they survive
//! [`crate::tape::reset`] and keep their accumulated gradients for the
//! optimiser.
//!
//! The operation set is tailored to message-passing GNNs: dense linear
//! algebra, element-wise activations, row gather/scatter (the edge
//! message-passing primitives), segment aggregations, pooling reductions and
//! the two loss functions used by the prediction tasks.
//!
//! # Handle semantics
//!
//! A node handle is `(generation, index, shape)` — `Clone` is a bitwise copy
//! (parameter handles bump a reference count). Handles from before a
//! [`crate::tape::reset`] are stale and panic on use. Node gradients are
//! per-backward temporaries; parameter gradients accumulate across backward
//! passes until [`Var::zero_grad`].

use std::cell::Cell;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;
use crate::tape::{self, Op, ParamCell, Src, Tape};

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|cell| {
        let id = cell.get();
        cell.set(id + 1);
        id
    })
}

#[derive(Clone)]
enum Repr {
    /// A leaf living outside the tape (parameter or constant).
    Param(Rc<ParamCell>),
    /// An op result on the tape of generation `generation`.
    Node { generation: u64, index: u32, rows: u32, cols: u32 },
}

/// A handle to a node of the autodiff tape (or a parameter cell).
#[derive(Clone)]
pub struct Var(Repr);

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id())
            .field("shape", &self.shape())
            .field("trainable", &self.is_trainable())
            .finish()
    }
}

impl Var {
    fn leaf(value: Matrix, trainable: bool) -> Var {
        Var(Repr::Param(Rc::new(ParamCell::new(next_id(), trainable, value))))
    }

    fn node(tape: &Tape, index: u32, rows: usize, cols: usize) -> Var {
        Var(Repr::Node {
            generation: tape.generation(),
            index,
            rows: rows as u32,
            cols: cols as u32,
        })
    }

    /// The operand handle of this `Var` on the given tape.
    ///
    /// # Panics
    /// Panics if this is a node handle from before a tape reset.
    fn src(&self, tape: &mut Tape) -> Src {
        match &self.0 {
            Repr::Param(cell) => tape.param_src(cell),
            Repr::Node { generation, index, .. } => {
                assert_eq!(
                    *generation,
                    tape.generation(),
                    "stale Var handle: the tape was reset since this node was recorded"
                );
                Src::Node(*index)
            }
        }
    }

    /// Resolves a node handle's index, asserting it is not stale.
    fn node_index(&self, tape: &Tape) -> u32 {
        match &self.0 {
            Repr::Param(_) => unreachable!("node_index on a leaf"),
            Repr::Node { generation, index, .. } => {
                assert_eq!(
                    *generation,
                    tape.generation(),
                    "stale Var handle: the tape was reset since this node was recorded"
                );
                *index
            }
        }
    }

    /// Creates a constant (non-trainable) leaf.
    pub fn new(value: Matrix) -> Var {
        Var::leaf(value, false)
    }

    /// Creates a trainable leaf (a model parameter).
    pub fn parameter(value: Matrix) -> Var {
        Var::leaf(value, true)
    }

    /// Creates a `1×1` constant.
    pub fn scalar(value: f32) -> Var {
        Var::new(Matrix::from_vec(1, 1, vec![value]))
    }

    /// Unique id of this node (leaves get a stable id; tape nodes derive one
    /// from their generation and index).
    pub fn id(&self) -> u64 {
        match &self.0 {
            Repr::Param(cell) => cell.id,
            Repr::Node { generation, index, .. } => (generation << 32) | u64::from(*index),
        }
    }

    /// True if this is a trainable parameter leaf.
    pub fn is_trainable(&self) -> bool {
        match &self.0 {
            Repr::Param(cell) => cell.trainable,
            Repr::Node { .. } => false,
        }
    }

    /// A clone of the current value.
    pub fn value(&self) -> Matrix {
        match &self.0 {
            Repr::Param(cell) => cell.value.borrow().clone(),
            Repr::Node { .. } => tape::with(|t| t.node_matrix(self.node_index(t))),
        }
    }

    /// Runs a closure with a borrowed view of the value. For leaves this
    /// avoids any copy; for tape nodes the flat value region is materialised
    /// into a temporary matrix first.
    pub fn with_value<R>(&self, f: impl FnOnce(&Matrix) -> R) -> R {
        match &self.0 {
            Repr::Param(cell) => f(&cell.value.borrow()),
            Repr::Node { .. } => f(&self.value()),
        }
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        match &self.0 {
            Repr::Param(cell) => cell.value.borrow().shape(),
            Repr::Node { rows, cols, .. } => (*rows as usize, *cols as usize),
        }
    }

    /// Number of rows of the value.
    pub fn rows(&self) -> usize {
        self.shape().0
    }

    /// Number of columns of the value.
    pub fn cols(&self) -> usize {
        self.shape().1
    }

    /// The scalar value of a `1×1` node.
    ///
    /// # Panics
    /// Panics if the node is not `1×1`.
    pub fn scalar_value(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar_value on a non-scalar node");
        self.with_value(|value| value.get(0, 0))
    }

    /// Replaces the stored value (used by optimisers on parameter leaves).
    /// On a tape node the shape must be preserved.
    pub fn set_value(&self, value: Matrix) {
        match &self.0 {
            Repr::Param(cell) => *cell.value.borrow_mut() = value,
            Repr::Node { .. } => {
                tape::with(|t| t.set_node_value(self.node_index(t), &value));
            }
        }
    }

    /// A clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        match &self.0 {
            Repr::Param(cell) => cell.grad.borrow().clone(),
            Repr::Node { generation, index, .. } => tape::with(|t| {
                if *generation != t.generation() {
                    return None;
                }
                t.node_grad_matrix(*index)
            }),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        match &self.0 {
            Repr::Param(cell) => *cell.grad.borrow_mut() = None,
            Repr::Node { .. } => tape::with(|t| t.zero_node_grad(self.node_index(t))),
        }
    }

    /// Adds `delta` into the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Matrix) {
        match &self.0 {
            Repr::Param(cell) => {
                let mut slot = cell.grad.borrow_mut();
                match slot.as_mut() {
                    Some(grad) => grad.add_assign(delta),
                    None => *slot = Some(delta.clone()),
                }
            }
            Repr::Node { .. } => {
                tape::with(|t| t.accumulate_node_grad(self.node_index(t), delta));
            }
        }
    }

    /// Runs reverse-mode differentiation from this scalar node.
    ///
    /// # Panics
    /// Panics if the node is not `1×1`.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward must start from a scalar loss");
        match &self.0 {
            // A bare leaf is its own (trivial) graph: seed its gradient.
            Repr::Param(_) => self.accumulate_grad(&Matrix::from_vec(1, 1, vec![1.0])),
            Repr::Node { .. } => tape::with(|t| {
                let root = self.node_index(t);
                t.backward(root);
            }),
        }
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    fn binary_elementwise(&self, other: &Var, op: impl FnOnce(Src, Src) -> Op) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!((rows, cols), other.shape(), "element-wise shape mismatch");
        tape::with(|t| {
            let a = self.src(t);
            let b = other.src(t);
            let index = t.record(rows, cols, op(a, b));
            Var::node(t, index, rows, cols)
        })
    }

    fn unary_elementwise(&self, op: impl FnOnce(Src) -> Op) -> Var {
        let (rows, cols) = self.shape();
        tape::with(|t| {
            let a = self.src(t);
            let index = t.record(rows, cols, op(a));
            Var::node(t, index, rows, cols)
        })
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Var) -> Var {
        self.binary_elementwise(other, Op::Add)
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Var) -> Var {
        self.binary_elementwise(other, Op::Sub)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        self.binary_elementwise(other, Op::Mul)
    }

    /// Element-wise division with an epsilon guard on the denominator.
    pub fn div_eps(&self, other: &Var, eps: f32) -> Var {
        self.binary_elementwise(other, |a, b| Op::DivEps(a, b, eps))
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, factor: f32) -> Var {
        self.unary_elementwise(|a| Op::Scale(a, factor))
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, constant: f32) -> Var {
        self.unary_elementwise(|a| Op::AddScalar(a, constant))
    }

    /// Multiplies every element by a trainable `1×1` scalar node.
    ///
    /// # Panics
    /// Panics if `scalar` is not `1×1`.
    pub fn mul_scalar_var(&self, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "mul_scalar_var expects a 1x1 scalar node");
        let (rows, cols) = self.shape();
        tape::with(|t| {
            let a = self.src(t);
            let b = scalar.src(t);
            let index = t.record(rows, cols, Op::MulScalarVar(a, b));
            Var::node(t, index, rows, cols)
        })
    }

    /// Multiplies row `r` of an `n×d` node by element `r` of an `n×1` column
    /// node (differentiable row-wise broadcast, used for attention weights).
    ///
    /// # Panics
    /// Panics if `column` is not `n×1` with matching row count.
    pub fn mul_col_broadcast(&self, column: &Var) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(column.cols(), 1, "mul_col_broadcast expects an n×1 column");
        assert_eq!(column.rows(), rows, "mul_col_broadcast row mismatch");
        tape::with(|t| {
            let a = self.src(t);
            let b = column.src(t);
            let index = t.record(rows, cols, Op::MulColBroadcast(a, b));
            Var::node(t, index, rows, cols)
        })
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `self × other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Var) -> Var {
        let (rows, inner) = self.shape();
        let (other_rows, cols) = other.shape();
        assert_eq!(
            inner, other_rows,
            "matmul shape mismatch: ({rows}x{inner}) x ({other_rows}x{cols})"
        );
        tape::with(|t| {
            let a = self.src(t);
            let b = other.src(t);
            let index = t.record(rows, cols, Op::Matmul(a, b));
            Var::node(t, index, rows, cols)
        })
    }

    /// Adds a `1×d` row vector to every row of an `n×d` matrix.
    ///
    /// # Panics
    /// Panics if the column counts differ or `bias` is not a single row.
    pub fn add_row_broadcast(&self, bias: &Var) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(bias.rows(), 1, "bias must be a single row");
        assert_eq!(bias.cols(), cols, "bias width mismatch");
        tape::with(|t| {
            let a = self.src(t);
            let b = bias.src(t);
            let index = t.record(rows, cols, Op::AddRowBroadcast(a, b));
            Var::node(t, index, rows, cols)
        })
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.leaky_relu(0.0)
    }

    /// Leaky rectified linear unit.
    pub fn leaky_relu(&self, negative_slope: f32) -> Var {
        self.unary_elementwise(|a| Op::LeakyRelu(a, negative_slope))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        self.unary_elementwise(Op::Sigmoid)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        self.unary_elementwise(Op::Tanh)
    }

    /// Element-wise exponential (inputs are clamped to 30 to avoid overflow).
    pub fn exp(&self) -> Var {
        self.unary_elementwise(Op::Exp)
    }

    /// Element-wise `ln(x + eps)`.
    pub fn log_eps(&self, eps: f32) -> Var {
        self.unary_elementwise(|a| Op::LogEps(a, eps))
    }

    /// Element-wise `sqrt(x + eps)`.
    pub fn sqrt_eps(&self, eps: f32) -> Var {
        self.unary_elementwise(|a| Op::SqrtEps(a, eps))
    }

    /// Inverted dropout: keeps each element with probability `1 - p` and
    /// rescales kept elements by `1/(1-p)`. With `p <= 0` this is the identity.
    pub fn dropout(&self, p: f32, rng: &mut StdRng) -> Var {
        if p <= 0.0 {
            return self.scale(1.0);
        }
        let keep = 1.0 - p.clamp(0.0, 0.95);
        let (rows, cols) = self.shape();
        // Row-major draw order, matching `Matrix::from_fn`.
        let mask: Vec<f32> = (0..rows * cols)
            .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_aux(&mask);
            let index = t.record(rows, cols, Op::Dropout(a, range));
            Var::node(t, index, rows, cols)
        })
    }

    // ------------------------------------------------------------------
    // Reductions and reshaping
    // ------------------------------------------------------------------

    /// Sum of all elements, as a `1×1` node.
    pub fn sum(&self) -> Var {
        tape::with(|t| {
            let a = self.src(t);
            let index = t.record(1, 1, Op::Sum(a));
            Var::node(t, index, 1, 1)
        })
    }

    /// Mean of all elements, as a `1×1` node.
    pub fn mean(&self) -> Var {
        let count = (self.rows() * self.cols()).max(1) as f32;
        self.sum().scale(1.0 / count)
    }

    /// Column-wise sum, producing a `1×d` node (sum pooling over rows).
    pub fn sum_axis0(&self) -> Var {
        let cols = self.cols();
        tape::with(|t| {
            let a = self.src(t);
            let index = t.record(1, cols, Op::SumAxis0(a));
            Var::node(t, index, 1, cols)
        })
    }

    /// Column-wise mean, producing a `1×d` node (mean pooling over rows).
    pub fn mean_axis0(&self) -> Var {
        let rows = self.rows().max(1) as f32;
        self.sum_axis0().scale(1.0 / rows)
    }

    /// Horizontal concatenation of several nodes with equal row counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        let rows = parts[0].rows();
        assert!(parts.iter().all(|p| p.rows() == rows), "concat_cols row mismatch");
        let cols: usize = parts.iter().map(Var::cols).sum();
        tape::with(|t| {
            let list: Vec<Src> = parts.iter().map(|p| p.src(t)).collect();
            let range = t.push_srcs(&list);
            let index = t.record(rows, cols, Op::ConcatCols(range));
            Var::node(t, index, rows, cols)
        })
    }

    /// Vertical concatenation of several nodes with equal column counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        let cols = parts[0].cols();
        assert!(parts.iter().all(|p| p.cols() == cols), "concat_rows column mismatch");
        let rows: usize = parts.iter().map(Var::rows).sum();
        tape::with(|t| {
            let list: Vec<Src> = parts.iter().map(|p| p.src(t)).collect();
            let range = t.push_srcs(&list);
            let index = t.record(rows, cols, Op::ConcatRows(range));
            Var::node(t, index, rows, cols)
        })
    }

    // ------------------------------------------------------------------
    // Gather / scatter / segment operations (message passing primitives)
    // ------------------------------------------------------------------

    /// Selects rows by index (duplicates allowed). The backward pass
    /// scatter-adds gradients back to the source rows.
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Var {
        let (source_rows, cols) = self.shape();
        for &index in indices {
            assert!(index < source_rows, "gather index {index} out of bounds ({source_rows} rows)");
        }
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_idx(indices);
            let index = t.record(indices.len(), cols, Op::GatherRows(a, range));
            Var::node(t, index, indices.len(), cols)
        })
    }

    /// Scatter-adds rows into an accumulator with `out_rows` rows; row `i` of
    /// `self` is added to row `indices[i]` of the output.
    ///
    /// # Panics
    /// Panics if `indices.len() != self.rows()` or an index is out of bounds.
    pub fn scatter_add_rows(&self, indices: &[usize], out_rows: usize) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(indices.len(), rows, "one target index per row is required");
        for &index in indices {
            assert!(index < out_rows, "scatter index {index} out of bounds ({out_rows} rows)");
        }
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_idx(indices);
            let index = t.record(out_rows, cols, Op::ScatterAddRows(a, range));
            Var::node(t, index, out_rows, cols)
        })
    }

    /// Returns a copy of `self` (`n × d`) with row `indices[i]` incremented
    /// by row `i` of `rows`, rows applied in order. Equivalent to
    /// `self.add(&rows.scatter_add_rows(indices, n))` but without
    /// materialising the sparse intermediate, and with the same per-element
    /// left-to-right accumulation order as repeatedly adding per-group
    /// scatters onto `self` (groups in row order) — which makes it the exact
    /// fused form of the relational layers' per-relation accumulation loop.
    ///
    /// # Panics
    /// Panics if column counts differ, `indices.len() != rows.rows()`, or an
    /// index is out of bounds.
    pub fn scatter_add_onto(&self, rows: &Var, indices: &[usize]) -> Var {
        let (base_rows, cols) = self.shape();
        assert_eq!(cols, rows.cols(), "scatter_add_onto column mismatch");
        assert_eq!(indices.len(), rows.rows(), "one target index per added row is required");
        for &target in indices {
            assert!(target < base_rows, "scatter index {target} out of bounds ({base_rows} rows)");
        }
        tape::with(|t| {
            let base = self.src(t);
            let added = rows.src(t);
            let range = t.push_idx(indices);
            let index = t.record(base_rows, cols, Op::ScatterAddOnto(base, added, range));
            Var::node(t, index, base_rows, cols)
        })
    }

    /// Per-segment, per-column sum: row `i` of `self` is added into row
    /// `segments[i]` of a `num_segments × d` output. Rows are accumulated in
    /// row order, so a single segment covering every row reproduces
    /// [`Var::sum_axis0`] bit-for-bit. Empty segments yield zero rows.
    ///
    /// # Panics
    /// Panics if `segments.len()` differs from the row count or a segment id
    /// is out of range.
    pub fn segment_sum(&self, segments: &[usize], num_segments: usize) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(segments.len(), rows, "one segment id per row is required");
        assert!(
            segments.iter().all(|&s| s < num_segments),
            "segment id out of range (num_segments = {num_segments})"
        );
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_idx(segments);
            let index = t.record(num_segments, cols, Op::SegmentSum(a, range));
            Var::node(t, index, num_segments, cols)
        })
    }

    /// Per-segment, per-column mean (see [`Var::segment_sum`]). A single
    /// segment covering every row reproduces [`Var::mean_axis0`] bit-for-bit;
    /// empty segments yield zero rows (not NaN).
    ///
    /// # Panics
    /// Panics if `segments.len()` differs from the row count or a segment id
    /// is out of range.
    pub fn segment_mean(&self, segments: &[usize], num_segments: usize) -> Var {
        let mut counts = vec![0usize; num_segments];
        for &segment in segments {
            assert!(segment < num_segments, "segment id out of range");
            counts[segment] += 1;
        }
        let inverse: Vec<f32> =
            counts.iter().map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 }).collect();
        self.segment_sum(segments, num_segments).scale_rows(&inverse)
    }

    /// Per-segment, per-column maximum. Rows of `self` are grouped by
    /// `segments[i]`; empty segments produce zero rows. Gradient flows to the
    /// arg-max row of each (segment, column).
    pub fn segment_max(&self, segments: &[usize], num_segments: usize) -> Var {
        self.segment_extremum(segments, num_segments, true)
    }

    /// Per-segment, per-column minimum (see [`Var::segment_max`]).
    pub fn segment_min(&self, segments: &[usize], num_segments: usize) -> Var {
        self.segment_extremum(segments, num_segments, false)
    }

    fn segment_extremum(&self, segments: &[usize], num_segments: usize, is_max: bool) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(segments.len(), rows, "one segment id per row is required");
        for &segment in segments {
            assert!(segment < num_segments, "segment id {segment} out of range");
        }
        tape::with(|t| {
            let input = self.src(t);
            let seg_range = t.push_idx(segments);
            let win_range = t.push_winner_slots(num_segments * cols);
            let index = t.record(
                num_segments,
                cols,
                Op::SegmentExtremum { input, segments: seg_range, winners: win_range, is_max },
            );
            Var::node(t, index, num_segments, cols)
        })
    }

    /// Multiplies row `r` by the constant `factors[r]` (no gradient w.r.t. the
    /// factors — they are structural constants such as `1/degree`).
    ///
    /// # Panics
    /// Panics if `factors.len()` does not match the number of rows.
    pub fn scale_rows(&self, factors: &[f32]) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(factors.len(), rows, "one factor per row is required");
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_aux(factors);
            let index = t.record(rows, cols, Op::ScaleRows(a, range));
            Var::node(t, index, rows, cols)
        })
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean squared error against a constant target, as a scalar node.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mse(&self, target: &Matrix) -> Var {
        assert_eq!(self.shape(), target.shape(), "mse shape mismatch");
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_aux(target.data());
            let index = t.record(1, 1, Op::Mse(a, range));
            Var::node(t, index, 1, 1)
        })
    }

    /// Numerically stable binary cross-entropy with logits against a constant
    /// 0/1 target, as a scalar node.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn bce_with_logits(&self, target: &Matrix) -> Var {
        assert_eq!(self.shape(), target.shape(), "bce shape mismatch");
        tape::with(|t| {
            let a = self.src(t);
            let range = t.push_aux(target.data());
            let index = t.record(1, 1, Op::BceWithLogits(a, range));
            Var::node(t, index, 1, 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference check of `d loss / d input[index]`.
    fn numerical_grad(
        build: &dyn Fn(&Var) -> Var,
        input: &Matrix,
        row: usize,
        col: usize,
        eps: f32,
    ) -> f32 {
        let mut plus = input.clone();
        plus.set(row, col, input.get(row, col) + eps);
        let mut minus = input.clone();
        minus.set(row, col, input.get(row, col) - eps);
        let loss_plus = build(&Var::new(plus)).scalar_value();
        let loss_minus = build(&Var::new(minus)).scalar_value();
        (loss_plus - loss_minus) / (2.0 * eps)
    }

    fn check_gradients(build: &dyn Fn(&Var) -> Var, input: Matrix, tolerance: f32) {
        let leaf = Var::parameter(input.clone());
        let loss = build(&leaf);
        loss.backward();
        let grad = leaf.grad().expect("gradient reaches the leaf");
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let numeric = numerical_grad(build, &input, r, c, 1e-2);
                let analytic = grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < tolerance.max(0.05 * numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {analytic}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_elementwise_chain() {
        let input = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.5]);
        check_gradients(&|x: &Var| x.scale(1.5).add_scalar(0.2).tanh().mul(x).sum(), input, 1e-2);
    }

    #[test]
    fn gradcheck_matmul_and_bias() {
        let weight = Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.4, 0.3, -0.5, 0.6]);
        let input = Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, -0.25, 0.75]);
        let build = move |x: &Var| {
            let w = Var::new(weight.clone());
            let bias = Var::new(Matrix::row_vector(&[0.1, -0.1]));
            x.matmul(&w).add_row_broadcast(&bias).relu().sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_gather_scatter() {
        let input = Matrix::from_vec(3, 2, vec![1.0, -2.0, 0.5, 0.25, -1.5, 2.0]);
        let build = |x: &Var| {
            // Gather rows like edge sources, transform, scatter back like
            // message aggregation, then reduce.
            x.gather_rows(&[0, 0, 1, 2])
                .scale(0.5)
                .scatter_add_rows(&[1, 2, 2, 0], 3)
                .sigmoid()
                .sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_segment_max_and_scale_rows() {
        let input = Matrix::from_vec(4, 2, vec![1.0, -2.0, 3.0, 0.5, -1.0, 2.5, 0.25, 0.75]);
        let build = |x: &Var| {
            x.scale_rows(&[1.0, 0.5, 2.0, 1.5])
                .segment_max(&[0, 1, 0, 1], 2)
                .mul(&Var::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])))
                .sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_segment_sum_and_mean() {
        let input =
            Matrix::from_vec(5, 2, vec![1.0, -2.0, 3.0, 0.5, -1.0, 2.5, 0.25, 0.75, 2.0, -0.5]);
        let segments = [0usize, 2, 0, 1, 2];
        let build_sum = move |x: &Var| {
            x.segment_sum(&segments, 3)
                .mul(&Var::new(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5)))
                .sum()
        };
        check_gradients(&build_sum, input.clone(), 1e-2);
        let build_mean = move |x: &Var| {
            x.segment_mean(&segments, 3)
                .mul(&Var::new(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 - 1.5)))
                .sum()
        };
        check_gradients(&build_mean, input, 1e-2);
    }

    #[test]
    fn single_segment_reductions_match_axis0_reductions_exactly() {
        let input = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) as f32).sin());
        let x = Var::new(input);
        let segments = vec![0usize; 7];
        assert_eq!(x.segment_sum(&segments, 1).value(), x.sum_axis0().value());
        assert_eq!(x.segment_mean(&segments, 1).value(), x.mean_axis0().value());
    }

    #[test]
    fn empty_segments_produce_zero_rows_not_nan() {
        let x = Var::new(Matrix::full(2, 2, 3.0));
        let mean = x.segment_mean(&[2, 2], 3).value();
        assert_eq!(mean.row(0), &[0.0, 0.0]);
        assert_eq!(mean.row(1), &[0.0, 0.0]);
        assert_eq!(mean.row(2), &[3.0, 3.0]);
        assert!(!mean.has_non_finite());
    }

    #[test]
    fn deep_tapes_backward_and_drop_without_overflowing_the_stack() {
        // Regression test: a recursive DFS (or, on the old engine, a
        // recursive `Drop`) would blow the 2 MiB default test-thread stack
        // long before 200k nodes. The arena tape needs no teardown hack —
        // dropping handles is trivially non-recursive — but backward still
        // has to traverse the chain iteratively.
        let leaf = Var::parameter(Matrix::from_vec(1, 1, vec![0.5]));
        let mut node = leaf.clone();
        for _ in 0..200_000 {
            node = node.add_scalar(0.0);
        }
        let loss = node.sum();
        loss.backward();
        assert_eq!(leaf.grad().unwrap().get(0, 0), 1.0);
        drop(loss);
        drop(node);
    }

    #[test]
    fn gradcheck_losses() {
        let target = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.5, 2.0]);
        let input = Matrix::from_vec(2, 2, vec![0.8, -0.3, 0.9, 1.5]);
        let t1 = target.clone();
        check_gradients(&move |x: &Var| x.mse(&t1), input.clone(), 1e-2);
        let binary = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        check_gradients(&move |x: &Var| x.bce_with_logits(&binary), input, 1e-2);
    }

    #[test]
    fn gradcheck_scalar_and_column_broadcasts() {
        let input = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.5]);
        let build = |x: &Var| {
            let scalar = Var::new(Matrix::from_vec(1, 1, vec![0.7]));
            let column = Var::new(Matrix::column_vector(&[1.0, -0.5, 2.0]));
            x.mul_scalar_var(&scalar).mul_col_broadcast(&column).sum()
        };
        check_gradients(&build, input, 1e-2);

        // Gradients must also reach the scalar and the column themselves.
        let x = Var::new(Matrix::full(2, 2, 3.0));
        let scalar = Var::parameter(Matrix::from_vec(1, 1, vec![2.0]));
        let column = Var::parameter(Matrix::column_vector(&[1.0, 4.0]));
        x.mul_scalar_var(&scalar).mul_col_broadcast(&column).sum().backward();
        assert_eq!(scalar.grad().unwrap().get(0, 0), 3.0 * (1.0 + 1.0 + 4.0 + 4.0));
        assert_eq!(column.grad().unwrap().data(), &[12.0, 12.0]);
    }

    #[test]
    fn gradcheck_pooling_and_concat() {
        let input = Matrix::from_vec(3, 2, vec![0.2, -0.4, 1.0, 0.8, -0.6, 0.1]);
        let build = |x: &Var| {
            let pooled = Var::concat_cols(&[x.mean_axis0(), x.sum_axis0()]);
            pooled.mul(&pooled).sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_division_and_sqrt() {
        let input = Matrix::from_vec(2, 2, vec![0.5, 1.5, 2.0, 0.7]);
        let build = |x: &Var| {
            let denominator = x.mul(x).add_scalar(1.0);
            x.div_eps(&denominator, 1e-6).sqrt_eps(1e-6).sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradients_accumulate_over_multiple_backward_passes() {
        let param = Var::parameter(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        for _ in 0..3 {
            let loss = param.mul(&param).sum();
            loss.backward();
        }
        let grad = param.grad().unwrap();
        // d/dx sum(x^2) = 2x, accumulated three times.
        assert_eq!(grad.data(), &[6.0, 12.0]);
        param.zero_grad();
        assert!(param.grad().is_none());
    }

    #[test]
    fn diamond_graphs_accumulate_correctly() {
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![3.0]));
        let a = x.scale(2.0);
        let b = x.scale(5.0);
        let loss = a.add(&b).sum();
        loss.backward();
        assert_eq!(x.grad().unwrap().get(0, 0), 7.0);
    }

    #[test]
    fn dropout_is_identity_when_disabled_and_masks_otherwise() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Var::new(Matrix::full(4, 4, 1.0));
        assert_eq!(x.dropout(0.0, &mut rng).value(), Matrix::full(4, 4, 1.0));
        let dropped = x.dropout(0.5, &mut rng).value();
        let zeros = dropped.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0, "some elements must be dropped");
        assert!(dropped.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn scalar_helpers_behave() {
        let s = Var::scalar(4.5);
        assert_eq!(s.scalar_value(), 4.5);
        assert_eq!(s.shape(), (1, 1));
        assert!(!s.is_trainable());
        assert!(Var::parameter(Matrix::zeros(1, 1)).is_trainable());
    }

    #[test]
    #[should_panic(expected = "backward must start from a scalar")]
    fn backward_requires_scalar_output() {
        let x = Var::parameter(Matrix::zeros(2, 2));
        x.relu().backward();
    }

    #[test]
    fn tape_reset_reuses_buffers_and_preserves_parameters() {
        let param = Var::parameter(Matrix::full(4, 4, 1.0));
        let step = |p: &Var| {
            let loss = p.mul(p).sum();
            loss.backward();
            crate::tape::reset();
        };
        step(&param);
        let warm = crate::tape::stats();
        assert_eq!(warm.ops, 0, "reset clears the op arena");
        // Parameter values and accumulated gradients survive the reset.
        assert_eq!(param.value(), Matrix::full(4, 4, 1.0));
        assert_eq!(param.grad().unwrap(), Matrix::full(4, 4, 2.0));
        // A steady-state step allocates nothing new in the value buffer.
        step(&param);
        assert_eq!(crate::tape::stats().value_capacity, warm.value_capacity);
    }

    #[test]
    #[should_panic(expected = "stale Var handle")]
    fn stale_node_handles_panic_after_reset() {
        let x = Var::new(Matrix::full(2, 2, 1.0));
        let node = x.relu();
        crate::tape::reset();
        let _ = node.add_scalar(1.0);
    }

    #[test]
    fn node_gradients_are_readable_after_backward() {
        let x = Var::parameter(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let doubled = x.scale(2.0);
        let loss = doubled.sum();
        loss.backward();
        assert_eq!(doubled.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(loss.grad().unwrap().get(0, 0), 1.0);
    }
}
