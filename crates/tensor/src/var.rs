//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! A [`Var`] is a node in a dynamically built computation graph. Operations on
//! `Var`s record their inputs and a backward closure; calling
//! [`Var::backward`] on a scalar output propagates gradients to every
//! reachable node. Trainable leaves (created with [`Var::parameter`]) keep
//! their gradients so an optimiser can update them.
//!
//! The operation set is tailored to message-passing GNNs: dense linear
//! algebra, element-wise activations, row gather/scatter (the edge
//! message-passing primitives), segment aggregations, pooling reductions and
//! the two loss functions used by the prediction tasks.

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|cell| {
        let id = cell.get();
        cell.set(id + 1);
        id
    })
}

type BackwardFn = Box<dyn Fn(&Matrix, &[Var])>;

struct VarInner {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Option<Matrix>>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    trainable: bool,
}

/// A node of the autodiff graph holding a matrix value.
#[derive(Clone)]
pub struct Var(Rc<VarInner>);

impl Drop for VarInner {
    /// Iterative teardown. The default recursive drop of the `parents` chain
    /// overflows the thread stack on long tapes (a deep op chain, or a fused
    /// mini-batch tape freed at the end of a training step), so uniquely-owned
    /// ancestors are unlinked onto an explicit worklist instead.
    fn drop(&mut self) {
        let mut worklist: Vec<Var> = std::mem::take(&mut self.parents);
        while let Some(mut parent) = worklist.pop() {
            if let Some(inner) = Rc::get_mut(&mut parent.0) {
                worklist.append(&mut inner.parents);
            }
            // `parent` drops here; its parent list is already empty when we
            // were its last owner, so the implicit drop never recurses.
        }
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let value = self.0.value.borrow();
        f.debug_struct("Var")
            .field("id", &self.0.id)
            .field("shape", &value.shape())
            .field("trainable", &self.0.trainable)
            .field("parents", &self.0.parents.len())
            .finish()
    }
}

impl Var {
    fn make(
        value: Matrix,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
        trainable: bool,
    ) -> Var {
        Var(Rc::new(VarInner {
            id: next_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            parents,
            backward,
            trainable,
        }))
    }

    /// Creates a constant (non-trainable) leaf.
    pub fn new(value: Matrix) -> Var {
        Var::make(value, Vec::new(), None, false)
    }

    /// Creates a trainable leaf (a model parameter).
    pub fn parameter(value: Matrix) -> Var {
        Var::make(value, Vec::new(), None, true)
    }

    /// Creates a `1×1` constant.
    pub fn scalar(value: f32) -> Var {
        Var::new(Matrix::from_vec(1, 1, vec![value]))
    }

    /// Unique id of this node.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// True if this is a trainable parameter leaf.
    pub fn is_trainable(&self) -> bool {
        self.0.trainable
    }

    /// A clone of the current value.
    pub fn value(&self) -> Matrix {
        self.0.value.borrow().clone()
    }

    /// Runs a closure with a borrowed view of the value (avoids cloning).
    pub fn with_value<R>(&self, f: impl FnOnce(&Matrix) -> R) -> R {
        f(&self.0.value.borrow())
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.0.value.borrow().shape()
    }

    /// Number of rows of the value.
    pub fn rows(&self) -> usize {
        self.0.value.borrow().rows()
    }

    /// Number of columns of the value.
    pub fn cols(&self) -> usize {
        self.0.value.borrow().cols()
    }

    /// The scalar value of a `1×1` node.
    ///
    /// # Panics
    /// Panics if the node is not `1×1`.
    pub fn scalar_value(&self) -> f32 {
        let value = self.0.value.borrow();
        assert_eq!(value.shape(), (1, 1), "scalar_value on a non-scalar node");
        value.get(0, 0)
    }

    /// Replaces the stored value (used by optimisers on parameter leaves).
    pub fn set_value(&self, value: Matrix) {
        *self.0.value.borrow_mut() = value;
    }

    /// A clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Adds `delta` into the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Matrix) {
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(grad) => grad.add_assign(delta),
            None => *slot = Some(delta.clone()),
        }
    }

    /// Post-order (inputs before outputs) traversal of the graph rooted here.
    fn topological_order(&self) -> Vec<Var> {
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Var, usize)> = vec![(self.clone(), 0)];
        while let Some((node, child_index)) = stack.pop() {
            if child_index == 0 && visited.contains(&node.id()) {
                continue;
            }
            if child_index < node.0.parents.len() {
                let child = node.0.parents[child_index].clone();
                stack.push((node, child_index + 1));
                if !visited.contains(&child.id()) {
                    stack.push((child, 0));
                }
            } else if visited.insert(node.id()) {
                order.push(node);
            }
        }
        order
    }

    /// Runs reverse-mode differentiation from this scalar node.
    ///
    /// # Panics
    /// Panics if the node is not `1×1`.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward must start from a scalar loss");
        self.accumulate_grad(&Matrix::from_vec(1, 1, vec![1.0]));
        let order = self.topological_order();
        for node in order.iter().rev() {
            let Some(backward) = &node.0.backward else { continue };
            // A borrow suffices: the closure only mutates the *parents'*
            // gradient slots, never this node's own.
            let grad = node.0.grad.borrow();
            if let Some(grad) = grad.as_ref() {
                backward(grad, &node.0.parents);
            }
        }
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    /// Element-wise sum.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.0.value.borrow().add(&other.0.value.borrow());
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(grad);
            })),
            false,
        )
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.0.value.borrow().sub(&other.0.value.borrow());
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(&grad.scale(-1.0));
            })),
            false,
        )
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.hadamard(&b);
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.hadamard(&b));
                parents[1].accumulate_grad(&grad.hadamard(&a));
            })),
            false,
        )
    }

    /// Element-wise division with an epsilon guard on the denominator.
    pub fn div_eps(&self, other: &Var, eps: f32) -> Var {
        let a = self.value();
        let b = other.value().map(|x| x + eps);
        let value = a.zip_with(&b, |x, y| x / y);
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.zip_with(&b, |g, y| g / y));
                let d_b = grad.zip_with(&a, |g, x| g * x).zip_with(&b, |gx, y| -gx / (y * y));
                parents[1].accumulate_grad(&d_b);
            })),
            false,
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, factor: f32) -> Var {
        let value = self.0.value.borrow().scale(factor);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| parents[0].accumulate_grad(&grad.scale(factor)))),
            false,
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, constant: f32) -> Var {
        let value = self.0.value.borrow().map(|x| x + constant);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(|grad, parents| parents[0].accumulate_grad(grad))),
            false,
        )
    }

    /// Multiplies every element by a trainable `1×1` scalar node.
    ///
    /// # Panics
    /// Panics if `scalar` is not `1×1`.
    pub fn mul_scalar_var(&self, scalar: &Var) -> Var {
        assert_eq!(scalar.shape(), (1, 1), "mul_scalar_var expects a 1x1 scalar node");
        let a = self.value();
        let s = scalar.scalar_value();
        let value = a.scale(s);
        Var::make(
            value,
            vec![self.clone(), scalar.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.scale(s));
                let ds: f32 = grad.data().iter().zip(a.data()).map(|(g, x)| g * x).sum();
                parents[1].accumulate_grad(&Matrix::from_vec(1, 1, vec![ds]));
            })),
            false,
        )
    }

    /// Multiplies row `r` of an `n×d` node by element `r` of an `n×1` column
    /// node (differentiable row-wise broadcast, used for attention weights).
    ///
    /// # Panics
    /// Panics if `column` is not `n×1` with matching row count.
    pub fn mul_col_broadcast(&self, column: &Var) -> Var {
        let a = self.value();
        let col = column.value();
        assert_eq!(col.cols(), 1, "mul_col_broadcast expects an n×1 column");
        assert_eq!(col.rows(), a.rows(), "mul_col_broadcast row mismatch");
        let value = Matrix::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c) * col.get(r, 0));
        Var::make(
            value,
            vec![self.clone(), column.clone()],
            Some(Box::new(move |grad, parents| {
                let d_a = Matrix::from_fn(grad.rows(), grad.cols(), |r, c| {
                    grad.get(r, c) * col.get(r, 0)
                });
                parents[0].accumulate_grad(&d_a);
                let d_col = Matrix::from_fn(grad.rows(), 1, |r, _| {
                    (0..grad.cols()).map(|c| grad.get(r, c) * a.get(r, c)).sum()
                });
                parents[1].accumulate_grad(&d_col);
            })),
            false,
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.matmul(&b);
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.matmul(&b.transpose()));
                parents[1].accumulate_grad(&a.transpose().matmul(grad));
            })),
            false,
        )
    }

    /// Adds a `1×d` row vector to every row of an `n×d` matrix.
    ///
    /// # Panics
    /// Panics if the column counts differ or `bias` is not a single row.
    pub fn add_row_broadcast(&self, bias: &Var) -> Var {
        let bias_value = bias.value();
        assert_eq!(bias_value.rows(), 1, "bias must be a single row");
        assert_eq!(bias_value.cols(), self.cols(), "bias width mismatch");
        let value = {
            let a = self.0.value.borrow();
            Matrix::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c) + bias_value.get(0, c))
        };
        Var::make(
            value,
            vec![self.clone(), bias.clone()],
            Some(Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(&grad.sum_axis0());
            })),
            false,
        )
    }

    // ------------------------------------------------------------------
    // Activations
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.leaky_relu(0.0)
    }

    /// Leaky rectified linear unit.
    pub fn leaky_relu(&self, negative_slope: f32) -> Var {
        let input = self.value();
        let value = input.map(|x| if x > 0.0 { x } else { negative_slope * x });
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let masked =
                    grad.zip_with(&input, |g, x| if x > 0.0 { g } else { negative_slope * g });
                parents[0].accumulate_grad(&masked);
            })),
            false,
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.0.value.borrow().map(|x| 1.0 / (1.0 + (-x).exp()));
        let captured = out.clone();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local = grad.zip_with(&captured, |g, y| g * y * (1.0 - y));
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.0.value.borrow().map(f32::tanh);
        let captured = out.clone();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local = grad.zip_with(&captured, |g, y| g * (1.0 - y * y));
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    /// Element-wise exponential (inputs are clamped to 30 to avoid overflow).
    pub fn exp(&self) -> Var {
        let out = self.0.value.borrow().map(|x| x.min(30.0).exp());
        let captured = out.clone();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.hadamard(&captured));
            })),
            false,
        )
    }

    /// Element-wise `ln(x + eps)`.
    pub fn log_eps(&self, eps: f32) -> Var {
        let input = self.value();
        let out = input.map(|x| (x + eps).ln());
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local = grad.zip_with(&input, |g, x| g / (x + eps));
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    /// Element-wise `sqrt(x + eps)`.
    pub fn sqrt_eps(&self, eps: f32) -> Var {
        let out = self.0.value.borrow().map(|x| (x.max(0.0) + eps).sqrt());
        let captured = out.clone();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local = grad.zip_with(&captured, |g, y| g * 0.5 / y);
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    /// Inverted dropout: keeps each element with probability `1 - p` and
    /// rescales kept elements by `1/(1-p)`. With `p <= 0` this is the identity.
    pub fn dropout(&self, p: f32, rng: &mut StdRng) -> Var {
        if p <= 0.0 {
            return self.scale(1.0);
        }
        let keep = 1.0 - p.clamp(0.0, 0.95);
        let shape = self.shape();
        let mask = Matrix::from_fn(shape.0, shape.1, |_, _| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let captured = mask.clone();
        let value = self.0.value.borrow().hadamard(&mask);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.hadamard(&captured));
            })),
            false,
        )
    }

    // ------------------------------------------------------------------
    // Reductions and reshaping
    // ------------------------------------------------------------------

    /// Sum of all elements, as a `1×1` node.
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let value = Matrix::from_vec(1, 1, vec![self.0.value.borrow().sum()]);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let g = grad.get(0, 0);
                parents[0].accumulate_grad(&Matrix::full(shape.0, shape.1, g));
            })),
            false,
        )
    }

    /// Mean of all elements, as a `1×1` node.
    pub fn mean(&self) -> Var {
        let count = (self.rows() * self.cols()).max(1) as f32;
        self.sum().scale(1.0 / count)
    }

    /// Column-wise sum, producing a `1×d` node (sum pooling over rows).
    pub fn sum_axis0(&self) -> Var {
        let rows = self.rows();
        let value = self.0.value.borrow().sum_axis0();
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let cols = grad.cols();
                let expanded = Matrix::from_fn(rows, cols, |_, c| grad.get(0, c));
                parents[0].accumulate_grad(&expanded);
            })),
            false,
        )
    }

    /// Column-wise mean, producing a `1×d` node (mean pooling over rows).
    pub fn mean_axis0(&self) -> Var {
        let rows = self.rows().max(1) as f32;
        self.sum_axis0().scale(1.0 / rows)
    }

    /// Horizontal concatenation of several nodes with equal row counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols needs at least one part");
        // Borrow the part values instead of cloning them — the concatenation
        // itself is the only copy.
        let values: Vec<std::cell::Ref<'_, Matrix>> =
            parts.iter().map(|part| part.0.value.borrow()).collect();
        let refs: Vec<&Matrix> = values.iter().map(|value| &**value).collect();
        let value = Matrix::concat_cols(&refs);
        let widths: Vec<usize> = refs.iter().map(|part| part.cols()).collect();
        Var::make(
            value,
            parts.to_vec(),
            Some(Box::new(move |grad, parents| {
                let mut offset = 0;
                for (parent, &width) in parents.iter().zip(&widths) {
                    let slice = Matrix::from_fn(grad.rows(), width, |r, c| grad.get(r, offset + c));
                    parent.accumulate_grad(&slice);
                    offset += width;
                }
            })),
            false,
        )
    }

    /// Vertical concatenation of several nodes with equal column counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows needs at least one part");
        // Borrow the part values instead of cloning them — the concatenation
        // itself is the only copy.
        let values: Vec<std::cell::Ref<'_, Matrix>> =
            parts.iter().map(|part| part.0.value.borrow()).collect();
        let refs: Vec<&Matrix> = values.iter().map(|value| &**value).collect();
        let value = Matrix::concat_rows(&refs);
        let heights: Vec<usize> = refs.iter().map(|part| part.rows()).collect();
        Var::make(
            value,
            parts.to_vec(),
            Some(Box::new(move |grad, parents| {
                let mut offset = 0;
                for (parent, &height) in parents.iter().zip(&heights) {
                    let slice =
                        Matrix::from_fn(height, grad.cols(), |r, c| grad.get(offset + r, c));
                    parent.accumulate_grad(&slice);
                    offset += height;
                }
            })),
            false,
        )
    }

    // ------------------------------------------------------------------
    // Gather / scatter / segment operations (message passing primitives)
    // ------------------------------------------------------------------

    /// Selects rows by index (duplicates allowed). The backward pass
    /// scatter-adds gradients back to the source rows.
    pub fn gather_rows(&self, indices: &[usize]) -> Var {
        let source_rows = self.rows();
        let indices = indices.to_vec();
        let value = self.0.value.borrow().gather_rows(&indices);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.scatter_add_rows(&indices, source_rows));
            })),
            false,
        )
    }

    /// Scatter-adds rows into an accumulator with `out_rows` rows; row `i` of
    /// `self` is added to row `indices[i]` of the output.
    pub fn scatter_add_rows(&self, indices: &[usize], out_rows: usize) -> Var {
        let indices = indices.to_vec();
        let value = self.0.value.borrow().scatter_add_rows(&indices, out_rows);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.gather_rows(&indices));
            })),
            false,
        )
    }

    /// Returns a copy of `self` (`n × d`) with row `indices[i]` incremented
    /// by row `i` of `rows`, rows applied in order. Equivalent to
    /// `self.add(&rows.scatter_add_rows(indices, n))` but without
    /// materialising the sparse intermediate, and with the same per-element
    /// left-to-right accumulation order as repeatedly adding per-group
    /// scatters onto `self` (groups in row order) — which makes it the exact
    /// fused form of the relational layers' per-relation accumulation loop.
    ///
    /// # Panics
    /// Panics if column counts differ, `indices.len() != rows.rows()`, or an
    /// index is out of bounds.
    pub fn scatter_add_onto(&self, rows: &Var, indices: &[usize]) -> Var {
        let mut value = self.value();
        let add = rows.value();
        assert_eq!(self.cols(), add.cols(), "scatter_add_onto column mismatch");
        assert_eq!(indices.len(), add.rows(), "one target index per added row is required");
        let base_rows = value.rows();
        for (row, &target) in indices.iter().enumerate() {
            assert!(target < base_rows, "scatter index {target} out of bounds ({base_rows} rows)");
            for (slot, delta) in value.row_mut(target).iter_mut().zip(add.row(row)) {
                *slot += delta;
            }
        }
        let indices = indices.to_vec();
        Var::make(
            value,
            vec![self.clone(), rows.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(&grad.gather_rows(&indices));
            })),
            false,
        )
    }

    /// Per-segment, per-column sum: row `i` of `self` is added into row
    /// `segments[i]` of a `num_segments × d` output. Rows are accumulated in
    /// row order, so a single segment covering every row reproduces
    /// [`Var::sum_axis0`] bit-for-bit. Empty segments yield zero rows.
    ///
    /// # Panics
    /// Panics if `segments.len()` differs from the row count or a segment id
    /// is out of range.
    pub fn segment_sum(&self, segments: &[usize], num_segments: usize) -> Var {
        let input = self.value();
        assert_eq!(segments.len(), input.rows(), "one segment id per row is required");
        assert!(
            segments.iter().all(|&s| s < num_segments),
            "segment id out of range (num_segments = {num_segments})"
        );
        let segments = segments.to_vec();
        let value = input.scatter_add_rows(&segments, num_segments);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.gather_rows(&segments));
            })),
            false,
        )
    }

    /// Per-segment, per-column mean (see [`Var::segment_sum`]). A single
    /// segment covering every row reproduces [`Var::mean_axis0`] bit-for-bit;
    /// empty segments yield zero rows (not NaN).
    ///
    /// # Panics
    /// Panics if `segments.len()` differs from the row count or a segment id
    /// is out of range.
    pub fn segment_mean(&self, segments: &[usize], num_segments: usize) -> Var {
        let mut counts = vec![0usize; num_segments];
        for &segment in segments {
            assert!(segment < num_segments, "segment id out of range");
            counts[segment] += 1;
        }
        let inverse: Vec<f32> =
            counts.iter().map(|&c| if c == 0 { 0.0 } else { 1.0 / c as f32 }).collect();
        self.segment_sum(segments, num_segments).scale_rows(&inverse)
    }

    /// Per-segment, per-column maximum. Rows of `self` are grouped by
    /// `segments[i]`; empty segments produce zero rows. Gradient flows to the
    /// arg-max row of each (segment, column).
    pub fn segment_max(&self, segments: &[usize], num_segments: usize) -> Var {
        self.segment_extremum(segments, num_segments, true)
    }

    /// Per-segment, per-column minimum (see [`Var::segment_max`]).
    pub fn segment_min(&self, segments: &[usize], num_segments: usize) -> Var {
        self.segment_extremum(segments, num_segments, false)
    }

    fn segment_extremum(&self, segments: &[usize], num_segments: usize, is_max: bool) -> Var {
        let input = self.value();
        assert_eq!(segments.len(), input.rows(), "one segment id per row is required");
        let cols = input.cols();
        let mut out = Matrix::zeros(num_segments, cols);
        let mut arg: Vec<Vec<Option<usize>>> = vec![vec![None; cols]; num_segments];
        for (row, &segment) in segments.iter().enumerate() {
            assert!(segment < num_segments, "segment id {segment} out of range");
            for (c, slot) in arg[segment].iter_mut().enumerate() {
                let candidate = input.get(row, c);
                let better = match *slot {
                    None => true,
                    Some(current_row) => {
                        let current = input.get(current_row, c);
                        if is_max {
                            candidate > current
                        } else {
                            candidate < current
                        }
                    }
                };
                if better {
                    *slot = Some(row);
                    out.set(segment, c, candidate);
                }
            }
        }
        let source_rows = input.rows();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let mut delta = Matrix::zeros(source_rows, cols);
                for (segment, winners) in arg.iter().enumerate() {
                    for (c, winner) in winners.iter().enumerate() {
                        if let Some(row) = winner {
                            let current = delta.get(*row, c);
                            delta.set(*row, c, current + grad.get(segment, c));
                        }
                    }
                }
                parents[0].accumulate_grad(&delta);
            })),
            false,
        )
    }

    /// Multiplies row `r` by the constant `factors[r]` (no gradient w.r.t. the
    /// factors — they are structural constants such as `1/degree`).
    ///
    /// # Panics
    /// Panics if `factors.len()` does not match the number of rows.
    pub fn scale_rows(&self, factors: &[f32]) -> Var {
        let input_shape = self.shape();
        assert_eq!(factors.len(), input_shape.0, "one factor per row is required");
        let factors = factors.to_vec();
        let value = {
            let input = self.0.value.borrow();
            Matrix::from_fn(input_shape.0, input_shape.1, |r, c| input.get(r, c) * factors[r])
        };
        let captured = factors.clone();
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local =
                    Matrix::from_fn(grad.rows(), grad.cols(), |r, c| grad.get(r, c) * captured[r]);
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean squared error against a constant target, as a scalar node.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mse(&self, target: &Matrix) -> Var {
        let prediction = self.value();
        assert_eq!(prediction.shape(), target.shape(), "mse shape mismatch");
        let count = (target.rows() * target.cols()).max(1) as f32;
        let diff = prediction.sub(target);
        let value =
            Matrix::from_vec(1, 1, vec![diff.data().iter().map(|d| d * d).sum::<f32>() / count]);
        let captured = diff;
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let g = grad.get(0, 0);
                parents[0].accumulate_grad(&captured.scale(2.0 * g / count));
            })),
            false,
        )
    }

    /// Numerically stable binary cross-entropy with logits against a constant
    /// 0/1 target, as a scalar node.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn bce_with_logits(&self, target: &Matrix) -> Var {
        let logits = self.value();
        assert_eq!(logits.shape(), target.shape(), "bce shape mismatch");
        let count = (target.rows() * target.cols()).max(1) as f32;
        let total: f32 = logits
            .data()
            .iter()
            .zip(target.data())
            .map(|(&x, &t)| x.max(0.0) - x * t + (1.0 + (-x.abs()).exp()).ln())
            .sum();
        let value = Matrix::from_vec(1, 1, vec![total / count]);
        let captured_target = target.clone();
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let g = grad.get(0, 0);
                let local = logits.zip_with(&captured_target, |x, t| {
                    let sigma = 1.0 / (1.0 + (-x).exp());
                    g * (sigma - t) / count
                });
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Finite-difference check of `d loss / d input[index]`.
    fn numerical_grad(
        build: &dyn Fn(&Var) -> Var,
        input: &Matrix,
        row: usize,
        col: usize,
        eps: f32,
    ) -> f32 {
        let mut plus = input.clone();
        plus.set(row, col, input.get(row, col) + eps);
        let mut minus = input.clone();
        minus.set(row, col, input.get(row, col) - eps);
        let loss_plus = build(&Var::new(plus)).scalar_value();
        let loss_minus = build(&Var::new(minus)).scalar_value();
        (loss_plus - loss_minus) / (2.0 * eps)
    }

    fn check_gradients(build: &dyn Fn(&Var) -> Var, input: Matrix, tolerance: f32) {
        let leaf = Var::parameter(input.clone());
        let loss = build(&leaf);
        loss.backward();
        let grad = leaf.grad().expect("gradient reaches the leaf");
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let numeric = numerical_grad(build, &input, r, c, 1e-2);
                let analytic = grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < tolerance.max(0.05 * numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {analytic}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn gradcheck_elementwise_chain() {
        let input = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.5]);
        check_gradients(&|x: &Var| x.scale(1.5).add_scalar(0.2).tanh().mul(x).sum(), input, 1e-2);
    }

    #[test]
    fn gradcheck_matmul_and_bias() {
        let weight = Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.4, 0.3, -0.5, 0.6]);
        let input = Matrix::from_vec(2, 3, vec![1.0, 2.0, -1.0, 0.5, -0.25, 0.75]);
        let build = move |x: &Var| {
            let w = Var::new(weight.clone());
            let bias = Var::new(Matrix::row_vector(&[0.1, -0.1]));
            x.matmul(&w).add_row_broadcast(&bias).relu().sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_gather_scatter() {
        let input = Matrix::from_vec(3, 2, vec![1.0, -2.0, 0.5, 0.25, -1.5, 2.0]);
        let build = |x: &Var| {
            // Gather rows like edge sources, transform, scatter back like
            // message aggregation, then reduce.
            x.gather_rows(&[0, 0, 1, 2])
                .scale(0.5)
                .scatter_add_rows(&[1, 2, 2, 0], 3)
                .sigmoid()
                .sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_segment_max_and_scale_rows() {
        let input = Matrix::from_vec(4, 2, vec![1.0, -2.0, 3.0, 0.5, -1.0, 2.5, 0.25, 0.75]);
        let build = |x: &Var| {
            x.scale_rows(&[1.0, 0.5, 2.0, 1.5])
                .segment_max(&[0, 1, 0, 1], 2)
                .mul(&Var::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0])))
                .sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_segment_sum_and_mean() {
        let input =
            Matrix::from_vec(5, 2, vec![1.0, -2.0, 3.0, 0.5, -1.0, 2.5, 0.25, 0.75, 2.0, -0.5]);
        let segments = [0usize, 2, 0, 1, 2];
        let build_sum = move |x: &Var| {
            x.segment_sum(&segments, 3)
                .mul(&Var::new(Matrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5)))
                .sum()
        };
        check_gradients(&build_sum, input.clone(), 1e-2);
        let build_mean = move |x: &Var| {
            x.segment_mean(&segments, 3)
                .mul(&Var::new(Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 - 1.5)))
                .sum()
        };
        check_gradients(&build_mean, input, 1e-2);
    }

    #[test]
    fn single_segment_reductions_match_axis0_reductions_exactly() {
        let input = Matrix::from_fn(7, 3, |r, c| ((r * 3 + c) as f32).sin());
        let x = Var::new(input);
        let segments = vec![0usize; 7];
        assert_eq!(x.segment_sum(&segments, 1).value(), x.sum_axis0().value());
        assert_eq!(x.segment_mean(&segments, 1).value(), x.mean_axis0().value());
    }

    #[test]
    fn empty_segments_produce_zero_rows_not_nan() {
        let x = Var::new(Matrix::full(2, 2, 3.0));
        let mean = x.segment_mean(&[2, 2], 3).value();
        assert_eq!(mean.row(0), &[0.0, 0.0]);
        assert_eq!(mean.row(1), &[0.0, 0.0]);
        assert_eq!(mean.row(2), &[3.0, 3.0]);
        assert!(!mean.has_non_finite());
    }

    #[test]
    fn deep_tapes_backward_and_drop_without_overflowing_the_stack() {
        // Regression test for the explicit-stack traversal and the iterative
        // tape teardown: a recursive DFS or recursive `Drop` would blow the
        // 2 MiB default test-thread stack long before 200k nodes.
        let leaf = Var::parameter(Matrix::from_vec(1, 1, vec![0.5]));
        let mut node = leaf.clone();
        for _ in 0..200_000 {
            node = node.add_scalar(0.0);
        }
        let loss = node.sum();
        loss.backward();
        assert_eq!(leaf.grad().unwrap().get(0, 0), 1.0);
        drop(loss);
        drop(node);
    }

    #[test]
    fn gradcheck_losses() {
        let target = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.5, 2.0]);
        let input = Matrix::from_vec(2, 2, vec![0.8, -0.3, 0.9, 1.5]);
        let t1 = target.clone();
        check_gradients(&move |x: &Var| x.mse(&t1), input.clone(), 1e-2);
        let binary = Matrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        check_gradients(&move |x: &Var| x.bce_with_logits(&binary), input, 1e-2);
    }

    #[test]
    fn gradcheck_scalar_and_column_broadcasts() {
        let input = Matrix::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.5]);
        let build = |x: &Var| {
            let scalar = Var::new(Matrix::from_vec(1, 1, vec![0.7]));
            let column = Var::new(Matrix::column_vector(&[1.0, -0.5, 2.0]));
            x.mul_scalar_var(&scalar).mul_col_broadcast(&column).sum()
        };
        check_gradients(&build, input, 1e-2);

        // Gradients must also reach the scalar and the column themselves.
        let x = Var::new(Matrix::full(2, 2, 3.0));
        let scalar = Var::parameter(Matrix::from_vec(1, 1, vec![2.0]));
        let column = Var::parameter(Matrix::column_vector(&[1.0, 4.0]));
        x.mul_scalar_var(&scalar).mul_col_broadcast(&column).sum().backward();
        assert_eq!(scalar.grad().unwrap().get(0, 0), 3.0 * (1.0 + 1.0 + 4.0 + 4.0));
        assert_eq!(column.grad().unwrap().data(), &[12.0, 12.0]);
    }

    #[test]
    fn gradcheck_pooling_and_concat() {
        let input = Matrix::from_vec(3, 2, vec![0.2, -0.4, 1.0, 0.8, -0.6, 0.1]);
        let build = |x: &Var| {
            let pooled = Var::concat_cols(&[x.mean_axis0(), x.sum_axis0()]);
            pooled.mul(&pooled).sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradcheck_division_and_sqrt() {
        let input = Matrix::from_vec(2, 2, vec![0.5, 1.5, 2.0, 0.7]);
        let build = |x: &Var| {
            let denominator = x.mul(x).add_scalar(1.0);
            x.div_eps(&denominator, 1e-6).sqrt_eps(1e-6).sum()
        };
        check_gradients(&build, input, 1e-2);
    }

    #[test]
    fn gradients_accumulate_over_multiple_backward_passes() {
        let param = Var::parameter(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        for _ in 0..3 {
            let loss = param.mul(&param).sum();
            loss.backward();
        }
        let grad = param.grad().unwrap();
        // d/dx sum(x^2) = 2x, accumulated three times.
        assert_eq!(grad.data(), &[6.0, 12.0]);
        param.zero_grad();
        assert!(param.grad().is_none());
    }

    #[test]
    fn diamond_graphs_accumulate_correctly() {
        let x = Var::parameter(Matrix::from_vec(1, 1, vec![3.0]));
        let a = x.scale(2.0);
        let b = x.scale(5.0);
        let loss = a.add(&b).sum();
        loss.backward();
        assert_eq!(x.grad().unwrap().get(0, 0), 7.0);
    }

    #[test]
    fn dropout_is_identity_when_disabled_and_masks_otherwise() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = Var::new(Matrix::full(4, 4, 1.0));
        assert_eq!(x.dropout(0.0, &mut rng).value(), Matrix::full(4, 4, 1.0));
        let dropped = x.dropout(0.5, &mut rng).value();
        let zeros = dropped.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 0, "some elements must be dropped");
        assert!(dropped.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn scalar_helpers_behave() {
        let s = Var::scalar(4.5);
        assert_eq!(s.scalar_value(), 4.5);
        assert_eq!(s.shape(), (1, 1));
        assert!(!s.is_trainable());
        assert!(Var::parameter(Matrix::zeros(1, 1)).is_trainable());
    }

    #[test]
    #[should_panic(expected = "backward must start from a scalar")]
    fn backward_requires_scalar_output() {
        let x = Var::parameter(Matrix::zeros(2, 2));
        x.relu().backward();
    }
}
