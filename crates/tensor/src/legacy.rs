//! The pre-arena reference-counted autodiff engine, frozen for comparison.
//!
//! This is the engine the crate shipped before the arena tape ([`crate::tape`]
//! / [`crate::var`]) replaced it: every op heap-allocates an `Rc<VarInner>`
//! holding a `RefCell<Matrix>` value, a parent list, and a boxed backward
//! closure, and `Drop` walks an explicit worklist so deep tapes do not
//! overflow the stack. It is kept **only** so `tensor_bench` can measure the
//! live old-vs-new speedup on the machine at hand instead of trusting a
//! recorded number; nothing in the production path uses it, and its op set is
//! frozen — new ops go to [`crate::var`].
//!
//! To keep the comparison honest the matmul sites call
//! [`Matrix::matmul_sparse_lhs`], the zero-skip kernel this engine always used
//! (the dense branch-free kernel postdates it).

use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

use crate::matrix::Matrix;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(0) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|cell| {
        let id = cell.get();
        cell.set(id + 1);
        id
    })
}

type BackwardFn = Box<dyn Fn(&Matrix, &[Var])>;

struct VarInner {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Option<Matrix>>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    trainable: bool,
}

/// A node of the legacy reference-counted autodiff graph.
#[derive(Clone)]
pub struct Var(Rc<VarInner>);

impl Drop for VarInner {
    /// Iterative teardown. The default recursive drop of the `parents` chain
    /// overflows the thread stack on long tapes, so uniquely-owned ancestors
    /// are unlinked onto an explicit worklist instead.
    fn drop(&mut self) {
        let mut worklist: Vec<Var> = std::mem::take(&mut self.parents);
        while let Some(mut parent) = worklist.pop() {
            if let Some(inner) = Rc::get_mut(&mut parent.0) {
                worklist.append(&mut inner.parents);
            }
        }
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let value = self.0.value.borrow();
        f.debug_struct("Var")
            .field("id", &self.0.id)
            .field("shape", &value.shape())
            .field("trainable", &self.0.trainable)
            .field("parents", &self.0.parents.len())
            .finish()
    }
}

impl Var {
    fn make(
        value: Matrix,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
        trainable: bool,
    ) -> Var {
        Var(Rc::new(VarInner {
            id: next_id(),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            parents,
            backward,
            trainable,
        }))
    }

    /// Creates a constant (non-trainable) leaf.
    pub fn new(value: Matrix) -> Var {
        Var::make(value, Vec::new(), None, false)
    }

    /// Creates a trainable leaf (a model parameter).
    pub fn parameter(value: Matrix) -> Var {
        Var::make(value, Vec::new(), None, true)
    }

    /// Creates a `1×1` constant.
    pub fn scalar(value: f32) -> Var {
        Var::new(Matrix::from_vec(1, 1, vec![value]))
    }

    /// Unique id of this node.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// True if this is a trainable parameter leaf.
    pub fn is_trainable(&self) -> bool {
        self.0.trainable
    }

    /// A clone of the current value.
    pub fn value(&self) -> Matrix {
        self.0.value.borrow().clone()
    }

    /// Runs a closure with a borrowed view of the value (avoids cloning).
    pub fn with_value<R>(&self, f: impl FnOnce(&Matrix) -> R) -> R {
        f(&self.0.value.borrow())
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.0.value.borrow().shape()
    }

    /// Number of rows of the value.
    pub fn rows(&self) -> usize {
        self.0.value.borrow().rows()
    }

    /// Number of columns of the value.
    pub fn cols(&self) -> usize {
        self.0.value.borrow().cols()
    }

    /// The scalar value of a `1×1` node.
    ///
    /// # Panics
    /// Panics if the node is not `1×1`.
    pub fn scalar_value(&self) -> f32 {
        let value = self.0.value.borrow();
        assert_eq!(value.shape(), (1, 1), "scalar_value on a non-scalar node");
        value.get(0, 0)
    }

    /// Replaces the stored value (used by optimisers on parameter leaves).
    pub fn set_value(&self, value: Matrix) {
        *self.0.value.borrow_mut() = value;
    }

    /// A clone of the accumulated gradient, if any.
    pub fn grad(&self) -> Option<Matrix> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Adds `delta` into the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Matrix) {
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(grad) => grad.add_assign(delta),
            None => *slot = Some(delta.clone()),
        }
    }

    /// Post-order (inputs before outputs) traversal of the graph rooted here.
    fn topological_order(&self) -> Vec<Var> {
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<(Var, usize)> = vec![(self.clone(), 0)];
        while let Some((node, child_index)) = stack.pop() {
            if child_index == 0 && visited.contains(&node.id()) {
                continue;
            }
            if child_index < node.0.parents.len() {
                let child = node.0.parents[child_index].clone();
                stack.push((node, child_index + 1));
                if !visited.contains(&child.id()) {
                    stack.push((child, 0));
                }
            } else if visited.insert(node.id()) {
                order.push(node);
            }
        }
        order
    }

    /// Runs reverse-mode differentiation from this scalar node.
    ///
    /// # Panics
    /// Panics if the node is not `1×1`.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward must start from a scalar loss");
        self.accumulate_grad(&Matrix::from_vec(1, 1, vec![1.0]));
        let order = self.topological_order();
        for node in order.iter().rev() {
            let Some(backward) = &node.0.backward else { continue };
            let grad = node.0.grad.borrow();
            if let Some(grad) = grad.as_ref() {
                backward(grad, &node.0.parents);
            }
        }
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Var) -> Var {
        let value = self.0.value.borrow().add(&other.0.value.borrow());
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(grad);
            })),
            false,
        )
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.0.value.borrow().sub(&other.0.value.borrow());
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(&grad.scale(-1.0));
            })),
            false,
        )
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.hadamard(&b);
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.hadamard(&b));
                parents[1].accumulate_grad(&grad.hadamard(&a));
            })),
            false,
        )
    }

    /// Multiplies every element by a constant.
    pub fn scale(&self, factor: f32) -> Var {
        let value = self.0.value.borrow().scale(factor);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| parents[0].accumulate_grad(&grad.scale(factor)))),
            false,
        )
    }

    /// Adds a constant to every element.
    pub fn add_scalar(&self, constant: f32) -> Var {
        let value = self.0.value.borrow().map(|x| x + constant);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(|grad, parents| parents[0].accumulate_grad(grad))),
            false,
        )
    }

    /// Matrix product `self × other` (zero-skip kernel, as always used here).
    pub fn matmul(&self, other: &Var) -> Var {
        let a = self.value();
        let b = other.value();
        let value = a.matmul_sparse_lhs(&b);
        Var::make(
            value,
            vec![self.clone(), other.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.matmul_sparse_lhs(&b.transpose()));
                parents[1].accumulate_grad(&a.transpose().matmul_sparse_lhs(grad));
            })),
            false,
        )
    }

    /// Adds a `1×d` row vector to every row of an `n×d` matrix.
    ///
    /// # Panics
    /// Panics if the column counts differ or `bias` is not a single row.
    pub fn add_row_broadcast(&self, bias: &Var) -> Var {
        let bias_value = bias.value();
        assert_eq!(bias_value.rows(), 1, "bias must be a single row");
        assert_eq!(bias_value.cols(), self.cols(), "bias width mismatch");
        let value = {
            let a = self.0.value.borrow();
            Matrix::from_fn(a.rows(), a.cols(), |r, c| a.get(r, c) + bias_value.get(0, c))
        };
        Var::make(
            value,
            vec![self.clone(), bias.clone()],
            Some(Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(&grad.sum_axis0());
            })),
            false,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        self.leaky_relu(0.0)
    }

    /// Leaky rectified linear unit.
    pub fn leaky_relu(&self, negative_slope: f32) -> Var {
        let input = self.value();
        let value = input.map(|x| if x > 0.0 { x } else { negative_slope * x });
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let masked =
                    grad.zip_with(&input, |g, x| if x > 0.0 { g } else { negative_slope * g });
                parents[0].accumulate_grad(&masked);
            })),
            false,
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.0.value.borrow().map(|x| 1.0 / (1.0 + (-x).exp()));
        let captured = out.clone();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local = grad.zip_with(&captured, |g, y| g * y * (1.0 - y));
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.0.value.borrow().map(f32::tanh);
        let captured = out.clone();
        Var::make(
            out,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let local = grad.zip_with(&captured, |g, y| g * (1.0 - y * y));
                parents[0].accumulate_grad(&local);
            })),
            false,
        )
    }

    /// Inverted dropout (see [`crate::Var::dropout`]).
    pub fn dropout(&self, p: f32, rng: &mut StdRng) -> Var {
        if p <= 0.0 {
            return self.scale(1.0);
        }
        let keep = 1.0 - p.clamp(0.0, 0.95);
        let shape = self.shape();
        let mask = Matrix::from_fn(shape.0, shape.1, |_, _| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let value = self.0.value.borrow().hadamard(&mask);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.hadamard(&mask));
            })),
            false,
        )
    }

    /// Sum of all elements, as a `1×1` node.
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let value = Matrix::from_vec(1, 1, vec![self.0.value.borrow().sum()]);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let g = grad.get(0, 0);
                parents[0].accumulate_grad(&Matrix::full(shape.0, shape.1, g));
            })),
            false,
        )
    }

    /// Mean of all elements, as a `1×1` node.
    pub fn mean(&self) -> Var {
        let count = (self.rows() * self.cols()).max(1) as f32;
        self.sum().scale(1.0 / count)
    }

    /// Column-wise sum, producing a `1×d` node.
    pub fn sum_axis0(&self) -> Var {
        let rows = self.rows();
        let value = self.0.value.borrow().sum_axis0();
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let cols = grad.cols();
                let expanded = Matrix::from_fn(rows, cols, |_, c| grad.get(0, c));
                parents[0].accumulate_grad(&expanded);
            })),
            false,
        )
    }

    /// Column-wise mean, producing a `1×d` node.
    pub fn mean_axis0(&self) -> Var {
        let rows = self.rows().max(1) as f32;
        self.sum_axis0().scale(1.0 / rows)
    }

    /// Selects rows by index (duplicates allowed).
    pub fn gather_rows(&self, indices: &[usize]) -> Var {
        let source_rows = self.rows();
        let indices = indices.to_vec();
        let value = self.0.value.borrow().gather_rows(&indices);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.scatter_add_rows(&indices, source_rows));
            })),
            false,
        )
    }

    /// Scatter-adds rows into an accumulator with `out_rows` rows.
    pub fn scatter_add_rows(&self, indices: &[usize], out_rows: usize) -> Var {
        let indices = indices.to_vec();
        let value = self.0.value.borrow().scatter_add_rows(&indices, out_rows);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.gather_rows(&indices));
            })),
            false,
        )
    }

    /// Per-segment, per-column sum (see [`crate::Var::segment_sum`]).
    ///
    /// # Panics
    /// Panics if `segments.len()` differs from the row count or a segment id
    /// is out of range.
    pub fn segment_sum(&self, segments: &[usize], num_segments: usize) -> Var {
        let input = self.value();
        assert_eq!(segments.len(), input.rows(), "one segment id per row is required");
        assert!(
            segments.iter().all(|&s| s < num_segments),
            "segment id out of range (num_segments = {num_segments})"
        );
        let segments = segments.to_vec();
        let value = input.scatter_add_rows(&segments, num_segments);
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                parents[0].accumulate_grad(&grad.gather_rows(&segments));
            })),
            false,
        )
    }

    /// Mean squared error against a constant target, as a scalar node.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mse(&self, target: &Matrix) -> Var {
        let prediction = self.value();
        assert_eq!(prediction.shape(), target.shape(), "mse shape mismatch");
        let count = (target.rows() * target.cols()).max(1) as f32;
        let diff = prediction.sub(target);
        let value =
            Matrix::from_vec(1, 1, vec![diff.data().iter().map(|d| d * d).sum::<f32>() / count]);
        let captured = diff;
        Var::make(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad, parents| {
                let g = grad.get(0, 0);
                parents[0].accumulate_grad(&captured.scale(2.0 * g / count));
            })),
            false,
        )
    }
}
