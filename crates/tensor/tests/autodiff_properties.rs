//! Property-based tests of the autodiff engine: for random shapes, values and
//! index patterns, analytic gradients must match finite differences and the
//! core algebraic identities must hold.

use gnn_tensor::{Matrix, Var};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and values in [-2, 2].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Finite-difference derivative of `build` w.r.t. `input[row, col]`.
fn numeric_grad(build: &dyn Fn(&Var) -> Var, input: &Matrix, row: usize, col: usize) -> f32 {
    let eps = 1e-2;
    let mut plus = input.clone();
    plus.set(row, col, input.get(row, col) + eps);
    let mut minus = input.clone();
    minus.set(row, col, input.get(row, col) - eps);
    (build(&Var::new(plus)).scalar_value() - build(&Var::new(minus)).scalar_value()) / (2.0 * eps)
}

/// Checks every entry of the analytic gradient against finite differences.
fn assert_gradients_match(
    build: &dyn Fn(&Var) -> Var,
    input: &Matrix,
) -> Result<(), TestCaseError> {
    let leaf = Var::parameter(input.clone());
    build(&leaf).backward();
    let grad = leaf.grad().expect("gradient reaches the input");
    for row in 0..input.rows() {
        for col in 0..input.cols() {
            let analytic = grad.get(row, col);
            let numeric = numeric_grad(build, input, row, col);
            let tolerance = 0.05f32.max(0.08 * numeric.abs());
            prop_assert!(
                (analytic - numeric).abs() <= tolerance,
                "grad mismatch at ({row},{col}): analytic {analytic}, numeric {numeric}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Smooth element-wise chains: d/dx of tanh/sigmoid/scale compositions.
    #[test]
    fn gradcheck_random_elementwise_chains(input in matrix(3, 4), scale in 0.2f32..1.5) {
        let build = move |x: &Var| x.scale(scale).tanh().mul(&x.sigmoid()).sum();
        assert_gradients_match(&build, &input)?;
    }

    /// Linear layers: matmul with a random weight plus bias broadcast.
    #[test]
    fn gradcheck_random_affine_maps(input in matrix(3, 3), weight in matrix(3, 2)) {
        let build = move |x: &Var| {
            let w = Var::new(weight.clone());
            let bias = Var::new(Matrix::row_vector(&[0.3, -0.4]));
            x.matmul(&w).add_row_broadcast(&bias).tanh().sum()
        };
        assert_gradients_match(&build, &input)?;
    }

    /// Message-passing primitives: gather followed by scatter-add over random
    /// index patterns behaves like multiplication by a fixed 0/1 matrix, so
    /// gradients must match finite differences for any index choice.
    #[test]
    fn gradcheck_random_gather_scatter(
        input in matrix(4, 2),
        gather in proptest::collection::vec(0usize..4, 1..8),
    ) {
        let scatter: Vec<usize> = gather.iter().map(|&g| (g * 7 + 3) % 4).collect();
        let build = move |x: &Var| {
            x.gather_rows(&gather).scatter_add_rows(&scatter, 4).sigmoid().sum()
        };
        assert_gradients_match(&build, &input)?;
    }

    /// Losses are minimised exactly at the target.
    #[test]
    fn mse_is_zero_only_at_the_target(target in matrix(2, 3)) {
        let at_target = Var::new(target.clone()).mse(&target).scalar_value();
        prop_assert!(at_target.abs() < 1e-9);
        let shifted = Var::new(target.map(|v| v + 0.5)).mse(&target).scalar_value();
        prop_assert!(shifted > 0.2);
    }

    /// Matmul agrees with the transpose identity `(A·B)ᵀ = Bᵀ·Aᵀ`.
    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Gather/scatter shape adjointness: scattering what was gathered keeps
    /// column sums when every row is gathered exactly once.
    #[test]
    fn gather_then_scatter_preserves_mass_for_permutations(input in matrix(5, 3), seed in 0u64..1000) {
        let mut order: Vec<usize> = (0..5).collect();
        // Simple deterministic shuffle driven by the seed.
        for i in 0..5 {
            let j = ((seed as usize) + i * 3) % 5;
            order.swap(i, j);
        }
        let gathered = input.gather_rows(&order);
        let restored = gathered.scatter_add_rows(&order, 5);
        for (x, y) in restored.sum_axis0().data().iter().zip(input.sum_axis0().data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
