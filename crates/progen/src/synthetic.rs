//! Seeded random program generator — the `ldrgen` substitute.
//!
//! Two program families are generated, matching the paper's benchmark split:
//!
//! * [`ProgramFamily::StraightLine`]: a single basic block of scalar/array
//!   arithmetic, no control flow → lowers to a **DFG**.
//! * [`ProgramFamily::Control`]: loops (possibly nested) and branches around
//!   the same arithmetic vocabulary → lowers to a **CDFG**.
//!
//! All generation is driven by a `u64` seed so corpora are reproducible.

use hls_ir::ast::{BinaryOp, Expr, Function, FunctionBuilder, Stmt, UnaryOp, VarId};
use hls_ir::types::{ArrayType, ScalarType};
use hls_ir::GraphKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which structural family of programs to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramFamily {
    /// Straight-line basic blocks (DFG dataset).
    StraightLine,
    /// Programs with loops and branches (CDFG dataset).
    Control,
}

impl ProgramFamily {
    /// The graph kind this family lowers to.
    pub fn graph_kind(self) -> GraphKind {
        match self {
            ProgramFamily::StraightLine => GraphKind::Dfg,
            ProgramFamily::Control => GraphKind::Cdfg,
        }
    }
}

/// Tunable parameters of the synthetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Program family (straight-line vs. control).
    pub family: ProgramFamily,
    /// Minimum number of top-level statements.
    pub min_stmts: usize,
    /// Maximum number of top-level statements.
    pub max_stmts: usize,
    /// Maximum depth of generated expression trees.
    pub max_expr_depth: usize,
    /// Minimum number of scalar input ports.
    pub min_params: usize,
    /// Maximum number of scalar input ports.
    pub max_params: usize,
    /// Maximum number of array interfaces (0 disables arrays entirely).
    pub max_arrays: usize,
    /// Probability that a generated leaf is an array element read (when
    /// arrays exist).
    pub array_leaf_prob: f64,
    /// Probability that a division/remainder is picked for an arithmetic
    /// node (kept low, as in real HLS code).
    pub div_prob: f64,
    /// Probability that a top-level statement in the control family is a loop.
    pub loop_prob: f64,
    /// Probability that a top-level statement in the control family is a branch.
    pub branch_prob: f64,
    /// Maximum loop nesting depth for the control family.
    pub max_loop_depth: usize,
    /// Maximum loop trip count.
    pub max_trip_count: i64,
}

impl SyntheticConfig {
    /// Configuration for the straight-line (DFG) family.
    pub fn straight_line() -> Self {
        SyntheticConfig {
            family: ProgramFamily::StraightLine,
            min_stmts: 4,
            max_stmts: 24,
            max_expr_depth: 4,
            min_params: 2,
            max_params: 8,
            max_arrays: 2,
            array_leaf_prob: 0.15,
            div_prob: 0.08,
            loop_prob: 0.0,
            branch_prob: 0.0,
            max_loop_depth: 0,
            max_trip_count: 0,
        }
    }

    /// Configuration for the control-flow (CDFG) family.
    pub fn control() -> Self {
        SyntheticConfig {
            family: ProgramFamily::Control,
            min_stmts: 3,
            max_stmts: 12,
            max_expr_depth: 3,
            min_params: 2,
            max_params: 6,
            max_arrays: 3,
            array_leaf_prob: 0.25,
            div_prob: 0.06,
            loop_prob: 0.45,
            branch_prob: 0.25,
            max_loop_depth: 2,
            max_trip_count: 64,
        }
    }

    /// A smaller configuration for fast unit tests.
    pub fn tiny(family: ProgramFamily) -> Self {
        let mut config = match family {
            ProgramFamily::StraightLine => Self::straight_line(),
            ProgramFamily::Control => Self::control(),
        };
        config.min_stmts = 2;
        config.max_stmts = 5;
        config.max_expr_depth = 2;
        config.max_params = 3;
        config
    }
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig::straight_line()
    }
}

/// Seeded random program generator.
#[derive(Debug)]
pub struct ProgramGenerator {
    config: SyntheticConfig,
    rng: StdRng,
    counter: usize,
}

/// Per-program generation state: the declared variables visible to the
/// expression generator.
struct Scope {
    scalars: Vec<(VarId, ScalarType)>,
    arrays: Vec<(VarId, ArrayType)>,
}

impl ProgramGenerator {
    /// Creates a generator for the given configuration and seed.
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        ProgramGenerator { config, rng: StdRng::seed_from_u64(seed), counter: 0 }
    }

    /// The configuration this generator was created with.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Generates one program.
    ///
    /// # Panics
    /// Never panics: generated programs are valid by construction; an internal
    /// `expect` guards the builder's validation as an invariant.
    pub fn generate(&mut self) -> Function {
        let index = self.counter;
        self.counter += 1;
        let family = match self.config.family {
            ProgramFamily::StraightLine => "dfg",
            ProgramFamily::Control => "cdfg",
        };
        let name = format!("synthetic_{family}_{index:06}");
        let mut builder = FunctionBuilder::new(name);
        let mut scope = self.declare_interface(&mut builder);
        let stmts = self.gen_body(&mut builder, &mut scope);
        for stmt in stmts {
            builder.push(stmt);
        }
        // Return one of the scalars so the design has an output port.
        let (ret, _) = scope.scalars[self.rng.gen_range(0..scope.scalars.len())];
        builder.ret(ret);
        builder.finish().expect("generated program is valid by construction")
    }

    /// Generates `count` programs.
    pub fn generate_many(&mut self, count: usize) -> Vec<Function> {
        self.generate_iter(count).collect()
    }

    /// Streaming counterpart of [`ProgramGenerator::generate_many`]: yields
    /// the same `count` programs lazily, so corpora larger than memory can be
    /// consumed one program at a time (e.g. spilled straight to a sharded
    /// on-disk store). Draws from the same RNG stream in the same order —
    /// collecting this iterator is bit-identical to `generate_many(count)`.
    pub fn generate_iter(&mut self, count: usize) -> impl Iterator<Item = Function> + '_ {
        (0..count).map(move |_| self.generate())
    }

    fn random_width(&mut self) -> u16 {
        // Weighted toward the widths that dominate real HLS code.
        const CHOICES: [(u16, u32); 8] =
            [(8, 12), (16, 22), (24, 6), (32, 34), (48, 6), (64, 12), (128, 5), (10, 3)];
        let total: u32 = CHOICES.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..total);
        for (width, weight) in CHOICES {
            if roll < weight {
                return width;
            }
            roll -= weight;
        }
        32
    }

    fn random_scalar_type(&mut self) -> ScalarType {
        let width = self.random_width();
        if self.rng.gen_bool(0.7) {
            ScalarType::signed(width)
        } else {
            ScalarType::unsigned(width)
        }
    }

    fn declare_interface(&mut self, builder: &mut FunctionBuilder) -> Scope {
        let param_count = self.rng.gen_range(self.config.min_params..=self.config.max_params);
        let mut scalars = Vec::new();
        let mut arrays = Vec::new();
        for index in 0..param_count {
            let ty = self.random_scalar_type();
            let id = builder.param(format!("p{index}"), ty);
            scalars.push((id, ty));
        }
        if self.config.max_arrays > 0 {
            let array_count = self.rng.gen_range(0..=self.config.max_arrays);
            for index in 0..array_count {
                let elem = self.random_scalar_type();
                let len = 1usize << self.rng.gen_range(3..=7); // 8..=128 elements
                let ty = ArrayType::new(elem, len);
                let id = builder.array_param(format!("buf{index}"), ty);
                arrays.push((id, ty));
            }
        }
        // A handful of scalar locals that statements can define and reuse.
        let local_count = self.rng.gen_range(2..=4);
        for index in 0..local_count {
            let ty = self.random_scalar_type();
            let id = builder.local(format!("t{index}"), ty);
            scalars.push((id, ty));
        }
        Scope { scalars, arrays }
    }

    fn gen_body(&mut self, builder: &mut FunctionBuilder, scope: &mut Scope) -> Vec<Stmt> {
        let count = self.rng.gen_range(self.config.min_stmts..=self.config.max_stmts);
        let mut stmts = Vec::with_capacity(count);
        for _ in 0..count {
            let stmt = match self.config.family {
                ProgramFamily::StraightLine => self.gen_simple_stmt(scope),
                ProgramFamily::Control => self.gen_control_stmt(builder, scope, 0),
            };
            stmts.push(stmt);
        }
        stmts
    }

    fn gen_simple_stmt(&mut self, scope: &mut Scope) -> Stmt {
        // Either a scalar assignment or (rarely) an array store.
        if !scope.arrays.is_empty() && self.rng.gen_bool(0.2) {
            let (array, ty) = scope.arrays[self.rng.gen_range(0..scope.arrays.len())];
            let index = Expr::constant(self.rng.gen_range(0..ty.len as i64));
            let value = self.gen_expr(scope, self.config.max_expr_depth);
            Stmt::store(array, index, value)
        } else {
            let (target, _) = scope.scalars[self.rng.gen_range(0..scope.scalars.len())];
            let value = self.gen_expr(scope, self.config.max_expr_depth);
            Stmt::assign(target, value)
        }
    }

    fn gen_control_stmt(
        &mut self,
        builder: &mut FunctionBuilder,
        scope: &mut Scope,
        loop_depth: usize,
    ) -> Stmt {
        // Bound the total nesting so that the branching process stays
        // sub-critical and recursion depth remains small.
        const MAX_NESTING: usize = 3;
        let roll: f64 = self.rng.gen();
        if roll < self.config.loop_prob {
            if loop_depth < self.config.max_loop_depth.min(MAX_NESTING) {
                self.gen_loop(builder, scope, loop_depth)
            } else {
                self.gen_simple_stmt(scope)
            }
        } else if roll < self.config.loop_prob + self.config.branch_prob {
            if loop_depth < MAX_NESTING {
                self.gen_branch(builder, scope, loop_depth)
            } else {
                self.gen_simple_stmt(scope)
            }
        } else {
            self.gen_simple_stmt(scope)
        }
    }

    fn gen_loop(
        &mut self,
        builder: &mut FunctionBuilder,
        scope: &mut Scope,
        loop_depth: usize,
    ) -> Stmt {
        let induction = builder
            .local(format!("i{}_{}", loop_depth, self.rng.gen_range(0..1000)), ScalarType::i32());
        scope.scalars.push((induction, ScalarType::i32()));
        let trip = self.rng.gen_range(2..=self.config.max_trip_count.max(2));
        let body_len = self.rng.gen_range(1..=4);
        let mut body = Vec::with_capacity(body_len);
        for _ in 0..body_len {
            body.push(self.gen_control_stmt(builder, scope, loop_depth + 1));
        }
        // Loops commonly index arrays with the induction variable; add one
        // such access to make the memory behaviour realistic.
        if !scope.arrays.is_empty() && self.rng.gen_bool(0.6) {
            let (array, _) = scope.arrays[self.rng.gen_range(0..scope.arrays.len())];
            let (target, _) = scope.scalars[self.rng.gen_range(0..scope.scalars.len())];
            body.push(Stmt::assign(
                target,
                Expr::binary(
                    BinaryOp::Add,
                    Expr::var(target),
                    Expr::index(array, Expr::var(induction)),
                ),
            ));
        }
        Stmt::for_loop(induction, 0, trip, 1, body)
    }

    fn gen_branch(
        &mut self,
        builder: &mut FunctionBuilder,
        scope: &mut Scope,
        loop_depth: usize,
    ) -> Stmt {
        let cond = self.gen_condition(scope);
        let then_len = self.rng.gen_range(1..=3);
        let else_len = self.rng.gen_range(0..=2);
        let mut then_body = Vec::with_capacity(then_len);
        for _ in 0..then_len {
            then_body.push(self.gen_control_stmt(builder, scope, loop_depth + 1));
        }
        let mut else_body = Vec::with_capacity(else_len);
        for _ in 0..else_len {
            else_body.push(self.gen_control_stmt(builder, scope, loop_depth + 1));
        }
        Stmt::if_else(cond, then_body, else_body)
    }

    fn gen_condition(&mut self, scope: &Scope) -> Expr {
        let cmp =
            [BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge, BinaryOp::Eq, BinaryOp::Ne]
                [self.rng.gen_range(0..6)];
        let lhs = self.gen_leaf(scope);
        let rhs = if self.rng.gen_bool(0.5) {
            Expr::constant(self.rng.gen_range(-64..64))
        } else {
            self.gen_leaf(scope)
        };
        Expr::binary(cmp, lhs, rhs)
    }

    fn gen_leaf(&mut self, scope: &Scope) -> Expr {
        if !scope.arrays.is_empty() && self.rng.gen_bool(self.config.array_leaf_prob) {
            let (array, ty) = scope.arrays[self.rng.gen_range(0..scope.arrays.len())];
            let index = if self.rng.gen_bool(0.5) {
                Expr::constant(self.rng.gen_range(0..ty.len as i64))
            } else {
                let (scalar, _) = scope.scalars[self.rng.gen_range(0..scope.scalars.len())];
                Expr::var(scalar)
            };
            Expr::index(array, index)
        } else if self.rng.gen_bool(0.2) {
            Expr::constant(self.rng.gen_range(-128..128))
        } else {
            let (scalar, _) = scope.scalars[self.rng.gen_range(0..scope.scalars.len())];
            Expr::var(scalar)
        }
    }

    fn gen_expr(&mut self, scope: &Scope, depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.25) {
            return self.gen_leaf(scope);
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.08 {
            let op = if self.rng.gen_bool(0.5) { UnaryOp::Neg } else { UnaryOp::Not };
            Expr::unary(op, self.gen_expr(scope, depth - 1))
        } else if roll < 0.14 {
            Expr::select(
                self.gen_condition(scope),
                self.gen_expr(scope, depth - 1),
                self.gen_expr(scope, depth - 1),
            )
        } else {
            let op = self.random_binary_op();
            Expr::binary(op, self.gen_expr(scope, depth - 1), self.gen_expr(scope, depth - 1))
        }
    }

    fn random_binary_op(&mut self) -> BinaryOp {
        if self.rng.gen_bool(self.config.div_prob) {
            return if self.rng.gen_bool(0.5) { BinaryOp::Div } else { BinaryOp::Rem };
        }
        // Arithmetic dominates, with a healthy share of bitwise/shift logic.
        const CHOICES: [(BinaryOp, u32); 8] = [
            (BinaryOp::Add, 28),
            (BinaryOp::Sub, 16),
            (BinaryOp::Mul, 24),
            (BinaryOp::And, 8),
            (BinaryOp::Or, 7),
            (BinaryOp::Xor, 7),
            (BinaryOp::Shl, 5),
            (BinaryOp::Shr, 5),
        ];
        let total: u32 = CHOICES.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..total);
        for (op, weight) in CHOICES {
            if roll < weight {
                return op;
            }
            roll -= weight;
        }
        BinaryOp::Add
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::graph::extract_graph;

    #[test]
    fn straight_line_programs_have_no_control_flow() {
        let mut generator = ProgramGenerator::new(SyntheticConfig::straight_line(), 7);
        for program in generator.generate_many(20) {
            assert!(!program.has_control_flow(), "{} has control flow", program.name);
            assert!(extract_graph(&program, GraphKind::Dfg).is_ok());
        }
    }

    #[test]
    fn control_programs_usually_contain_loops_or_branches() {
        let mut generator = ProgramGenerator::new(SyntheticConfig::control(), 11);
        let programs = generator.generate_many(30);
        let with_control = programs.iter().filter(|p| p.has_control_flow()).count();
        assert!(with_control > 15, "only {with_control}/30 programs had control flow");
        for program in &programs {
            assert!(extract_graph(program, GraphKind::Cdfg).is_ok());
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = ProgramGenerator::new(SyntheticConfig::control(), 1234);
        let mut b = ProgramGenerator::new(SyntheticConfig::control(), 1234);
        assert_eq!(a.generate_many(5), b.generate_many(5));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ProgramGenerator::new(SyntheticConfig::straight_line(), 1);
        let mut b = ProgramGenerator::new(SyntheticConfig::straight_line(), 2);
        assert_ne!(a.generate_many(5), b.generate_many(5));
    }

    #[test]
    fn program_names_are_unique() {
        let mut generator =
            ProgramGenerator::new(SyntheticConfig::tiny(ProgramFamily::StraightLine), 3);
        let names: std::collections::HashSet<String> =
            generator.generate_many(50).into_iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn generated_graphs_have_reasonable_size() {
        let mut generator = ProgramGenerator::new(SyntheticConfig::control(), 5);
        for program in generator.generate_many(10) {
            let graph = extract_graph(&program, GraphKind::Cdfg).unwrap();
            assert!(graph.node_count() >= 5);
            assert!(
                graph.node_count() < 4000,
                "{} nodes is unexpectedly large",
                graph.node_count()
            );
        }
    }
}
