//! Real-world HLS kernel suite used for generalisation evaluation.
//!
//! The paper evaluates generalisation on MachSuite (16 applications), CHStone
//! (10) and PolyBench/C (30). The original C sources are not redistributable
//! here, so this module provides hand-written kernels over the `hls-ir` AST
//! that mirror the loop structure, arithmetic mix and array-access patterns of
//! those suites (matrix kernels, stencils, dynamic programming, fixed-point
//! signal processing, bit-twiddling crypto rounds, ...). All kernels contain
//! control flow and therefore lower to CDFGs, exactly like the real suites.

mod chstone;
pub(crate) mod helpers;
mod machsuite;
mod polybench;

use hls_ir::ast::Function;
use std::fmt;

/// Which benchmark suite a kernel mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MachSuite: accelerator-centric kernels.
    MachSuite,
    /// CHStone: fixed-point / integer media and crypto programs.
    ChStone,
    /// PolyBench/C: affine loop nests over dense arrays.
    PolyBench,
}

impl Suite {
    /// All suites in a stable order.
    pub const ALL: [Suite; 3] = [Suite::MachSuite, Suite::ChStone, Suite::PolyBench];

    /// Human-readable suite name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::MachSuite => "machsuite",
            Suite::ChStone => "chstone",
            Suite::PolyBench => "polybench",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named real-world kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (unique across the whole suite).
    pub name: String,
    /// Suite this kernel mirrors.
    pub suite: Suite,
    /// The behavioural function.
    pub function: Function,
}

impl Kernel {
    fn new(name: &str, suite: Suite, function: Function) -> Self {
        Kernel { name: name.to_owned(), suite, function }
    }
}

/// Returns the full kernel suite (MachSuite + CHStone + PolyBench analogues).
pub fn all_kernels() -> Vec<Kernel> {
    let mut kernels = Vec::new();
    for (name, function) in machsuite::kernels() {
        kernels.push(Kernel::new(name, Suite::MachSuite, function));
    }
    for (name, function) in chstone::kernels() {
        kernels.push(Kernel::new(name, Suite::ChStone, function));
    }
    for (name, function) in polybench::kernels() {
        kernels.push(Kernel::new(name, Suite::PolyBench, function));
    }
    kernels
}

/// Returns the kernels of a single suite.
pub fn kernels_of(suite: Suite) -> Vec<Kernel> {
    all_kernels().into_iter().filter(|k| k.suite == suite).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hls_ir::graph::{extract_graph, GraphKind};
    use std::collections::HashSet;

    #[test]
    fn suite_has_expected_composition() {
        let kernels = all_kernels();
        let machsuite = kernels.iter().filter(|k| k.suite == Suite::MachSuite).count();
        let chstone = kernels.iter().filter(|k| k.suite == Suite::ChStone).count();
        let polybench = kernels.iter().filter(|k| k.suite == Suite::PolyBench).count();
        assert!(machsuite >= 12, "expected >=12 MachSuite kernels, got {machsuite}");
        assert!(chstone >= 8, "expected >=8 CHStone kernels, got {chstone}");
        assert!(polybench >= 16, "expected >=16 PolyBench kernels, got {polybench}");
    }

    #[test]
    fn kernel_names_are_unique() {
        let kernels = all_kernels();
        let names: HashSet<&str> = kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(names.len(), kernels.len());
    }

    #[test]
    fn every_kernel_lowers_to_a_cdfg() {
        for kernel in all_kernels() {
            let graph = extract_graph(&kernel.function, GraphKind::Cdfg)
                .unwrap_or_else(|e| panic!("kernel {} failed to lower: {e}", kernel.name));
            assert!(graph.node_count() > 10, "kernel {} is suspiciously small", kernel.name);
            assert!(
                graph.is_dag_ignoring_back_edges(),
                "kernel {} has residual cycles beyond marked back edges",
                kernel.name
            );
        }
    }

    #[test]
    fn every_kernel_has_loops() {
        for kernel in all_kernels() {
            assert!(
                kernel.function.has_control_flow(),
                "kernel {} has no control flow",
                kernel.name
            );
        }
    }

    #[test]
    fn kernels_of_filters_by_suite() {
        for suite in Suite::ALL {
            let subset = kernels_of(suite);
            assert!(!subset.is_empty());
            assert!(subset.iter().all(|k| k.suite == suite));
        }
    }
}
