//! MachSuite-like accelerator kernels.
//!
//! Each kernel mirrors the loop nest, arithmetic mix and memory-access pattern
//! of the corresponding MachSuite benchmark at a reduced problem size (the
//! predictors only ever see the IR graph, whose structure is preserved).

use hls_ir::ast::{Expr, Function, FunctionBuilder, Stmt};
use hls_ir::types::{ArrayType, ScalarType};

use super::helpers::*;

const N: i64 = 8;

/// All MachSuite-like kernels as `(name, function)` pairs.
pub(crate) fn kernels() -> Vec<(&'static str, Function)> {
    vec![
        ("ms_gemm_ncubed", gemm_ncubed()),
        ("ms_gemm_blocked", gemm_blocked()),
        ("ms_spmv_crs", spmv_crs()),
        ("ms_spmv_ellpack", spmv_ellpack()),
        ("ms_stencil2d", stencil2d()),
        ("ms_stencil3d", stencil3d()),
        ("ms_md_knn", md_knn()),
        ("ms_nw", nw()),
        ("ms_kmp", kmp()),
        ("ms_sort_merge", sort_merge()),
        ("ms_sort_radix", sort_radix()),
        ("ms_viterbi", viterbi()),
        ("ms_fft_strided", fft_strided()),
        ("ms_bfs_bulk", bfs_bulk()),
        ("ms_aes_addround", aes_addround()),
        ("ms_backprop_layer", backprop_layer()),
    ]
}

fn gemm_ncubed() -> Function {
    let mut f = FunctionBuilder::new("ms_gemm_ncubed");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let sum = f.local("sum", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(sum, c(0)),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::assign(
                        sum,
                        add(v(sum), mul(at(a, idx2(i, k, N)), at(b, idx2(k, j, N)))),
                    )],
                ),
                Stmt::store(out, idx2(i, j, N), v(sum)),
            ],
        )],
    ));
    f.ret(sum);
    f.finish().expect("gemm_ncubed is valid")
}

fn gemm_blocked() -> Function {
    const B: i64 = 4;
    let mut f = FunctionBuilder::new("ms_gemm_blocked");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let (jj, kk) = (f.local("jj", ScalarType::i32()), f.local("kk", ScalarType::i32()));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    let inner = vec![Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            k,
            0,
            B,
            1,
            vec![Stmt::for_loop(
                j,
                0,
                B,
                1,
                vec![
                    Stmt::assign(
                        acc,
                        mul(
                            at(a, add(mul(v(i), c(N)), add(v(kk), v(k)))),
                            at(b, add(mul(add(v(kk), v(k)), c(N)), add(v(jj), v(j)))),
                        ),
                    ),
                    Stmt::store(
                        out,
                        add(mul(v(i), c(N)), add(v(jj), v(j))),
                        add(at(out, add(mul(v(i), c(N)), add(v(jj), v(j)))), v(acc)),
                    ),
                ],
            )],
        )],
    )];
    f.push(Stmt::for_loop(jj, 0, N, B, vec![Stmt::for_loop(kk, 0, N, B, inner)]));
    f.ret(acc);
    f.finish().expect("gemm_blocked is valid")
}

fn spmv_crs() -> Function {
    const NNZ: i64 = 4;
    let mut f = FunctionBuilder::new("ms_spmv_crs");
    let values = f.array_param("values", ArrayType::new(ScalarType::i32(), (N * NNZ) as usize));
    let cols = f.array_param("cols", ArrayType::new(ScalarType::unsigned(8), (N * NNZ) as usize));
    let vec_in = f.array_param("vec", ArrayType::new(ScalarType::i32(), N as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let sum = f.local("sum", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(sum, c(0)),
            Stmt::for_loop(
                j,
                0,
                NNZ,
                1,
                vec![Stmt::assign(
                    sum,
                    add(
                        v(sum),
                        mul(at(values, idx2(i, j, NNZ)), at(vec_in, at(cols, idx2(i, j, NNZ)))),
                    ),
                )],
            ),
            Stmt::store(out, v(i), v(sum)),
        ],
    ));
    f.ret(sum);
    f.finish().expect("spmv_crs is valid")
}

fn spmv_ellpack() -> Function {
    const L: i64 = 4;
    let mut f = FunctionBuilder::new("ms_spmv_ellpack");
    let nzval = f.array_param("nzval", ArrayType::new(ScalarType::i32(), (N * L) as usize));
    let cols = f.array_param("cols", ArrayType::new(ScalarType::unsigned(8), (N * L) as usize));
    let vec_in = f.array_param("vec", ArrayType::new(ScalarType::i32(), N as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let si = f.local("si", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(si, c(0)),
            Stmt::for_loop(
                j,
                0,
                L,
                1,
                vec![Stmt::assign(
                    si,
                    add(
                        v(si),
                        mul(
                            at(nzval, add(mul(v(j), c(N)), v(i))),
                            at(vec_in, at(cols, add(mul(v(j), c(N)), v(i)))),
                        ),
                    ),
                )],
            ),
            Stmt::store(out, v(i), v(si)),
        ],
    ));
    f.ret(si);
    f.finish().expect("spmv_ellpack is valid")
}

fn stencil2d() -> Function {
    let mut f = FunctionBuilder::new("ms_stencil2d");
    let orig = f.array_param("orig", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let filt = f.array_param("filter", ArrayType::new(ScalarType::i32(), 9));
    let sol = f.array_param("sol", ArrayType::new(ScalarType::i32(), (N * N) as usize));
    let (r, col) = (f.local("r", ScalarType::i32()), f.local("c", ScalarType::i32()));
    let (k1, k2) = (f.local("k1", ScalarType::i32()), f.local("k2", ScalarType::i32()));
    let temp = f.local("temp", ScalarType::signed(64));
    let mul_t = f.local("mul_t", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        r,
        0,
        N - 2,
        1,
        vec![Stmt::for_loop(
            col,
            0,
            N - 2,
            1,
            vec![
                Stmt::assign(temp, c(0)),
                Stmt::for_loop(
                    k1,
                    0,
                    3,
                    1,
                    vec![Stmt::for_loop(
                        k2,
                        0,
                        3,
                        1,
                        vec![
                            Stmt::assign(
                                mul_t,
                                mul(
                                    at(filt, idx2(k1, k2, 3)),
                                    at(orig, add(mul(add(v(r), v(k1)), c(N)), add(v(col), v(k2)))),
                                ),
                            ),
                            Stmt::assign(temp, add(v(temp), v(mul_t))),
                        ],
                    )],
                ),
                Stmt::store(sol, idx2(r, col, N), v(temp)),
            ],
        )],
    ));
    f.ret(temp);
    f.finish().expect("stencil2d is valid")
}

fn stencil3d() -> Function {
    const D: i64 = 4;
    let mut f = FunctionBuilder::new("ms_stencil3d");
    let orig = f.array_param("orig", ArrayType::new(ScalarType::i32(), (D * D * D) as usize));
    let sol = f.array_param("sol", ArrayType::new(ScalarType::i32(), (D * D * D) as usize));
    let c0 = f.param("c0", ScalarType::i32());
    let c1 = f.param("c1", ScalarType::i32());
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let sum0 = f.local("sum0", ScalarType::signed(64));
    let sum1 = f.local("sum1", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        1,
        D - 1,
        1,
        vec![Stmt::for_loop(
            j,
            1,
            D - 1,
            1,
            vec![Stmt::for_loop(
                k,
                1,
                D - 1,
                1,
                vec![
                    Stmt::assign(sum0, at(orig, idx3(i, j, k, D, D))),
                    Stmt::assign(
                        sum1,
                        add(
                            add(
                                at(orig, add(idx3(i, j, k, D, D), c(1))),
                                at(orig, sub(idx3(i, j, k, D, D), c(1))),
                            ),
                            add(
                                at(orig, add(idx3(i, j, k, D, D), c(D))),
                                at(orig, sub(idx3(i, j, k, D, D), c(D))),
                            ),
                        ),
                    ),
                    Stmt::store(
                        sol,
                        idx3(i, j, k, D, D),
                        add(mul(v(c0), v(sum0)), mul(v(c1), v(sum1))),
                    ),
                ],
            )],
        )],
    ));
    f.ret(sum1);
    f.finish().expect("stencil3d is valid")
}

fn md_knn() -> Function {
    const NEIGHBOURS: i64 = 4;
    let mut f = FunctionBuilder::new("ms_md_knn");
    let pos_x = f.array_param("pos_x", ArrayType::new(ScalarType::i32(), N as usize));
    let pos_y = f.array_param("pos_y", ArrayType::new(ScalarType::i32(), N as usize));
    let pos_z = f.array_param("pos_z", ArrayType::new(ScalarType::i32(), N as usize));
    let nl =
        f.array_param("nl", ArrayType::new(ScalarType::unsigned(8), (N * NEIGHBOURS) as usize));
    let force_x = f.array_param("force_x", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let (dx, dy, dz) = (
        f.local("dx", ScalarType::signed(32)),
        f.local("dy", ScalarType::signed(32)),
        f.local("dz", ScalarType::signed(32)),
    );
    let r2 = f.local("r2", ScalarType::signed(64));
    let r2inv = f.local("r2inv", ScalarType::signed(64));
    let potential = f.local("potential", ScalarType::signed(64));
    let fx = f.local("fx", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(fx, c(0)),
            Stmt::for_loop(
                j,
                0,
                NEIGHBOURS,
                1,
                vec![
                    Stmt::assign(
                        dx,
                        sub(at(pos_x, v(i)), at(pos_x, at(nl, idx2(i, j, NEIGHBOURS)))),
                    ),
                    Stmt::assign(
                        dy,
                        sub(at(pos_y, v(i)), at(pos_y, at(nl, idx2(i, j, NEIGHBOURS)))),
                    ),
                    Stmt::assign(
                        dz,
                        sub(at(pos_z, v(i)), at(pos_z, at(nl, idx2(i, j, NEIGHBOURS)))),
                    ),
                    Stmt::assign(
                        r2,
                        add(add(mul(v(dx), v(dx)), mul(v(dy), v(dy))), mul(v(dz), v(dz))),
                    ),
                    Stmt::assign(r2inv, div(c(1 << 20), add(v(r2), c(1)))),
                    Stmt::assign(potential, mul(v(r2inv), mul(v(r2inv), v(r2inv)))),
                    Stmt::assign(fx, add(v(fx), mul(v(potential), v(dx)))),
                ],
            ),
            Stmt::store(force_x, v(i), v(fx)),
        ],
    ));
    f.ret(fx);
    f.finish().expect("md_knn is valid")
}

fn nw() -> Function {
    const L: i64 = 8;
    let mut f = FunctionBuilder::new("ms_nw");
    let seq_a = f.array_param("seq_a", ArrayType::new(ScalarType::i8(), L as usize));
    let seq_b = f.array_param("seq_b", ArrayType::new(ScalarType::i8(), L as usize));
    let m = f.array_param("m", ArrayType::new(ScalarType::i32(), ((L + 1) * (L + 1)) as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let score = f.local("score", ScalarType::i32());
    let up_left = f.local("up_left", ScalarType::i32());
    let up = f.local("up", ScalarType::i32());
    let left = f.local("left", ScalarType::i32());
    let best = f.local("best", ScalarType::i32());
    f.push(Stmt::for_loop(
        i,
        1,
        L + 1,
        1,
        vec![Stmt::for_loop(
            j,
            1,
            L + 1,
            1,
            vec![
                Stmt::assign(
                    score,
                    Expr::select(
                        Expr::binary(
                            hls_ir::ast::BinaryOp::Eq,
                            at(seq_a, sub(v(i), c(1))),
                            at(seq_b, sub(v(j), c(1))),
                        ),
                        c(1),
                        c(-1),
                    ),
                ),
                Stmt::assign(
                    up_left,
                    add(at(m, add(mul(sub(v(i), c(1)), c(L + 1)), sub(v(j), c(1)))), v(score)),
                ),
                Stmt::assign(up, sub(at(m, add(mul(sub(v(i), c(1)), c(L + 1)), v(j))), c(1))),
                Stmt::assign(left, sub(at(m, add(mul(v(i), c(L + 1)), sub(v(j), c(1)))), c(1))),
                Stmt::assign(best, maxe(maxe(v(up_left), v(up)), v(left))),
                Stmt::store(m, idx2(i, j, L + 1), v(best)),
            ],
        )],
    ));
    f.ret(best);
    f.finish().expect("nw is valid")
}

fn kmp() -> Function {
    const PATTERN: i64 = 4;
    const STRING: i64 = 32;
    let mut f = FunctionBuilder::new("ms_kmp");
    let pattern = f.array_param("pattern", ArrayType::new(ScalarType::i8(), PATTERN as usize));
    let input = f.array_param("input", ArrayType::new(ScalarType::i8(), STRING as usize));
    let kmp_next = f.array_param("kmp_next", ArrayType::new(ScalarType::i32(), PATTERN as usize));
    let i = f.local("i", ScalarType::i32());
    let q = f.local("q", ScalarType::i32());
    let matches = f.local("matches", ScalarType::i32());
    f.assign(q, c(0));
    f.assign(matches, c(0));
    f.push(Stmt::for_loop(
        i,
        0,
        STRING,
        1,
        vec![
            Stmt::if_else(
                Expr::binary(hls_ir::ast::BinaryOp::Ne, at(pattern, v(q)), at(input, v(i))),
                vec![Stmt::assign(q, at(kmp_next, v(q)))],
                vec![],
            ),
            Stmt::if_else(
                Expr::binary(hls_ir::ast::BinaryOp::Eq, at(pattern, v(q)), at(input, v(i))),
                vec![Stmt::assign(q, add(v(q), c(1)))],
                vec![],
            ),
            Stmt::if_else(
                Expr::binary(hls_ir::ast::BinaryOp::Ge, v(q), c(PATTERN)),
                vec![
                    Stmt::assign(matches, add(v(matches), c(1))),
                    Stmt::assign(q, at(kmp_next, sub(v(q), c(1)))),
                ],
                vec![],
            ),
        ],
    ));
    f.ret(matches);
    f.finish().expect("kmp is valid")
}

fn sort_merge() -> Function {
    const LEN: i64 = 16;
    let mut f = FunctionBuilder::new("ms_sort_merge");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), LEN as usize));
    let temp = f.array_param("temp", ArrayType::new(ScalarType::i32(), LEN as usize));
    let (start, i) = (f.local("start", ScalarType::i32()), f.local("i", ScalarType::i32()));
    let (x, y) = (f.local("x", ScalarType::i32()), f.local("y", ScalarType::i32()));
    let picked = f.local("picked", ScalarType::i32());
    f.push(Stmt::for_loop(
        start,
        0,
        LEN,
        8,
        vec![
            Stmt::assign(x, v(start)),
            Stmt::assign(y, add(v(start), c(4))),
            Stmt::for_loop(
                i,
                0,
                8,
                1,
                vec![
                    Stmt::if_else(
                        lt(at(a, v(x)), at(a, v(y))),
                        vec![Stmt::assign(picked, at(a, v(x))), Stmt::assign(x, add(v(x), c(1)))],
                        vec![Stmt::assign(picked, at(a, v(y))), Stmt::assign(y, add(v(y), c(1)))],
                    ),
                    Stmt::store(temp, add(v(start), v(i)), v(picked)),
                ],
            ),
        ],
    ));
    f.ret(picked);
    f.finish().expect("sort_merge is valid")
}

fn sort_radix() -> Function {
    const LEN: i64 = 16;
    let mut f = FunctionBuilder::new("ms_sort_radix");
    let a = f.array_param("a", ArrayType::new(ScalarType::u32(), LEN as usize));
    let bucket = f.array_param("bucket", ArrayType::new(ScalarType::u32(), 4));
    let out = f.array_param("out", ArrayType::new(ScalarType::u32(), LEN as usize));
    let (pass, i) = (f.local("pass", ScalarType::i32()), f.local("i", ScalarType::i32()));
    let digit = f.local("digit", ScalarType::u32());
    let offset = f.local("offset", ScalarType::u32());
    f.push(Stmt::for_loop(
        pass,
        0,
        4,
        1,
        vec![
            Stmt::for_loop(i, 0, 4, 1, vec![Stmt::store(bucket, v(i), c(0))]),
            Stmt::for_loop(
                i,
                0,
                LEN,
                1,
                vec![
                    Stmt::assign(digit, band(shr(at(a, v(i)), mul(v(pass), c(2))), c(3))),
                    Stmt::store(bucket, v(digit), add(at(bucket, v(digit)), c(1))),
                ],
            ),
            Stmt::for_loop(
                i,
                0,
                LEN,
                1,
                vec![
                    Stmt::assign(digit, band(shr(at(a, v(i)), mul(v(pass), c(2))), c(3))),
                    Stmt::assign(offset, at(bucket, v(digit))),
                    Stmt::store(out, band(v(offset), c(LEN - 1)), at(a, v(i))),
                    Stmt::store(bucket, v(digit), add(v(offset), c(1))),
                ],
            ),
        ],
    ));
    f.ret(offset);
    f.finish().expect("sort_radix is valid")
}

fn viterbi() -> Function {
    const STATES: i64 = 4;
    const STEPS: i64 = 8;
    let mut f = FunctionBuilder::new("ms_viterbi");
    let obs = f.array_param("obs", ArrayType::new(ScalarType::unsigned(8), STEPS as usize));
    let transition =
        f.array_param("transition", ArrayType::new(ScalarType::i32(), (STATES * STATES) as usize));
    let emission =
        f.array_param("emission", ArrayType::new(ScalarType::i32(), (STATES * STATES) as usize));
    let llike =
        f.array_param("llike", ArrayType::new(ScalarType::i32(), (STEPS * STATES) as usize));
    let (t, curr, prev) = (
        f.local("t", ScalarType::i32()),
        f.local("curr", ScalarType::i32()),
        f.local("prev", ScalarType::i32()),
    );
    let min_p = f.local("min_p", ScalarType::i32());
    let p = f.local("p", ScalarType::i32());
    f.push(Stmt::for_loop(
        t,
        1,
        STEPS,
        1,
        vec![Stmt::for_loop(
            curr,
            0,
            STATES,
            1,
            vec![
                Stmt::assign(min_p, c(1 << 20)),
                Stmt::for_loop(
                    prev,
                    0,
                    STATES,
                    1,
                    vec![
                        Stmt::assign(
                            p,
                            add(
                                add(
                                    at(llike, add(mul(sub(v(t), c(1)), c(STATES)), v(prev))),
                                    at(transition, idx2(prev, curr, STATES)),
                                ),
                                at(emission, add(mul(v(curr), c(STATES)), at(obs, v(t)))),
                            ),
                        ),
                        Stmt::if_else(lt(v(p), v(min_p)), vec![Stmt::assign(min_p, v(p))], vec![]),
                    ],
                ),
                Stmt::store(llike, idx2(t, curr, STATES), v(min_p)),
            ],
        )],
    ));
    f.ret(min_p);
    f.finish().expect("viterbi is valid")
}

fn fft_strided() -> Function {
    const LEN: i64 = 16;
    let mut f = FunctionBuilder::new("ms_fft_strided");
    let real = f.array_param("real", ArrayType::new(ScalarType::i32(), LEN as usize));
    let img = f.array_param("img", ArrayType::new(ScalarType::i32(), LEN as usize));
    let real_twid =
        f.array_param("real_twid", ArrayType::new(ScalarType::i32(), (LEN / 2) as usize));
    let img_twid = f.array_param("img_twid", ArrayType::new(ScalarType::i32(), (LEN / 2) as usize));
    let (span, odd) = (f.local("span", ScalarType::i32()), f.local("odd", ScalarType::i32()));
    let even = f.local("even", ScalarType::i32());
    let temp = f.local("temp", ScalarType::signed(64));
    let rotated = f.local("rotated", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        span,
        1,
        5,
        1,
        vec![Stmt::for_loop(
            odd,
            0,
            LEN / 2,
            1,
            vec![
                Stmt::assign(even, band(v(odd), c(LEN / 2 - 1))),
                Stmt::assign(
                    temp,
                    add(at(real, v(even)), at(real, band(add(v(odd), c(1)), c(LEN - 1)))),
                ),
                Stmt::store(real, v(even), v(temp)),
                Stmt::assign(
                    rotated,
                    sub(
                        mul(v(temp), at(real_twid, band(v(odd), c(LEN / 2 - 1)))),
                        mul(at(img, v(even)), at(img_twid, band(v(odd), c(LEN / 2 - 1)))),
                    ),
                ),
                Stmt::store(img, v(even), shr(v(rotated), c(8))),
            ],
        )],
    ));
    f.ret(even);
    f.finish().expect("fft_strided is valid")
}

fn bfs_bulk() -> Function {
    const NODES: i64 = 16;
    const EDGES: i64 = 4;
    let mut f = FunctionBuilder::new("ms_bfs_bulk");
    let level = f.array_param("level", ArrayType::new(ScalarType::i8(), NODES as usize));
    let edges =
        f.array_param("edges", ArrayType::new(ScalarType::unsigned(8), (NODES * EDGES) as usize));
    let (horizon, node, e) = (
        f.local("horizon", ScalarType::i32()),
        f.local("node", ScalarType::i32()),
        f.local("e", ScalarType::i32()),
    );
    let counter = f.local("counter", ScalarType::i32());
    let neighbour = f.local("neighbour", ScalarType::i32());
    f.assign(counter, c(0));
    f.push(Stmt::for_loop(
        horizon,
        0,
        4,
        1,
        vec![Stmt::for_loop(
            node,
            0,
            NODES,
            1,
            vec![Stmt::if_else(
                Expr::binary(hls_ir::ast::BinaryOp::Eq, at(level, v(node)), v(horizon)),
                vec![Stmt::for_loop(
                    e,
                    0,
                    EDGES,
                    1,
                    vec![
                        Stmt::assign(neighbour, at(edges, idx2(node, e, EDGES))),
                        Stmt::if_else(
                            gt(at(level, v(neighbour)), add(v(horizon), c(1))),
                            vec![
                                Stmt::store(level, v(neighbour), add(v(horizon), c(1))),
                                Stmt::assign(counter, add(v(counter), c(1))),
                            ],
                            vec![],
                        ),
                    ],
                )],
                vec![],
            )],
        )],
    ));
    f.ret(counter);
    f.finish().expect("bfs_bulk is valid")
}

fn aes_addround() -> Function {
    const ROUNDS: i64 = 10;
    let mut f = FunctionBuilder::new("ms_aes_addround");
    let state = f.array_param("state", ArrayType::new(ScalarType::unsigned(8), 16));
    let key = f.array_param("key", ArrayType::new(ScalarType::unsigned(8), (16 * ROUNDS) as usize));
    let sbox = f.array_param("sbox", ArrayType::new(ScalarType::unsigned(8), 256));
    let (round, i) = (f.local("round", ScalarType::i32()), f.local("i", ScalarType::i32()));
    let byte = f.local("byte", ScalarType::unsigned(8));
    f.push(Stmt::for_loop(
        round,
        0,
        ROUNDS,
        1,
        vec![Stmt::for_loop(
            i,
            0,
            16,
            1,
            vec![
                Stmt::assign(byte, xor(at(state, v(i)), at(key, idx2(round, i, 16)))),
                Stmt::assign(byte, at(sbox, v(byte))),
                Stmt::store(state, v(i), xor(v(byte), shl(band(v(byte), c(0x7f)), c(1)))),
            ],
        )],
    ));
    f.ret(byte);
    f.finish().expect("aes_addround is valid")
}

fn backprop_layer() -> Function {
    const IN: i64 = 8;
    const OUT: i64 = 4;
    let mut f = FunctionBuilder::new("ms_backprop_layer");
    let weights = f.array_param("weights", ArrayType::new(ScalarType::i32(), (IN * OUT) as usize));
    let activations = f.array_param("activations", ArrayType::new(ScalarType::i32(), IN as usize));
    let deltas = f.array_param("deltas", ArrayType::new(ScalarType::i32(), OUT as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::i32(), OUT as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let sum = f.local("sum", ScalarType::signed(64));
    let activated = f.local("activated", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        j,
        0,
        OUT,
        1,
        vec![
            Stmt::assign(sum, c(0)),
            Stmt::for_loop(
                i,
                0,
                IN,
                1,
                vec![Stmt::assign(
                    sum,
                    add(v(sum), mul(at(weights, idx2(i, j, OUT)), at(activations, v(i)))),
                )],
            ),
            // Piece-wise linear "sigmoid": clamp into a range then scale.
            Stmt::assign(
                activated,
                Expr::select(gt(v(sum), c(1 << 16)), c(1 << 16), maxe(v(sum), c(0))),
            ),
            Stmt::store(out, v(j), shr(mul(v(activated), at(deltas, v(j))), c(8))),
        ],
    ));
    f.ret(activated);
    f.finish().expect("backprop_layer is valid")
}
