//! PolyBench/C-like affine loop-nest kernels.
//!
//! PolyBench is dominated by dense linear-algebra loop nests (matrix products,
//! solvers, stencils). The analogues below use integer arithmetic (the paper's
//! benchmark is synthesised for integer datapaths) and reduced problem sizes,
//! preserving the loop structure and array-access patterns.

use hls_ir::ast::{Expr, Function, FunctionBuilder, Stmt};
use hls_ir::types::{ArrayType, ScalarType};

use super::helpers::*;

const N: i64 = 8;
const NN: usize = (N * N) as usize;

/// All PolyBench-like kernels as `(name, function)` pairs.
pub(crate) fn kernels() -> Vec<(&'static str, Function)> {
    vec![
        ("pb_2mm", two_mm()),
        ("pb_3mm", three_mm()),
        ("pb_atax", atax()),
        ("pb_bicg", bicg()),
        ("pb_doitgen", doitgen()),
        ("pb_gemver", gemver()),
        ("pb_gesummv", gesummv()),
        ("pb_mvt", mvt()),
        ("pb_symm", symm()),
        ("pb_syrk", syrk()),
        ("pb_syr2k", syr2k()),
        ("pb_trmm", trmm()),
        ("pb_cholesky", cholesky()),
        ("pb_durbin", durbin()),
        ("pb_lu", lu()),
        ("pb_trisolv", trisolv()),
        ("pb_jacobi_1d", jacobi_1d()),
        ("pb_jacobi_2d", jacobi_2d()),
        ("pb_seidel_2d", seidel_2d()),
        ("pb_fdtd_2d", fdtd_2d()),
        ("pb_heat_3d", heat_3d()),
        ("pb_adi_like", adi_like()),
        ("pb_gramschmidt", gramschmidt()),
        ("pb_covariance", covariance()),
        ("pb_correlation", correlation()),
        ("pb_floyd_warshall", floyd_warshall()),
        ("pb_nussinov_like", nussinov_like()),
        ("pb_deriche_row", deriche_row()),
    ]
}

/// `for i,j { acc = 0; for k acc += alpha*A[i,k]*B[k,j]; D[i,j] = acc }` twice.
fn two_mm() -> Function {
    let mut f = FunctionBuilder::new("pb_2mm");
    let alpha = f.param("alpha", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let cm = f.array_param("cm", ArrayType::new(ScalarType::i32(), NN));
    let tmp = f.array_param("tmp", ArrayType::new(ScalarType::i32(), NN));
    let d = f.array_param("d", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(acc, c(0)),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::assign(
                        acc,
                        add(v(acc), mul(mul(v(alpha), at(a, idx2(i, k, N))), at(b, idx2(k, j, N)))),
                    )],
                ),
                Stmt::store(tmp, idx2(i, j, N), v(acc)),
            ],
        )],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(acc, at(d, idx2(i, j, N))),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::assign(
                        acc,
                        add(v(acc), mul(at(tmp, idx2(i, k, N)), at(cm, idx2(k, j, N)))),
                    )],
                ),
                Stmt::store(d, idx2(i, j, N), v(acc)),
            ],
        )],
    ));
    f.ret(acc);
    f.finish().expect("2mm is valid")
}

fn three_mm() -> Function {
    let mut f = FunctionBuilder::new("pb_3mm");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let cm = f.array_param("cm", ArrayType::new(ScalarType::i32(), NN));
    let d = f.array_param("d", ArrayType::new(ScalarType::i32(), NN));
    let e = f.array_param("e", ArrayType::new(ScalarType::i32(), NN));
    let ff = f.array_param("f", ArrayType::new(ScalarType::i32(), NN));
    let g = f.array_param("g", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    let matmul = |dst, lhs, rhs, i, j, k, acc| {
        Stmt::for_loop(
            i,
            0,
            N,
            1,
            vec![Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![
                    Stmt::assign(acc, c(0)),
                    Stmt::for_loop(
                        k,
                        0,
                        N,
                        1,
                        vec![Stmt::assign(
                            acc,
                            add(v(acc), mul(at(lhs, idx2(i, k, N)), at(rhs, idx2(k, j, N)))),
                        )],
                    ),
                    Stmt::store(dst, idx2(i, j, N), v(acc)),
                ],
            )],
        )
    };
    f.push(matmul(e, a, b, i, j, k, acc));
    f.push(matmul(ff, cm, d, i, j, k, acc));
    f.push(matmul(g, e, ff, i, j, k, acc));
    f.ret(acc);
    f.finish().expect("3mm is valid")
}

fn atax() -> Function {
    let mut f = FunctionBuilder::new("pb_atax");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let x = f.array_param("x", ArrayType::new(ScalarType::i32(), N as usize));
    let y = f.array_param("y", ArrayType::new(ScalarType::i32(), N as usize));
    let tmp = f.array_param("tmp", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::assign(acc, add(v(acc), mul(at(a, idx2(i, j, N)), at(x, v(j)))))],
            ),
            Stmt::store(tmp, v(i), v(acc)),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::store(y, v(j), add(at(y, v(j)), mul(at(a, idx2(i, j, N)), v(acc))))],
            ),
        ],
    ));
    f.ret(acc);
    f.finish().expect("atax is valid")
}

fn bicg() -> Function {
    let mut f = FunctionBuilder::new("pb_bicg");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let p = f.array_param("p", ArrayType::new(ScalarType::i32(), N as usize));
    let r = f.array_param("r", ArrayType::new(ScalarType::i32(), N as usize));
    let q = f.array_param("q", ArrayType::new(ScalarType::i32(), N as usize));
    let s = f.array_param("s", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![
                    Stmt::store(s, v(j), add(at(s, v(j)), mul(at(r, v(i)), at(a, idx2(i, j, N))))),
                    Stmt::assign(acc, add(v(acc), mul(at(a, idx2(i, j, N)), at(p, v(j))))),
                ],
            ),
            Stmt::store(q, v(i), v(acc)),
        ],
    ));
    f.ret(acc);
    f.finish().expect("bicg is valid")
}

fn doitgen() -> Function {
    const R: i64 = 4;
    let mut f = FunctionBuilder::new("pb_doitgen");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), (R * R * N) as usize));
    let c4 = f.array_param("c4", ArrayType::new(ScalarType::i32(), NN));
    let sum = f.array_param("sum", ArrayType::new(ScalarType::i32(), N as usize));
    let (rr, q, pp, s) = (
        f.local("rr", ScalarType::i32()),
        f.local("q", ScalarType::i32()),
        f.local("pp", ScalarType::i32()),
        f.local("s", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        rr,
        0,
        R,
        1,
        vec![Stmt::for_loop(
            q,
            0,
            R,
            1,
            vec![
                Stmt::for_loop(
                    pp,
                    0,
                    N,
                    1,
                    vec![
                        Stmt::assign(acc, c(0)),
                        Stmt::for_loop(
                            s,
                            0,
                            N,
                            1,
                            vec![Stmt::assign(
                                acc,
                                add(
                                    v(acc),
                                    mul(at(a, idx3(rr, q, s, R, N)), at(c4, idx2(s, pp, N))),
                                ),
                            )],
                        ),
                        Stmt::store(sum, v(pp), v(acc)),
                    ],
                ),
                Stmt::for_loop(
                    pp,
                    0,
                    N,
                    1,
                    vec![Stmt::store(a, idx3(rr, q, pp, R, N), at(sum, v(pp)))],
                ),
            ],
        )],
    ));
    f.ret(acc);
    f.finish().expect("doitgen is valid")
}

fn gemver() -> Function {
    let mut f = FunctionBuilder::new("pb_gemver");
    let alpha = f.param("alpha", ScalarType::i32());
    let beta = f.param("beta", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let (u1, v1) = (
        f.array_param("u1", ArrayType::new(ScalarType::i32(), N as usize)),
        f.array_param("v1", ArrayType::new(ScalarType::i32(), N as usize)),
    );
    let (x, y, w, z) = (
        f.array_param("x", ArrayType::new(ScalarType::i32(), N as usize)),
        f.array_param("y", ArrayType::new(ScalarType::i32(), N as usize)),
        f.array_param("w", ArrayType::new(ScalarType::i32(), N as usize)),
        f.array_param("z", ArrayType::new(ScalarType::i32(), N as usize)),
    );
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![Stmt::store(
                a,
                idx2(i, j, N),
                add(at(a, idx2(i, j, N)), mul(at(u1, v(i)), at(v1, v(j)))),
            )],
        )],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, at(x, v(i))),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::assign(
                    acc,
                    add(v(acc), mul(mul(v(beta), at(a, idx2(j, i, N))), at(y, v(j)))),
                )],
            ),
            Stmt::store(x, v(i), add(v(acc), at(z, v(i)))),
        ],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::assign(
                    acc,
                    add(v(acc), mul(mul(v(alpha), at(a, idx2(i, j, N))), at(x, v(j)))),
                )],
            ),
            Stmt::store(w, v(i), v(acc)),
        ],
    ));
    f.ret(acc);
    f.finish().expect("gemver is valid")
}

fn gesummv() -> Function {
    let mut f = FunctionBuilder::new("pb_gesummv");
    let alpha = f.param("alpha", ScalarType::i32());
    let beta = f.param("beta", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let x = f.array_param("x", ArrayType::new(ScalarType::i32(), N as usize));
    let y = f.array_param("y", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let (tmp, acc) =
        (f.local("tmp", ScalarType::signed(64)), f.local("acc", ScalarType::signed(64)));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(tmp, c(0)),
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![
                    Stmt::assign(tmp, add(v(tmp), mul(at(a, idx2(i, j, N)), at(x, v(j))))),
                    Stmt::assign(acc, add(v(acc), mul(at(b, idx2(i, j, N)), at(x, v(j))))),
                ],
            ),
            Stmt::store(y, v(i), add(mul(v(alpha), v(tmp)), mul(v(beta), v(acc)))),
        ],
    ));
    f.ret(acc);
    f.finish().expect("gesummv is valid")
}

fn mvt() -> Function {
    let mut f = FunctionBuilder::new("pb_mvt");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let (x1, x2) = (
        f.array_param("x1", ArrayType::new(ScalarType::i32(), N as usize)),
        f.array_param("x2", ArrayType::new(ScalarType::i32(), N as usize)),
    );
    let (y1, y2) = (
        f.array_param("y1", ArrayType::new(ScalarType::i32(), N as usize)),
        f.array_param("y2", ArrayType::new(ScalarType::i32(), N as usize)),
    );
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, at(x1, v(i))),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::assign(acc, add(v(acc), mul(at(a, idx2(i, j, N)), at(y1, v(j)))))],
            ),
            Stmt::store(x1, v(i), v(acc)),
        ],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, at(x2, v(i))),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::assign(acc, add(v(acc), mul(at(a, idx2(j, i, N)), at(y2, v(j)))))],
            ),
            Stmt::store(x2, v(i), v(acc)),
        ],
    ));
    f.ret(acc);
    f.finish().expect("mvt is valid")
}

fn symm() -> Function {
    let mut f = FunctionBuilder::new("pb_symm");
    let alpha = f.param("alpha", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let cm = f.array_param("cm", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let temp = f.local("temp", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(temp, c(0)),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::if_else(
                        lt(v(k), v(i)),
                        vec![Stmt::assign(
                            temp,
                            add(v(temp), mul(at(b, idx2(k, j, N)), at(a, idx2(i, k, N)))),
                        )],
                        vec![],
                    )],
                ),
                Stmt::store(
                    cm,
                    idx2(i, j, N),
                    add(
                        at(cm, idx2(i, j, N)),
                        mul(
                            v(alpha),
                            add(mul(at(b, idx2(i, j, N)), at(a, idx2(i, i, N))), v(temp)),
                        ),
                    ),
                ),
            ],
        )],
    ));
    f.ret(temp);
    f.finish().expect("symm is valid")
}

fn syrk() -> Function {
    let mut f = FunctionBuilder::new("pb_syrk");
    let alpha = f.param("alpha", ScalarType::i32());
    let beta = f.param("beta", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let cm = f.array_param("cm", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(acc, mul(v(beta), at(cm, idx2(i, j, N)))),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::assign(
                        acc,
                        add(v(acc), mul(mul(v(alpha), at(a, idx2(i, k, N))), at(a, idx2(j, k, N)))),
                    )],
                ),
                Stmt::store(cm, idx2(i, j, N), v(acc)),
            ],
        )],
    ));
    f.ret(acc);
    f.finish().expect("syrk is valid")
}

fn syr2k() -> Function {
    let mut f = FunctionBuilder::new("pb_syr2k");
    let alpha = f.param("alpha", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let cm = f.array_param("cm", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(acc, at(cm, idx2(i, j, N))),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::assign(
                        acc,
                        add(
                            v(acc),
                            add(
                                mul(mul(v(alpha), at(a, idx2(i, k, N))), at(b, idx2(j, k, N))),
                                mul(mul(v(alpha), at(b, idx2(i, k, N))), at(a, idx2(j, k, N))),
                            ),
                        ),
                    )],
                ),
                Stmt::store(cm, idx2(i, j, N), v(acc)),
            ],
        )],
    ));
    f.ret(acc);
    f.finish().expect("syr2k is valid")
}

fn trmm() -> Function {
    let mut f = FunctionBuilder::new("pb_trmm");
    let alpha = f.param("alpha", ScalarType::i32());
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(acc, at(b, idx2(i, j, N))),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::if_else(
                        gt(v(k), v(i)),
                        vec![Stmt::assign(
                            acc,
                            add(v(acc), mul(at(a, idx2(k, i, N)), at(b, idx2(k, j, N)))),
                        )],
                        vec![],
                    )],
                ),
                Stmt::store(b, idx2(i, j, N), mul(v(alpha), v(acc))),
            ],
        )],
    ));
    f.ret(acc);
    f.finish().expect("trmm is valid")
}

fn cholesky() -> Function {
    let mut f = FunctionBuilder::new("pb_cholesky");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::if_else(
                    lt(v(j), v(i)),
                    vec![
                        Stmt::assign(acc, at(a, idx2(i, j, N))),
                        Stmt::for_loop(
                            k,
                            0,
                            N,
                            1,
                            vec![Stmt::if_else(
                                lt(v(k), v(j)),
                                vec![Stmt::assign(
                                    acc,
                                    sub(v(acc), mul(at(a, idx2(i, k, N)), at(a, idx2(j, k, N)))),
                                )],
                                vec![],
                            )],
                        ),
                        Stmt::store(a, idx2(i, j, N), div(v(acc), add(at(a, idx2(j, j, N)), c(1)))),
                    ],
                    vec![],
                )],
            ),
            Stmt::assign(acc, at(a, idx2(i, i, N))),
            Stmt::for_loop(
                k,
                0,
                N,
                1,
                vec![Stmt::if_else(
                    lt(v(k), v(i)),
                    vec![Stmt::assign(
                        acc,
                        sub(v(acc), mul(at(a, idx2(i, k, N)), at(a, idx2(i, k, N)))),
                    )],
                    vec![],
                )],
            ),
            Stmt::store(a, idx2(i, i, N), v(acc)),
        ],
    ));
    f.ret(acc);
    f.finish().expect("cholesky is valid")
}

fn durbin() -> Function {
    let mut f = FunctionBuilder::new("pb_durbin");
    let r = f.array_param("r", ArrayType::new(ScalarType::i32(), N as usize));
    let y = f.array_param("y", ArrayType::new(ScalarType::i32(), N as usize));
    let z = f.array_param("z", ArrayType::new(ScalarType::i32(), N as usize));
    let (k, i) = (f.local("k", ScalarType::i32()), f.local("i", ScalarType::i32()));
    let alpha = f.local("alpha", ScalarType::signed(64));
    let beta = f.local("beta", ScalarType::signed(64));
    let sum = f.local("sum", ScalarType::signed(64));
    f.assign(alpha, sub(c(0), at(r, c(0))));
    f.assign(beta, c(1 << 10));
    f.store(y, c(0), v(alpha));
    f.push(Stmt::for_loop(
        k,
        1,
        N,
        1,
        vec![
            Stmt::assign(beta, shr(mul(sub(c(1 << 10), mul(v(alpha), v(alpha))), v(beta)), c(10))),
            Stmt::assign(sum, c(0)),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::if_else(
                    lt(v(i), v(k)),
                    vec![Stmt::assign(
                        sum,
                        add(v(sum), mul(at(r, sub(sub(v(k), v(i)), c(1))), at(y, v(i)))),
                    )],
                    vec![],
                )],
            ),
            Stmt::assign(alpha, div(sub(c(0), add(at(r, v(k)), v(sum))), add(v(beta), c(1)))),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::if_else(
                    lt(v(i), v(k)),
                    vec![Stmt::store(
                        z,
                        v(i),
                        add(at(y, v(i)), mul(v(alpha), at(y, sub(sub(v(k), v(i)), c(1))))),
                    )],
                    vec![],
                )],
            ),
            Stmt::store(y, v(k), v(alpha)),
        ],
    ));
    f.ret(alpha);
    f.finish().expect("durbin is valid")
}

fn lu() -> Function {
    let mut f = FunctionBuilder::new("pb_lu");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![
                Stmt::assign(acc, at(a, idx2(i, j, N))),
                Stmt::for_loop(
                    k,
                    0,
                    N,
                    1,
                    vec![Stmt::if_else(
                        Expr::binary(
                            hls_ir::ast::BinaryOp::Lt,
                            v(k),
                            Expr::select(lt(v(i), v(j)), v(i), v(j)),
                        ),
                        vec![Stmt::assign(
                            acc,
                            sub(v(acc), mul(at(a, idx2(i, k, N)), at(a, idx2(k, j, N)))),
                        )],
                        vec![],
                    )],
                ),
                Stmt::if_else(
                    gt(v(i), v(j)),
                    vec![Stmt::store(
                        a,
                        idx2(i, j, N),
                        div(v(acc), add(at(a, idx2(j, j, N)), c(1))),
                    )],
                    vec![Stmt::store(a, idx2(i, j, N), v(acc))],
                ),
            ],
        )],
    ));
    f.ret(acc);
    f.finish().expect("lu is valid")
}

fn trisolv() -> Function {
    let mut f = FunctionBuilder::new("pb_trisolv");
    let l = f.array_param("l", ArrayType::new(ScalarType::i32(), NN));
    let x = f.array_param("x", ArrayType::new(ScalarType::i32(), N as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, at(b, v(i))),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::if_else(
                    lt(v(j), v(i)),
                    vec![Stmt::assign(acc, sub(v(acc), mul(at(l, idx2(i, j, N)), at(x, v(j)))))],
                    vec![],
                )],
            ),
            Stmt::store(x, v(i), div(v(acc), add(at(l, idx2(i, i, N)), c(1)))),
        ],
    ));
    f.ret(acc);
    f.finish().expect("trisolv is valid")
}

fn jacobi_1d() -> Function {
    const LEN: i64 = 16;
    let mut f = FunctionBuilder::new("pb_jacobi_1d");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), LEN as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), LEN as usize));
    let (t, i) = (f.local("t", ScalarType::i32()), f.local("i", ScalarType::i32()));
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        t,
        0,
        4,
        1,
        vec![
            Stmt::for_loop(
                i,
                1,
                LEN - 1,
                1,
                vec![
                    Stmt::assign(
                        acc,
                        add(add(at(a, sub(v(i), c(1))), at(a, v(i))), at(a, add(v(i), c(1)))),
                    ),
                    Stmt::store(b, v(i), div(v(acc), c(3))),
                ],
            ),
            Stmt::for_loop(
                i,
                1,
                LEN - 1,
                1,
                vec![
                    Stmt::assign(
                        acc,
                        add(add(at(b, sub(v(i), c(1))), at(b, v(i))), at(b, add(v(i), c(1)))),
                    ),
                    Stmt::store(a, v(i), div(v(acc), c(3))),
                ],
            ),
        ],
    ));
    f.ret(acc);
    f.finish().expect("jacobi_1d is valid")
}

fn jacobi_2d() -> Function {
    let mut f = FunctionBuilder::new("pb_jacobi_2d");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), NN));
    let (t, i, j) = (
        f.local("t", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        t,
        0,
        2,
        1,
        vec![Stmt::for_loop(
            i,
            1,
            N - 1,
            1,
            vec![Stmt::for_loop(
                j,
                1,
                N - 1,
                1,
                vec![
                    Stmt::assign(
                        acc,
                        add(
                            add(at(a, idx2(i, j, N)), at(a, add(idx2(i, j, N), c(1)))),
                            add(
                                at(a, sub(idx2(i, j, N), c(1))),
                                add(
                                    at(a, add(idx2(i, j, N), c(N))),
                                    at(a, sub(idx2(i, j, N), c(N))),
                                ),
                            ),
                        ),
                    ),
                    Stmt::store(b, idx2(i, j, N), div(v(acc), c(5))),
                ],
            )],
        )],
    ));
    f.ret(acc);
    f.finish().expect("jacobi_2d is valid")
}

fn seidel_2d() -> Function {
    let mut f = FunctionBuilder::new("pb_seidel_2d");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let (t, i, j) = (
        f.local("t", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        t,
        0,
        2,
        1,
        vec![Stmt::for_loop(
            i,
            1,
            N - 1,
            1,
            vec![Stmt::for_loop(
                j,
                1,
                N - 1,
                1,
                vec![
                    Stmt::assign(
                        acc,
                        add(
                            add(
                                add(
                                    at(a, sub(idx2(i, j, N), c(N + 1))),
                                    at(a, sub(idx2(i, j, N), c(N))),
                                ),
                                add(at(a, sub(idx2(i, j, N), c(1))), at(a, idx2(i, j, N))),
                            ),
                            add(
                                at(a, add(idx2(i, j, N), c(1))),
                                add(
                                    at(a, add(idx2(i, j, N), c(N))),
                                    at(a, add(idx2(i, j, N), c(N + 1))),
                                ),
                            ),
                        ),
                    ),
                    Stmt::store(a, idx2(i, j, N), div(v(acc), c(7))),
                ],
            )],
        )],
    ));
    f.ret(acc);
    f.finish().expect("seidel_2d is valid")
}

fn fdtd_2d() -> Function {
    let mut f = FunctionBuilder::new("pb_fdtd_2d");
    let ex = f.array_param("ex", ArrayType::new(ScalarType::i32(), NN));
    let ey = f.array_param("ey", ArrayType::new(ScalarType::i32(), NN));
    let hz = f.array_param("hz", ArrayType::new(ScalarType::i32(), NN));
    let fict = f.array_param("fict", ArrayType::new(ScalarType::i32(), 4));
    let (t, i, j) = (
        f.local("t", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        t,
        0,
        2,
        1,
        vec![
            Stmt::for_loop(j, 0, N, 1, vec![Stmt::store(ey, v(j), at(fict, band(v(t), c(3))))]),
            Stmt::for_loop(
                i,
                1,
                N,
                1,
                vec![Stmt::for_loop(
                    j,
                    0,
                    N,
                    1,
                    vec![Stmt::store(
                        ey,
                        idx2(i, j, N),
                        sub(
                            at(ey, idx2(i, j, N)),
                            shr(sub(at(hz, idx2(i, j, N)), at(hz, sub(idx2(i, j, N), c(N)))), c(1)),
                        ),
                    )],
                )],
            ),
            Stmt::for_loop(
                i,
                0,
                N - 1,
                1,
                vec![Stmt::for_loop(
                    j,
                    0,
                    N - 1,
                    1,
                    vec![
                        Stmt::assign(
                            acc,
                            sub(
                                add(
                                    at(ex, add(idx2(i, j, N), c(1))),
                                    at(ey, add(idx2(i, j, N), c(N))),
                                ),
                                add(at(ex, idx2(i, j, N)), at(ey, idx2(i, j, N))),
                            ),
                        ),
                        Stmt::store(
                            hz,
                            idx2(i, j, N),
                            sub(at(hz, idx2(i, j, N)), shr(mul(c(7), v(acc)), c(3))),
                        ),
                    ],
                )],
            ),
        ],
    ));
    f.ret(acc);
    f.finish().expect("fdtd_2d is valid")
}

fn heat_3d() -> Function {
    const D: i64 = 4;
    let mut f = FunctionBuilder::new("pb_heat_3d");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), (D * D * D) as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::i32(), (D * D * D) as usize));
    let (t, i, j, k) = (
        f.local("t", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        t,
        0,
        2,
        1,
        vec![Stmt::for_loop(
            i,
            1,
            D - 1,
            1,
            vec![Stmt::for_loop(
                j,
                1,
                D - 1,
                1,
                vec![Stmt::for_loop(
                    k,
                    1,
                    D - 1,
                    1,
                    vec![
                        Stmt::assign(
                            acc,
                            add(
                                add(
                                    sub(
                                        at(a, add(idx3(i, j, k, D, D), c(D * D))),
                                        shl(at(a, idx3(i, j, k, D, D)), c(1)),
                                    ),
                                    at(a, sub(idx3(i, j, k, D, D), c(D * D))),
                                ),
                                add(
                                    sub(
                                        at(a, add(idx3(i, j, k, D, D), c(D))),
                                        at(a, sub(idx3(i, j, k, D, D), c(D))),
                                    ),
                                    sub(
                                        at(a, add(idx3(i, j, k, D, D), c(1))),
                                        at(a, sub(idx3(i, j, k, D, D), c(1))),
                                    ),
                                ),
                            ),
                        ),
                        Stmt::store(
                            b,
                            idx3(i, j, k, D, D),
                            add(at(a, idx3(i, j, k, D, D)), shr(v(acc), c(3))),
                        ),
                    ],
                )],
            )],
        )],
    ));
    f.ret(acc);
    f.finish().expect("heat_3d is valid")
}

fn adi_like() -> Function {
    let mut f = FunctionBuilder::new("pb_adi_like");
    let u = f.array_param("u", ArrayType::new(ScalarType::i32(), NN));
    let vv = f.array_param("vv", ArrayType::new(ScalarType::i32(), NN));
    let p = f.array_param("p", ArrayType::new(ScalarType::i32(), NN));
    let q = f.array_param("q", ArrayType::new(ScalarType::i32(), NN));
    let (t, i, j) = (
        f.local("t", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        t,
        0,
        2,
        1,
        vec![
            // Column sweep: forward substitution along each column.
            Stmt::for_loop(
                i,
                1,
                N - 1,
                1,
                vec![Stmt::for_loop(
                    j,
                    1,
                    N - 1,
                    1,
                    vec![
                        Stmt::store(
                            p,
                            idx2(i, j, N),
                            div(c(-1 << 8), add(at(p, sub(idx2(i, j, N), c(1))), c(3))),
                        ),
                        Stmt::assign(
                            acc,
                            sub(
                                add(at(u, sub(idx2(j, i, N), c(1))), at(u, idx2(j, i, N))),
                                at(q, sub(idx2(i, j, N), c(1))),
                            ),
                        ),
                        Stmt::store(
                            q,
                            idx2(i, j, N),
                            div(v(acc), add(at(p, sub(idx2(i, j, N), c(1))), c(3))),
                        ),
                    ],
                )],
            ),
            // Row sweep: back substitution.
            Stmt::for_loop(
                i,
                1,
                N - 1,
                1,
                vec![Stmt::for_loop(
                    j,
                    1,
                    N - 1,
                    1,
                    vec![Stmt::store(
                        vv,
                        idx2(i, j, N),
                        add(
                            mul(at(p, idx2(i, j, N)), at(vv, add(idx2(i, j, N), c(1)))),
                            at(q, idx2(i, j, N)),
                        ),
                    )],
                )],
            ),
        ],
    ));
    f.ret(acc);
    f.finish().expect("adi_like is valid")
}

fn gramschmidt() -> Function {
    let mut f = FunctionBuilder::new("pb_gramschmidt");
    let a = f.array_param("a", ArrayType::new(ScalarType::i32(), NN));
    let r = f.array_param("r", ArrayType::new(ScalarType::i32(), NN));
    let q = f.array_param("q", ArrayType::new(ScalarType::i32(), NN));
    let (k, i, j) = (
        f.local("k", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
    );
    let nrm = f.local("nrm", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        k,
        0,
        N,
        1,
        vec![
            Stmt::assign(nrm, c(0)),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::assign(
                    nrm,
                    add(v(nrm), mul(at(a, idx2(i, k, N)), at(a, idx2(i, k, N)))),
                )],
            ),
            Stmt::store(r, idx2(k, k, N), shr(v(nrm), c(4))),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::store(
                    q,
                    idx2(i, k, N),
                    div(at(a, idx2(i, k, N)), add(at(r, idx2(k, k, N)), c(1))),
                )],
            ),
            Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![Stmt::if_else(
                    gt(v(j), v(k)),
                    vec![
                        Stmt::assign(nrm, c(0)),
                        Stmt::for_loop(
                            i,
                            0,
                            N,
                            1,
                            vec![Stmt::assign(
                                nrm,
                                add(v(nrm), mul(at(q, idx2(i, k, N)), at(a, idx2(i, j, N)))),
                            )],
                        ),
                        Stmt::store(r, idx2(k, j, N), v(nrm)),
                        Stmt::for_loop(
                            i,
                            0,
                            N,
                            1,
                            vec![Stmt::store(
                                a,
                                idx2(i, j, N),
                                sub(
                                    at(a, idx2(i, j, N)),
                                    mul(at(q, idx2(i, k, N)), at(r, idx2(k, j, N))),
                                ),
                            )],
                        ),
                    ],
                    vec![],
                )],
            ),
        ],
    ));
    f.ret(nrm);
    f.finish().expect("gramschmidt is valid")
}

fn covariance() -> Function {
    let mut f = FunctionBuilder::new("pb_covariance");
    let data = f.array_param("data", ArrayType::new(ScalarType::i32(), NN));
    let cov = f.array_param("cov", ArrayType::new(ScalarType::i32(), NN));
    let mean = f.array_param("mean", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        j,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::assign(acc, add(v(acc), at(data, idx2(i, j, N))))],
            ),
            Stmt::store(mean, v(j), div(v(acc), c(N))),
        ],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![Stmt::store(data, idx2(i, j, N), sub(at(data, idx2(i, j, N)), at(mean, v(j))))],
        )],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![Stmt::if_else(
                gt(add(v(j), c(1)), v(i)),
                vec![
                    Stmt::assign(acc, c(0)),
                    Stmt::for_loop(
                        k,
                        0,
                        N,
                        1,
                        vec![Stmt::assign(
                            acc,
                            add(v(acc), mul(at(data, idx2(k, i, N)), at(data, idx2(k, j, N)))),
                        )],
                    ),
                    Stmt::store(cov, idx2(i, j, N), div(v(acc), c(N - 1))),
                    Stmt::store(cov, idx2(j, i, N), at(cov, idx2(i, j, N))),
                ],
                vec![],
            )],
        )],
    ));
    f.ret(acc);
    f.finish().expect("covariance is valid")
}

fn correlation() -> Function {
    let mut f = FunctionBuilder::new("pb_correlation");
    let data = f.array_param("data", ArrayType::new(ScalarType::i32(), NN));
    let corr = f.array_param("corr", ArrayType::new(ScalarType::i32(), NN));
    let mean = f.array_param("mean", ArrayType::new(ScalarType::i32(), N as usize));
    let stddev = f.array_param("stddev", ArrayType::new(ScalarType::i32(), N as usize));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let acc = f.local("acc", ScalarType::signed(64));
    f.push(Stmt::for_loop(
        j,
        0,
        N,
        1,
        vec![
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::assign(acc, add(v(acc), at(data, idx2(i, j, N))))],
            ),
            Stmt::store(mean, v(j), div(v(acc), c(N))),
            Stmt::assign(acc, c(0)),
            Stmt::for_loop(
                i,
                0,
                N,
                1,
                vec![Stmt::assign(
                    acc,
                    add(
                        v(acc),
                        mul(
                            sub(at(data, idx2(i, j, N)), at(mean, v(j))),
                            sub(at(data, idx2(i, j, N)), at(mean, v(j))),
                        ),
                    ),
                )],
            ),
            // Integer "sqrt" stand-in: a shift keeps the dataflow shape.
            Stmt::store(stddev, v(j), shr(v(acc), c(3))),
        ],
    ));
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![Stmt::if_else(
                gt(v(j), v(i)),
                vec![
                    Stmt::assign(acc, c(0)),
                    Stmt::for_loop(
                        k,
                        0,
                        N,
                        1,
                        vec![Stmt::assign(
                            acc,
                            add(
                                v(acc),
                                mul(
                                    sub(at(data, idx2(k, i, N)), at(mean, v(i))),
                                    sub(at(data, idx2(k, j, N)), at(mean, v(j))),
                                ),
                            ),
                        )],
                    ),
                    Stmt::store(
                        corr,
                        idx2(i, j, N),
                        div(v(acc), add(mul(at(stddev, v(i)), at(stddev, v(j))), c(1))),
                    ),
                ],
                vec![],
            )],
        )],
    ));
    f.ret(acc);
    f.finish().expect("correlation is valid")
}

fn floyd_warshall() -> Function {
    let mut f = FunctionBuilder::new("pb_floyd_warshall");
    let path = f.array_param("path", ArrayType::new(ScalarType::i32(), NN));
    let (k, i, j) = (
        f.local("k", ScalarType::i32()),
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
    );
    let through = f.local("through", ScalarType::i32());
    f.push(Stmt::for_loop(
        k,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            i,
            0,
            N,
            1,
            vec![Stmt::for_loop(
                j,
                0,
                N,
                1,
                vec![
                    Stmt::assign(through, add(at(path, idx2(i, k, N)), at(path, idx2(k, j, N)))),
                    Stmt::if_else(
                        lt(v(through), at(path, idx2(i, j, N))),
                        vec![Stmt::store(path, idx2(i, j, N), v(through))],
                        vec![],
                    ),
                ],
            )],
        )],
    ));
    f.ret(through);
    f.finish().expect("floyd_warshall is valid")
}

fn nussinov_like() -> Function {
    let mut f = FunctionBuilder::new("pb_nussinov_like");
    let seq = f.array_param("seq", ArrayType::new(ScalarType::i8(), N as usize));
    let table = f.array_param("table", ArrayType::new(ScalarType::i32(), NN));
    let (i, j, k) = (
        f.local("i", ScalarType::i32()),
        f.local("j", ScalarType::i32()),
        f.local("k", ScalarType::i32()),
    );
    let best = f.local("best", ScalarType::i32());
    let candidate = f.local("candidate", ScalarType::i32());
    f.push(Stmt::for_loop(
        i,
        0,
        N,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            N,
            1,
            vec![Stmt::if_else(
                gt(v(j), v(i)),
                vec![
                    Stmt::assign(best, at(table, sub(idx2(i, j, N), c(1)))),
                    Stmt::assign(
                        candidate,
                        add(
                            at(table, add(idx2(i, j, N), c(N))),
                            Expr::select(
                                Expr::binary(
                                    hls_ir::ast::BinaryOp::Eq,
                                    at(seq, v(i)),
                                    at(seq, v(j)),
                                ),
                                c(1),
                                c(0),
                            ),
                        ),
                    ),
                    Stmt::assign(best, maxe(v(best), v(candidate))),
                    Stmt::for_loop(
                        k,
                        0,
                        N,
                        1,
                        vec![Stmt::if_else(
                            Expr::binary(hls_ir::ast::BinaryOp::Lt, v(k), v(j)),
                            vec![
                                Stmt::assign(
                                    candidate,
                                    add(
                                        at(table, idx2(i, k, N)),
                                        at(table, add(mul(add(v(k), c(1)), c(N)), v(j))),
                                    ),
                                ),
                                Stmt::assign(best, maxe(v(best), v(candidate))),
                            ],
                            vec![],
                        )],
                    ),
                    Stmt::store(table, idx2(i, j, N), v(best)),
                ],
                vec![],
            )],
        )],
    ));
    f.ret(best);
    f.finish().expect("nussinov_like is valid")
}

fn deriche_row() -> Function {
    const W: i64 = 16;
    let mut f = FunctionBuilder::new("pb_deriche_row");
    let input = f.array_param("input", ArrayType::new(ScalarType::i16(), W as usize));
    let output = f.array_param("output", ArrayType::new(ScalarType::i32(), W as usize));
    let a1 = f.param("a1", ScalarType::i16());
    let a2 = f.param("a2", ScalarType::i16());
    let b1 = f.param("b1", ScalarType::i16());
    let b2 = f.param("b2", ScalarType::i16());
    let i = f.local("i", ScalarType::i32());
    let ym1 = f.local("ym1", ScalarType::signed(48));
    let ym2 = f.local("ym2", ScalarType::signed(48));
    let xm1 = f.local("xm1", ScalarType::signed(48));
    let y = f.local("y", ScalarType::signed(48));
    f.assign(ym1, c(0));
    f.assign(ym2, c(0));
    f.assign(xm1, c(0));
    f.push(Stmt::for_loop(
        i,
        0,
        W,
        1,
        vec![
            Stmt::assign(
                y,
                add(
                    add(mul(v(a1), at(input, v(i))), mul(v(a2), v(xm1))),
                    shr(add(mul(v(b1), v(ym1)), mul(v(b2), v(ym2))), c(8)),
                ),
            ),
            Stmt::assign(xm1, at(input, v(i))),
            Stmt::assign(ym2, v(ym1)),
            Stmt::assign(ym1, v(y)),
            Stmt::store(output, v(i), v(y)),
        ],
    ));
    f.ret(y);
    f.finish().expect("deriche_row is valid")
}
