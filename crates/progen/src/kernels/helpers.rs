//! Small expression combinators shared by the hand-written kernels.
//!
//! These keep the kernel builders readable: `idx2(i, j, N)` is the flattened
//! row-major index `i*N + j`, `v(x)` reads a scalar, `c(k)` is a constant.

use hls_ir::ast::{BinaryOp, Expr, VarId};

/// Scalar variable read.
pub(crate) fn v(x: VarId) -> Expr {
    Expr::var(x)
}

/// 32-bit constant.
pub(crate) fn c(value: i64) -> Expr {
    Expr::constant(value)
}

/// `a + b`.
pub(crate) fn add(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Add, a, b)
}

/// `a - b`.
pub(crate) fn sub(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Sub, a, b)
}

/// `a * b`.
pub(crate) fn mul(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Mul, a, b)
}

/// `a / b`.
pub(crate) fn div(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Div, a, b)
}

/// `a ^ b`.
pub(crate) fn xor(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Xor, a, b)
}

/// `a & b`.
pub(crate) fn band(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::And, a, b)
}

/// `a | b`.
pub(crate) fn bor(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Or, a, b)
}

/// `a << b`.
pub(crate) fn shl(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Shl, a, b)
}

/// `a >> b`.
pub(crate) fn shr(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Shr, a, b)
}

/// `a > b` (1-bit result).
pub(crate) fn gt(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Gt, a, b)
}

/// `a < b` (1-bit result).
pub(crate) fn lt(a: Expr, b: Expr) -> Expr {
    Expr::binary(BinaryOp::Lt, a, b)
}

/// Row-major index `i*n + j` with two induction variables.
pub(crate) fn idx2(i: VarId, j: VarId, n: i64) -> Expr {
    add(mul(v(i), c(n)), v(j))
}

/// Row-major index `i*n + j` where `j` is a constant offset.
pub(crate) fn idx2c(i: VarId, j: i64, n: i64) -> Expr {
    add(mul(v(i), c(n)), c(j))
}

/// Row-major 3-D index `i*n*m + j*m + k`.
pub(crate) fn idx3(i: VarId, j: VarId, k: VarId, n: i64, m: i64) -> Expr {
    add(add(mul(v(i), c(n * m)), mul(v(j), c(m))), v(k))
}

/// `max(a, b)` built from a compare + select, as HLS front ends emit it.
pub(crate) fn maxe(a: Expr, b: Expr) -> Expr {
    Expr::select(gt(a.clone(), b.clone()), a, b)
}

/// Element read `arr[index]`.
pub(crate) fn at(arr: VarId, index: Expr) -> Expr {
    Expr::index(arr, index)
}
