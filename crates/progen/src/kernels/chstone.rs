//! CHStone-like fixed-point media, crypto and processor kernels.
//!
//! CHStone programs are integer-heavy (soft-float arithmetic, ADPCM/GSM codecs,
//! SHA/AES/Blowfish rounds, a MIPS interpreter loop); each analogue below keeps
//! the characteristic operation mix — wide multiplies, shifts, table lookups,
//! and data-dependent branching — at a reduced problem size.

use hls_ir::ast::{BinaryOp, Expr, Function, FunctionBuilder, Stmt};
use hls_ir::types::{ArrayType, ScalarType};

use super::helpers::*;

/// All CHStone-like kernels as `(name, function)` pairs.
pub(crate) fn kernels() -> Vec<(&'static str, Function)> {
    vec![
        ("ch_adpcm_quantize", adpcm_quantize()),
        ("ch_gsm_lar", gsm_lar()),
        ("ch_sha_round", sha_round()),
        ("ch_mips_alu", mips_alu()),
        ("ch_motion_comp", motion_comp()),
        ("ch_dfmul_mantissa", dfmul_mantissa()),
        ("ch_dfadd_align", dfadd_align()),
        ("ch_blowfish_round", blowfish_round()),
        ("ch_jpeg_idct_row", jpeg_idct_row()),
        ("ch_aes_mixcolumn", aes_mixcolumn()),
    ]
}

fn adpcm_quantize() -> Function {
    const SAMPLES: i64 = 16;
    let mut f = FunctionBuilder::new("ch_adpcm_quantize");
    let input = f.array_param("input", ArrayType::new(ScalarType::i16(), SAMPLES as usize));
    let output = f.array_param("output", ArrayType::new(ScalarType::i8(), SAMPLES as usize));
    let step_table = f.array_param("step_table", ArrayType::new(ScalarType::i16(), 16));
    let i = f.local("i", ScalarType::i32());
    let step = f.local("step", ScalarType::i32());
    let diff = f.local("diff", ScalarType::i32());
    let code = f.local("code", ScalarType::i32());
    let predicted = f.local("predicted", ScalarType::i32());
    f.assign(predicted, c(0));
    f.assign(step, c(7));
    f.push(Stmt::for_loop(
        i,
        0,
        SAMPLES,
        1,
        vec![
            Stmt::assign(diff, sub(at(input, v(i)), v(predicted))),
            Stmt::assign(code, c(0)),
            Stmt::if_else(
                lt(v(diff), c(0)),
                vec![Stmt::assign(code, c(8)), Stmt::assign(diff, sub(c(0), v(diff)))],
                vec![],
            ),
            Stmt::if_else(
                Expr::binary(BinaryOp::Ge, v(diff), v(step)),
                vec![
                    Stmt::assign(code, bor(v(code), c(4))),
                    Stmt::assign(diff, sub(v(diff), v(step))),
                ],
                vec![],
            ),
            Stmt::if_else(
                Expr::binary(BinaryOp::Ge, shl(v(diff), c(1)), v(step)),
                vec![Stmt::assign(code, bor(v(code), c(2)))],
                vec![],
            ),
            Stmt::assign(predicted, add(v(predicted), shr(mul(v(code), v(step)), c(2)))),
            Stmt::assign(step, at(step_table, band(v(code), c(15)))),
            Stmt::store(output, v(i), v(code)),
        ],
    ));
    f.ret(predicted);
    f.finish().expect("adpcm_quantize is valid")
}

fn gsm_lar() -> Function {
    const COEFFS: i64 = 8;
    let mut f = FunctionBuilder::new("ch_gsm_lar");
    let reflection =
        f.array_param("reflection", ArrayType::new(ScalarType::i16(), COEFFS as usize));
    let lar = f.array_param("lar", ArrayType::new(ScalarType::i16(), COEFFS as usize));
    let i = f.local("i", ScalarType::i32());
    let temp = f.local("temp", ScalarType::i32());
    let absolute = f.local("absolute", ScalarType::i32());
    f.push(Stmt::for_loop(
        i,
        0,
        COEFFS,
        1,
        vec![
            Stmt::assign(temp, at(reflection, v(i))),
            Stmt::assign(absolute, Expr::select(lt(v(temp), c(0)), sub(c(0), v(temp)), v(temp))),
            Stmt::if_else(
                lt(v(absolute), c(22118)),
                vec![Stmt::assign(temp, shr(v(absolute), c(1)))],
                vec![Stmt::if_else(
                    lt(v(absolute), c(31130)),
                    vec![Stmt::assign(temp, sub(v(absolute), c(11059)))],
                    vec![Stmt::assign(temp, add(shr(v(absolute), c(2)), c(15565)))],
                )],
            ),
            Stmt::store(
                lar,
                v(i),
                Expr::select(lt(at(reflection, v(i)), c(0)), sub(c(0), v(temp)), v(temp)),
            ),
        ],
    ));
    f.ret(temp);
    f.finish().expect("gsm_lar is valid")
}

fn sha_round() -> Function {
    const WORDS: i64 = 16;
    let mut f = FunctionBuilder::new("ch_sha_round");
    let w = f.array_param("w", ArrayType::new(ScalarType::u32(), (WORDS * 5) as usize));
    let digest = f.array_param("digest", ArrayType::new(ScalarType::u32(), 5));
    let t = f.local("t", ScalarType::i32());
    let (a, b, e) = (
        f.local("a", ScalarType::u32()),
        f.local("b", ScalarType::u32()),
        f.local("e", ScalarType::u32()),
    );
    let temp = f.local("temp", ScalarType::u32());
    let func = f.local("func", ScalarType::u32());
    f.assign(a, at(digest, c(0)));
    f.assign(b, at(digest, c(1)));
    f.assign(e, at(digest, c(4)));
    f.push(Stmt::for_loop(
        t,
        0,
        WORDS,
        1,
        vec![
            // Word expansion: w[t] = rotl1(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16]).
            Stmt::assign(
                temp,
                xor(
                    xor(at(w, add(v(t), c(13))), at(w, add(v(t), c(8)))),
                    xor(at(w, add(v(t), c(2))), at(w, v(t))),
                ),
            ),
            Stmt::store(w, add(v(t), c(16)), bor(shl(v(temp), c(1)), shr(v(temp), c(31)))),
            // Round function (ch variant) and state rotation.
            Stmt::assign(
                func,
                bor(band(v(b), v(a)), band(Expr::unary(hls_ir::ast::UnaryOp::Not, v(b)), v(e))),
            ),
            Stmt::assign(
                temp,
                add(
                    add(bor(shl(v(a), c(5)), shr(v(a), c(27))), v(func)),
                    add(v(e), at(w, add(v(t), c(16)))),
                ),
            ),
            Stmt::assign(e, v(b)),
            Stmt::assign(b, bor(shl(v(a), c(30)), shr(v(a), c(2)))),
            Stmt::assign(a, v(temp)),
        ],
    ));
    f.store(digest, c(0), v(a));
    f.ret(a);
    f.finish().expect("sha_round is valid")
}

fn mips_alu() -> Function {
    const INSNS: i64 = 16;
    let mut f = FunctionBuilder::new("ch_mips_alu");
    let imem = f.array_param("imem", ArrayType::new(ScalarType::u32(), INSNS as usize));
    let regs = f.array_param("regs", ArrayType::new(ScalarType::i32(), 16));
    let pc = f.local("pc", ScalarType::i32());
    let insn = f.local("insn", ScalarType::u32());
    let opcode = f.local("opcode", ScalarType::u32());
    let (rs, rt) = (f.local("rs", ScalarType::i32()), f.local("rt", ScalarType::i32()));
    let result = f.local("result", ScalarType::i32());
    f.push(Stmt::for_loop(
        pc,
        0,
        INSNS,
        1,
        vec![
            Stmt::assign(insn, at(imem, v(pc))),
            Stmt::assign(opcode, band(shr(v(insn), c(26)), c(0x3f))),
            Stmt::assign(rs, at(regs, band(shr(v(insn), c(21)), c(15)))),
            Stmt::assign(rt, at(regs, band(shr(v(insn), c(16)), c(15)))),
            Stmt::if_else(
                Expr::binary(BinaryOp::Eq, v(opcode), c(0)),
                vec![Stmt::assign(result, add(v(rs), v(rt)))],
                vec![Stmt::if_else(
                    Expr::binary(BinaryOp::Eq, v(opcode), c(1)),
                    vec![Stmt::assign(result, sub(v(rs), v(rt)))],
                    vec![Stmt::if_else(
                        Expr::binary(BinaryOp::Eq, v(opcode), c(2)),
                        vec![Stmt::assign(result, band(v(rs), v(rt)))],
                        vec![Stmt::if_else(
                            Expr::binary(BinaryOp::Eq, v(opcode), c(3)),
                            vec![Stmt::assign(result, bor(v(rs), v(rt)))],
                            vec![Stmt::assign(result, Expr::select(lt(v(rs), v(rt)), c(1), c(0)))],
                        )],
                    )],
                )],
            ),
            Stmt::store(regs, band(shr(v(insn), c(11)), c(15)), v(result)),
        ],
    ));
    f.ret(result);
    f.finish().expect("mips_alu is valid")
}

fn motion_comp() -> Function {
    const BLOCK: i64 = 8;
    let mut f = FunctionBuilder::new("ch_motion_comp");
    let reference = f.array_param(
        "reference",
        ArrayType::new(ScalarType::unsigned(8), (BLOCK * BLOCK) as usize),
    );
    let current =
        f.array_param("current", ArrayType::new(ScalarType::unsigned(8), (BLOCK * BLOCK) as usize));
    let (i, j) = (f.local("i", ScalarType::i32()), f.local("j", ScalarType::i32()));
    let diff = f.local("diff", ScalarType::i32());
    let sad = f.local("sad", ScalarType::i32());
    f.assign(sad, c(0));
    f.push(Stmt::for_loop(
        i,
        0,
        BLOCK,
        1,
        vec![Stmt::for_loop(
            j,
            0,
            BLOCK,
            1,
            vec![
                Stmt::assign(
                    diff,
                    sub(at(current, idx2(i, j, BLOCK)), at(reference, idx2(i, j, BLOCK))),
                ),
                Stmt::assign(
                    sad,
                    add(v(sad), Expr::select(lt(v(diff), c(0)), sub(c(0), v(diff)), v(diff))),
                ),
            ],
        )],
    ));
    f.ret(sad);
    f.finish().expect("motion_comp is valid")
}

fn dfmul_mantissa() -> Function {
    const PAIRS: i64 = 8;
    let mut f = FunctionBuilder::new("ch_dfmul_mantissa");
    let a = f.array_param("a", ArrayType::new(ScalarType::unsigned(64), PAIRS as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::unsigned(64), PAIRS as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::unsigned(64), PAIRS as usize));
    let i = f.local("i", ScalarType::i32());
    let mant_a = f.local("mant_a", ScalarType::unsigned(64));
    let mant_b = f.local("mant_b", ScalarType::unsigned(64));
    let exp = f.local("exp", ScalarType::i32());
    let product = f.local("product", ScalarType::unsigned(128));
    f.push(Stmt::for_loop(
        i,
        0,
        PAIRS,
        1,
        vec![
            Stmt::assign(mant_a, bor(band(at(a, v(i)), c(0xfffff)), c(1 << 20))),
            Stmt::assign(mant_b, bor(band(at(b, v(i)), c(0xfffff)), c(1 << 20))),
            Stmt::assign(
                exp,
                sub(
                    add(
                        band(shr(at(a, v(i)), c(52)), c(0x7ff)),
                        band(shr(at(b, v(i)), c(52)), c(0x7ff)),
                    ),
                    c(1023),
                ),
            ),
            Stmt::assign(product, mul(v(mant_a), v(mant_b))),
            Stmt::if_else(
                gt(shr(v(product), c(41)), c(0)),
                vec![
                    Stmt::assign(product, shr(v(product), c(1))),
                    Stmt::assign(exp, add(v(exp), c(1))),
                ],
                vec![],
            ),
            Stmt::store(out, v(i), bor(shl(v(exp), c(52)), band(v(product), c(0xfffff)))),
        ],
    ));
    f.ret(exp);
    f.finish().expect("dfmul_mantissa is valid")
}

fn dfadd_align() -> Function {
    const PAIRS: i64 = 8;
    let mut f = FunctionBuilder::new("ch_dfadd_align");
    let a = f.array_param("a", ArrayType::new(ScalarType::unsigned(64), PAIRS as usize));
    let b = f.array_param("b", ArrayType::new(ScalarType::unsigned(64), PAIRS as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::unsigned(64), PAIRS as usize));
    let i = f.local("i", ScalarType::i32());
    let (exp_a, exp_b) = (f.local("exp_a", ScalarType::i32()), f.local("exp_b", ScalarType::i32()));
    let (mant_a, mant_b) =
        (f.local("mant_a", ScalarType::unsigned(64)), f.local("mant_b", ScalarType::unsigned(64)));
    let shift = f.local("shift", ScalarType::i32());
    let sum = f.local("sum", ScalarType::unsigned(64));
    f.push(Stmt::for_loop(
        i,
        0,
        PAIRS,
        1,
        vec![
            Stmt::assign(exp_a, band(shr(at(a, v(i)), c(52)), c(0x7ff))),
            Stmt::assign(exp_b, band(shr(at(b, v(i)), c(52)), c(0x7ff))),
            Stmt::assign(mant_a, band(at(a, v(i)), c(0xfffff))),
            Stmt::assign(mant_b, band(at(b, v(i)), c(0xfffff))),
            Stmt::if_else(
                gt(v(exp_a), v(exp_b)),
                vec![
                    Stmt::assign(shift, sub(v(exp_a), v(exp_b))),
                    Stmt::assign(mant_b, shr(v(mant_b), band(v(shift), c(63)))),
                ],
                vec![
                    Stmt::assign(shift, sub(v(exp_b), v(exp_a))),
                    Stmt::assign(mant_a, shr(v(mant_a), band(v(shift), c(63)))),
                    Stmt::assign(exp_a, v(exp_b)),
                ],
            ),
            Stmt::assign(sum, add(v(mant_a), v(mant_b))),
            Stmt::if_else(
                gt(shr(v(sum), c(21)), c(0)),
                vec![
                    Stmt::assign(sum, shr(v(sum), c(1))),
                    Stmt::assign(exp_a, add(v(exp_a), c(1))),
                ],
                vec![],
            ),
            Stmt::store(out, v(i), bor(shl(v(exp_a), c(52)), v(sum))),
        ],
    ));
    f.ret(exp_a);
    f.finish().expect("dfadd_align is valid")
}

fn blowfish_round() -> Function {
    const ROUNDS: i64 = 16;
    let mut f = FunctionBuilder::new("ch_blowfish_round");
    let p = f.array_param("p", ArrayType::new(ScalarType::u32(), (ROUNDS + 2) as usize));
    let sbox = f.array_param("sbox", ArrayType::new(ScalarType::u32(), 256));
    let left_in = f.param("left_in", ScalarType::u32());
    let right_in = f.param("right_in", ScalarType::u32());
    let r = f.local("r", ScalarType::i32());
    let (left, right) = (f.local("left", ScalarType::u32()), f.local("right", ScalarType::u32()));
    let feistel = f.local("feistel", ScalarType::u32());
    let swap = f.local("swap", ScalarType::u32());
    f.assign(left, v(left_in));
    f.assign(right, v(right_in));
    f.push(Stmt::for_loop(
        r,
        0,
        ROUNDS,
        1,
        vec![
            Stmt::assign(left, xor(v(left), at(p, v(r)))),
            Stmt::assign(
                feistel,
                xor(
                    add(
                        at(sbox, band(shr(v(left), c(24)), c(255))),
                        at(sbox, band(shr(v(left), c(16)), c(255))),
                    ),
                    add(
                        at(sbox, band(shr(v(left), c(8)), c(255))),
                        at(sbox, band(v(left), c(255))),
                    ),
                ),
            ),
            Stmt::assign(right, xor(v(right), v(feistel))),
            Stmt::assign(swap, v(left)),
            Stmt::assign(left, v(right)),
            Stmt::assign(right, v(swap)),
        ],
    ));
    f.ret_expr(xor(v(left), v(right)));
    f.finish().expect("blowfish_round is valid")
}

fn jpeg_idct_row() -> Function {
    const ROWS: i64 = 8;
    let mut f = FunctionBuilder::new("ch_jpeg_idct_row");
    let block = f.array_param("block", ArrayType::new(ScalarType::i16(), (ROWS * 8) as usize));
    let out = f.array_param("out", ArrayType::new(ScalarType::i16(), (ROWS * 8) as usize));
    let row = f.local("row", ScalarType::i32());
    let (x0, x1, x2, x3) = (
        f.local("x0", ScalarType::i32()),
        f.local("x1", ScalarType::i32()),
        f.local("x2", ScalarType::i32()),
        f.local("x3", ScalarType::i32()),
    );
    let (t0, t1) = (f.local("t0", ScalarType::i32()), f.local("t1", ScalarType::i32()));
    f.push(Stmt::for_loop(
        row,
        0,
        ROWS,
        1,
        vec![
            Stmt::assign(x0, shl(at(block, idx2c(row, 0, 8)), c(11))),
            Stmt::assign(x1, at(block, idx2c(row, 4, 8))),
            Stmt::assign(x2, at(block, idx2c(row, 6, 8))),
            Stmt::assign(x3, at(block, idx2c(row, 2, 8))),
            Stmt::assign(t0, add(mul(c(565), add(v(x2), v(x3))), mul(c(2276), v(x3)))),
            Stmt::assign(t1, sub(mul(c(2408), v(x1)), mul(c(799), v(x2)))),
            Stmt::store(out, idx2c(row, 0, 8), shr(add(add(v(x0), v(t0)), v(t1)), c(8))),
            Stmt::store(out, idx2c(row, 7, 8), shr(sub(add(v(x0), v(t0)), v(t1)), c(8))),
        ],
    ));
    f.ret(t0);
    f.finish().expect("jpeg_idct_row is valid")
}

fn aes_mixcolumn() -> Function {
    let mut f = FunctionBuilder::new("ch_aes_mixcolumn");
    let state = f.array_param("state", ArrayType::new(ScalarType::unsigned(8), 16));
    let col = f.local("col", ScalarType::i32());
    let (a0, a1) = (f.local("a0", ScalarType::unsigned(8)), f.local("a1", ScalarType::unsigned(8)));
    let doubled = f.local("doubled", ScalarType::unsigned(8));
    let mixed = f.local("mixed", ScalarType::unsigned(8));
    f.push(Stmt::for_loop(
        col,
        0,
        4,
        1,
        vec![
            Stmt::assign(a0, at(state, mul(v(col), c(4)))),
            Stmt::assign(a1, at(state, add(mul(v(col), c(4)), c(1)))),
            // xtime(a0): double in GF(2^8) with conditional reduction.
            Stmt::assign(doubled, band(shl(v(a0), c(1)), c(255))),
            Stmt::if_else(
                Expr::binary(BinaryOp::Ge, v(a0), c(128)),
                vec![Stmt::assign(doubled, xor(v(doubled), c(0x1b)))],
                vec![],
            ),
            Stmt::assign(
                mixed,
                xor(xor(v(doubled), v(a1)), at(state, add(mul(v(col), c(4)), c(2)))),
            ),
            Stmt::store(state, mul(v(col), c(4)), v(mixed)),
        ],
    ));
    f.ret(mixed);
    f.finish().expect("aes_mixcolumn is valid")
}
