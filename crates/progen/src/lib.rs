//! `hls-progen` — program corpus for the HLS-GNN benchmark.
//!
//! The paper builds its 40k-program benchmark from two sources:
//!
//! 1. **Synthetic programs** generated with `ldrgen`, split into straight-line
//!    basic blocks (which lower to DFGs) and programs with loops/branches
//!    (which lower to CDFGs). This crate's [`synthetic`] module is the
//!    `ldrgen` substitute: a seeded random generator over the `hls-ir` AST.
//! 2. **Real-world HLS applications** from MachSuite, CHStone and
//!    PolyBench/C, used exclusively for generalisation evaluation. The
//!    [`kernels`] module contains hand-written kernels that mirror the loop
//!    and arithmetic structure of those suites.
//!
//! # Example
//!
//! ```
//! use hls_progen::synthetic::{ProgramFamily, ProgramGenerator, SyntheticConfig};
//!
//! let config = SyntheticConfig::straight_line();
//! let mut generator = ProgramGenerator::new(config, 42);
//! let programs = generator.generate_many(10);
//! assert_eq!(programs.len(), 10);
//! assert!(programs.iter().all(|p| !p.has_control_flow()));
//! assert_eq!(ProgramFamily::StraightLine.graph_kind(), hls_ir::GraphKind::Dfg);
//! ```

pub mod kernels;
pub mod synthetic;

pub use kernels::{all_kernels, Kernel, Suite};
pub use synthetic::{ProgramFamily, ProgramGenerator, SyntheticConfig};
