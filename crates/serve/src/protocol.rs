//! Wire types of the prediction service.
//!
//! Requests and responses are plain JSON. A prediction request carries
//! *either* a serialised graph in the benchmark release format
//! ([`ExportedGraph`], the same schema `export_dataset` writes) *or* the name
//! of a built-in real-world kernel from `hls-progen` (e.g. `"ms_gemm"`),
//! which the service lowers through the HLS flow on first use and then
//! memoises. Responses echo the design name and report the raw
//! `[DSP, LUT, FF, CP]` prediction plus serving metadata (cache hit,
//! coalesced batch size, latency).

use serde::{Deserialize, Serialize};

use hls_gnn_core::dataset::GraphSample;
use hls_gnn_core::export::ExportedGraph;
use hls_gnn_core::task::TargetMetric;

use crate::reqlog::RequestRecord;

/// A prediction request: exactly one of `graph` / `kernel` must be present.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictRequest {
    /// A full graph in the benchmark release format.
    pub graph: Option<ExportedGraph>,
    /// The name of a built-in real-world kernel (MachSuite / CHStone /
    /// PolyBench analogue).
    pub kernel: Option<String>,
}

impl PredictRequest {
    /// A request carrying the given sample as a serialised graph.
    pub fn for_sample(sample: &GraphSample) -> Self {
        PredictRequest { graph: Some(ExportedGraph::from(sample)), kernel: None }
    }

    /// A request naming a built-in kernel.
    pub fn for_kernel(name: impl Into<String>) -> Self {
        PredictRequest { graph: None, kernel: Some(name.into()) }
    }
}

/// A successful prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// The design name (echoed from the graph, or the kernel name).
    pub name: String,
    /// The server-assigned monotonic request id — the same id the access
    /// log and `/debug/slow` report, for correlating a reply with the
    /// server-side records of how it was computed.
    pub request_id: u64,
    /// Raw `[DSP, LUT, FF, CP]` prediction — bit-identical to what
    /// `Predictor::predict_batch` returns for the same graph in-process.
    pub prediction: [f64; TargetMetric::COUNT],
    /// True when the prediction came from the cache.
    pub cached: bool,
    /// How many requests shared the fused micro-batch that computed this
    /// prediction (0 for cache hits — nothing was computed).
    pub coalesced: usize,
    /// Server-side latency in microseconds, from admission to completion.
    pub latency_us: u64,
}

/// A JSON error body (sent with 4xx/5xx statuses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Human-readable description.
    pub error: String,
}

/// Cache section of [`StatsResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStatsBody {
    /// Configured capacity (0 = disabled).
    pub capacity: usize,
    /// Entries currently cached.
    pub entries: usize,
    /// Lookup hits.
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// Evictions.
    pub evictions: u64,
}

/// Latency section of [`StatsResponse`], read from the service's
/// `hlsgnn_serve_latency_us` registry histogram (the same series `/metrics`
/// exposes, so the two endpoints cannot disagree). Percentiles are bucketed:
/// each reads as the upper bound of its log-linear bucket (within ~25%),
/// clamped to the exact observed maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyStatsBody {
    /// Requests the percentiles are computed over — every request ever
    /// served, not a sliding window.
    pub window: usize,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst latency observed, microseconds.
    pub max_us: u64,
}

/// The `/stats` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Model name in paper notation (e.g. `"RGCN-I"`).
    pub model: String,
    /// Canonical spec id (e.g. `"hier/rgcn"`).
    pub spec: String,
    /// Worker threads.
    pub workers: usize,
    /// Maximum requests coalesced into one micro-batch.
    pub coalesce_width: usize,
    /// Per-tape node budget the coalescer respects.
    pub node_budget: usize,
    /// Requests currently waiting in the queue.
    pub queue_depth: usize,
    /// Queue admission bound.
    pub queue_bound: usize,
    /// Total requests admitted (including cache hits, excluding shed).
    pub requests: u64,
    /// Requests answered successfully.
    pub served: u64,
    /// Requests shed with 503 at the admission bound.
    pub shed: u64,
    /// Requests that failed in the model.
    pub errors: u64,
    /// Requests at or above the slow-request threshold (lifetime count;
    /// `GET /debug/slow` retains the most recent of them).
    pub slow: u64,
    /// Prediction-cache counters.
    pub cache: CacheStatsBody,
    /// Recent-latency summary.
    pub latency: LatencyStatsBody,
}

/// One slow (or otherwise retained) request in the `/debug/slow` document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowRequestBody {
    /// Monotonic request id (matches [`PredictResponse::request_id`] and the
    /// access log).
    pub id: u64,
    /// `served`, `cache_hit`, `shed` or `error`.
    pub outcome: String,
    /// Position inside the fused micro-batch (0 for cache hits and shed).
    pub batch_index: usize,
    /// Requests sharing that micro-batch (0 for cache hits and shed).
    pub coalesced: usize,
    /// Admission to worker pick-up, microseconds.
    pub queue_wait_us: u64,
    /// Worker pick-up to reply, microseconds.
    pub service_us: u64,
    /// End-to-end latency, microseconds.
    pub latency_us: u64,
}

impl From<&RequestRecord> for SlowRequestBody {
    fn from(record: &RequestRecord) -> Self {
        SlowRequestBody {
            id: record.id,
            outcome: record.outcome.name().to_owned(),
            batch_index: record.batch_index,
            coalesced: record.coalesced,
            queue_wait_us: record.queue_wait_us,
            service_us: record.service_us,
            latency_us: record.latency_us,
        }
    }
}

/// The `GET /debug/slow` document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowRequestsResponse {
    /// Latency threshold (microseconds) at or above which requests are
    /// retained here (`HLSGNN_SERVE_SLOW_US`).
    pub threshold_us: u64,
    /// Lifetime count of requests that crossed the threshold (the retained
    /// ring below is bounded; this is not).
    pub total: u64,
    /// The most recent slow requests, oldest first.
    pub requests: Vec<SlowRequestBody>,
}

impl SlowRequestsResponse {
    /// Builds the document from the slow ring's contents.
    pub fn new(threshold_us: u64, total: u64, records: &[RequestRecord]) -> Self {
        SlowRequestsResponse {
            threshold_us,
            total,
            requests: records.iter().map(SlowRequestBody::from).collect(),
        }
    }
}
