//! `hls-gnn-serve` — a dependency-free prediction service over trained
//! HLS-GNN predictors.
//!
//! The paper's end goal is scoring thousands of candidate designs inside a
//! design-space-exploration loop; this crate puts a trained model behind a
//! request/response boundary so any process can do that over HTTP. The whole
//! subsystem is std-only, consistent with the workspace's offline-shim
//! constraint.
//!
//! # Pieces
//!
//! * [`server`] — a [`std::net::TcpListener`]-based HTTP/1.1 frontend with a
//!   hand-rolled parser ([`http`]), accepting JSON prediction requests plus
//!   `/stats` (JSON) and `/metrics` (Prometheus-style text exposition backed
//!   by the [`hls_gnn_obs`] registry — `/stats` reads the very same metrics,
//!   so the two endpoints cannot disagree).
//! * [`queue`] — the bounded coalescing queue: concurrent in-flight requests
//!   are drained into one fused micro-batch, so serving amortises tape
//!   construction exactly like training does (PR 3's `GraphBatch` engine,
//!   including the `HLSGNN_BATCH_NODES` node budget). A full queue sheds
//!   requests with 503.
//! * [`service`] — the sharded worker pool behind the embeddable
//!   [`ServiceHandle`]: N thread-confined workers each rehydrate the model
//!   from a `SavedPredictor` snapshot (the autodiff engine's thread-local
//!   arena tape is `!Send`, so it never crosses threads) and pull
//!   micro-batches from the queue. Inference resets its tape after every
//!   batch, so a long-running worker stays at steady-state memory — the
//!   arenas are recycled, not reallocated, per request.
//! * [`cache`] — a bounded LRU prediction cache keyed by a canonical content
//!   fingerprint ([`fingerprint`], re-exported from
//!   [`hls_gnn_core::fingerprint`] — the same memoisation key the DSE
//!   engine uses) of the request graph, with hit/miss/eviction counters in
//!   `/stats`.
//! * [`reqlog`] — request-scoped tracing: every admitted request gets a
//!   monotonic id (echoed in the response, the access log and trace spans),
//!   resolves into a [`reqlog::RequestRecord`] decomposing its latency into
//!   queue wait and service time, and lands in bounded recent/slow rings —
//!   the slow ring is served at `GET /debug/slow`.
//! * [`client`] — a minimal blocking HTTP client for the load generator,
//!   tests and examples.
//!
//! Because inference is deterministic and fused inference is bit-identical
//! to per-sample inference, **served predictions are bit-identical to a
//! direct [`hls_gnn_core::Predictor::predict_batch`] call** on the same
//! graphs — for any worker count, any coalescing pattern, and with the cache
//! on or off.
//!
//! # In-process quick start
//!
//! ```
//! use hls_gnn_core::builder::PredictorBuilder;
//! use hls_gnn_core::dataset::DatasetBuilder;
//! use hls_gnn_core::predictor::Predictor;
//! use hls_gnn_core::train::TrainConfig;
//! use hls_gnn_serve::{ServeConfig, ServiceHandle};
//! use hls_progen::synthetic::{ProgramFamily, SyntheticConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
//!     .count(12)
//!     .seed(3)
//!     .generator_config(SyntheticConfig::tiny(ProgramFamily::StraightLine))
//!     .build()?;
//! let split = dataset.split(0.8, 0.1, 1);
//! let predictor = PredictorBuilder::parse("base/gcn")?
//!     .config(TrainConfig::fast())
//!     .train(&split.train, &split.validation)?;
//!
//! let config = ServeConfig { workers: 2, ..ServeConfig::default() };
//! let service = ServiceHandle::start(predictor.snapshot()?, &config)?;
//! let served = service.predict_sample(split.test.samples[0].clone())?;
//! assert_eq!(served.prediction, predictor.predict(&split.test.samples[0])?);
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod client;
pub mod fingerprint;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod reqlog;
pub mod server;
pub mod service;

pub use cache::{CacheCounters, PredictionCache};
pub use client::{HttpClient, HttpReply};
pub use fingerprint::{sample_fingerprint, Fingerprint};
pub use protocol::{
    ErrorResponse, PredictRequest, PredictResponse, SlowRequestsResponse, StatsResponse,
};
pub use queue::{CoalescingQueue, SubmitError};
pub use reqlog::{Outcome, RequestLog, RequestRecord};
pub use server::HttpServer;
pub use service::{ServeConfig, ServeError, Served, ServiceHandle};
