//! Request-scoped access logging: per-request records, a structured access
//! log on stderr, and bounded in-memory rings for `/debug/slow`.
//!
//! Every request admitted to the service gets a monotonic request id and,
//! when it resolves, a [`RequestRecord`] capturing where its latency went:
//! queue wait (admission to worker pick-up), service time (pick-up to
//! reply), its position and company inside the fused micro-batch, and the
//! outcome. Records land in two fixed-size rings — the most recent requests,
//! and requests slower than the configured threshold — so a stuck or slow
//! deployment can be diagnosed from `GET /debug/slow` without grepping logs.
//! The stderr access log (one line per request, `key=value` fields) is on by
//! default and switched off with `HLSGNN_SERVE_ACCESS_LOG=0`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Requests retained in the "most recent" ring.
pub const RECENT_CAPACITY: usize = 256;
/// Requests retained in the slow-request ring.
pub const SLOW_CAPACITY: usize = 64;

/// How a request left the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Computed in a fused micro-batch and answered.
    Served,
    /// Answered from the prediction cache without touching the queue.
    CacheHit,
    /// Refused at the admission bound with 503.
    Shed,
    /// Admitted, but the model failed on it.
    Error,
}

impl Outcome {
    /// Stable lower-snake name used in access-log lines and `/debug/slow`.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Served => "served",
            Outcome::CacheHit => "cache_hit",
            Outcome::Shed => "shed",
            Outcome::Error => "error",
        }
    }
}

/// One resolved request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// Monotonic request id, assigned at admission (1-based).
    pub id: u64,
    /// How the request resolved.
    pub outcome: Outcome,
    /// Position inside the fused micro-batch (0 for cache hits and shed).
    pub batch_index: usize,
    /// Requests sharing that micro-batch (0 for cache hits and shed).
    pub coalesced: usize,
    /// Admission to worker pick-up, microseconds.
    pub queue_wait_us: u64,
    /// Worker pick-up to reply, microseconds.
    pub service_us: u64,
    /// End-to-end admission-to-reply latency, microseconds.
    pub latency_us: u64,
}

struct Rings {
    recent: VecDeque<RequestRecord>,
    slow: VecDeque<RequestRecord>,
}

/// The per-service request log: bounded rings plus the stderr access log.
pub struct RequestLog {
    model: String,
    slow_threshold_us: u64,
    access_log: bool,
    rings: Mutex<Rings>,
}

impl RequestLog {
    /// A log for `model`, capturing requests at or above
    /// `slow_threshold_us` in the slow ring (a threshold of 0 captures
    /// everything — useful in tests).
    pub fn new(model: impl Into<String>, slow_threshold_us: u64, access_log: bool) -> Self {
        RequestLog {
            model: model.into(),
            slow_threshold_us,
            access_log,
            rings: Mutex::new(Rings {
                recent: VecDeque::with_capacity(RECENT_CAPACITY),
                slow: VecDeque::with_capacity(SLOW_CAPACITY),
            }),
        }
    }

    /// The slow-request latency threshold, microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us
    }

    /// Records one resolved request: the recent ring always, the slow ring
    /// when it crossed the threshold, one access-log line when logging is
    /// on. Returns whether the request counted as slow (the caller owns the
    /// `hlsgnn_serve_slow_total` counter).
    pub fn record(&self, record: RequestRecord) -> bool {
        if self.access_log {
            eprintln!(
                "hls-gnn-serve: access id={} model={} outcome={} batch_index={} coalesced={} \
                 queue_wait_us={} service_us={} latency_us={}",
                record.id,
                self.model,
                record.outcome.name(),
                record.batch_index,
                record.coalesced,
                record.queue_wait_us,
                record.service_us,
                record.latency_us,
            );
        }
        let slow = record.latency_us >= self.slow_threshold_us;
        let mut rings = self.rings.lock().expect("request-log lock");
        push_bounded(&mut rings.recent, record, RECENT_CAPACITY);
        if slow {
            push_bounded(&mut rings.slow, record, SLOW_CAPACITY);
        }
        slow
    }

    /// The most recent requests, oldest first.
    pub fn recent(&self) -> Vec<RequestRecord> {
        self.rings.lock().expect("request-log lock").recent.iter().copied().collect()
    }

    /// The retained slow requests, oldest first.
    pub fn slow(&self) -> Vec<RequestRecord> {
        self.rings.lock().expect("request-log lock").slow.iter().copied().collect()
    }
}

fn push_bounded(ring: &mut VecDeque<RequestRecord>, record: RequestRecord, capacity: usize) {
    if ring.len() == capacity {
        ring.pop_front();
    }
    ring.push_back(record);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, latency_us: u64) -> RequestRecord {
        RequestRecord {
            id,
            outcome: Outcome::Served,
            batch_index: 0,
            coalesced: 1,
            queue_wait_us: 0,
            service_us: latency_us,
            latency_us,
        }
    }

    #[test]
    fn rings_are_bounded_and_keep_the_newest() {
        let log = RequestLog::new("test", 0, false);
        for id in 1..=(RECENT_CAPACITY as u64 + 10) {
            log.record(record(id, 1));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), RECENT_CAPACITY);
        assert_eq!(recent.first().map(|r| r.id), Some(11));
        assert_eq!(recent.last().map(|r| r.id), Some(RECENT_CAPACITY as u64 + 10));
        let slow = log.slow();
        assert_eq!(slow.len(), SLOW_CAPACITY);
        assert_eq!(slow.last().map(|r| r.id), Some(RECENT_CAPACITY as u64 + 10));
    }

    #[test]
    fn slow_ring_applies_the_threshold() {
        let log = RequestLog::new("test", 100, false);
        assert!(!log.record(record(1, 99)));
        assert!(log.record(record(2, 100)));
        assert!(log.record(record(3, 250)));
        let slow = log.slow();
        assert_eq!(slow.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(log.recent().len(), 3);
    }

    #[test]
    fn outcome_names_are_stable() {
        let names: Vec<&str> = [Outcome::Served, Outcome::CacheHit, Outcome::Shed, Outcome::Error]
            .iter()
            .map(|outcome| outcome.name())
            .collect();
        assert_eq!(names, vec!["served", "cache_hit", "shed", "error"]);
    }
}
