//! A tiny blocking HTTP/1.1 client — enough for the load generator, the CI
//! smoke test and examples to talk to the server without external crates.
//!
//! Supports keep-alive: one [`HttpClient`] holds one connection and reuses it
//! across requests, reconnecting transparently if the server closed it.

use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpReply {
    /// Status code (200, 503, ...).
    pub status: u16,
    /// Body as text.
    pub body: String,
}

/// A keep-alive connection to one server.
pub struct HttpClient {
    addr: SocketAddr,
    connection: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// Creates a client for `addr`; connects lazily.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient { addr, connection: None }
    }

    /// `GET path`.
    ///
    /// # Errors
    /// Propagates connect/read/write failures.
    pub fn get(&mut self, path: &str) -> io::Result<HttpReply> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    /// Propagates connect/read/write failures.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<HttpReply> {
        self.request("POST", path, Some(body))
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.connection.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(Duration::from_secs(60)))?;
            stream.set_nodelay(true)?;
            self.connection = Some(BufReader::new(stream));
        }
        Ok(self.connection.as_mut().expect("just connected"))
    }

    fn request(&mut self, method: &str, path: &str, body: Option<&str>) -> io::Result<HttpReply> {
        // One transparent retry: a keep-alive peer may have closed the idle
        // connection between our requests.
        match self.request_once(method, path, body) {
            Ok(reply) => Ok(reply),
            Err(_) if self.connection.is_some() => {
                self.connection = None;
                self.request_once(method, path, body)
            }
            Err(error) => Err(error),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpReply> {
        let addr = self.addr;
        let reader = self.connect()?;
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n",
            payload.len()
        );
        {
            // Single write per request: see the NODELAY note in `connect`.
            let mut message = head.into_bytes();
            message.extend_from_slice(payload.as_bytes());
            let stream = reader.get_mut();
            stream.write_all(&message)?;
            stream.flush()?;
        }
        match read_reply(reader) {
            Ok((reply, close)) => {
                if close {
                    self.connection = None;
                }
                Ok(reply)
            }
            Err(error) => {
                self.connection = None;
                Err(error)
            }
        }
    }
}

/// Reads one response; the boolean reports whether the server asked to close
/// the connection afterwards.
fn read_reply(reader: &mut BufReader<TcpStream>) -> io::Result<(HttpReply, bool)> {
    let invalid = |message: &str| io::Error::new(io::ErrorKind::InvalidData, message.to_owned());
    let mut line = read_line(reader)?;
    let status: u16 = line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| invalid("malformed status line"))?;
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        if name == "content-length" {
            content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
        } else if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
    Ok((HttpReply { status, body }, close))
}

fn read_line(reader: &mut BufReader<TcpStream>) -> io::Result<String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        let read = reader.read(&mut byte)?;
        if read == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "connection closed"));
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 header"));
        }
        line.push(byte[0]);
        if line.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "header line too long"));
        }
    }
}
