//! `hls-gnn-serve` — serve a trained predictor over HTTP.
//!
//! ```text
//! hls-gnn-serve model.json       # serve a snapshot written by save_json()
//! hls-gnn-serve model.hgns       # or a binary snapshot from hls-gnn-pack
//! hls-gnn-serve --demo           # train a small demo model, then serve it
//! ```
//!
//! The snapshot format is sniffed from the file's magic bytes, so JSON and
//! binary snapshots are interchangeable here.
//!
//! Environment knobs: `HLSGNN_SERVE_HOST` / `HLSGNN_SERVE_PORT` (bind
//! address, default `127.0.0.1:7878`), `HLSGNN_SERVE_WORKERS`,
//! `HLSGNN_SERVE_CACHE`, `HLSGNN_SERVE_QUEUE`, `HLSGNN_SERVE_COALESCE`,
//! `HLSGNN_SERVE_SLOW_US` (slow-request threshold for `GET /debug/slow`),
//! `HLSGNN_SERVE_ACCESS_LOG` (0 silences the per-request stderr access
//! log), plus the engine-wide `HLSGNN_BATCH` / `HLSGNN_BATCH_NODES`.
//! `POST /shutdown` stops the server gracefully. On panic, the in-memory
//! flight recorder is dumped to stderr and `results/flightrec.json`.

use hls_gnn_core::builder::PredictorBuilder;
use hls_gnn_core::dataset::DatasetBuilder;
use hls_gnn_core::persist::SavedPredictor;
use hls_gnn_core::predictor::Predictor;
use hls_gnn_core::train::TrainConfig;
use hls_gnn_serve::{HttpServer, ServeConfig, ServiceHandle};
use hls_progen::synthetic::ProgramFamily;

fn fail(message: &str) -> ! {
    eprintln!("hls-gnn-serve: {message}");
    std::process::exit(2);
}

fn demo_snapshot() -> SavedPredictor {
    eprintln!("training a demo model (base/gcn, fast config) on a synthetic corpus ...");
    let dataset = DatasetBuilder::new(ProgramFamily::StraightLine)
        .count(24)
        .seed(7)
        .build()
        .unwrap_or_else(|error| fail(&format!("demo corpus failed: {error}")));
    let split = dataset.split(0.8, 0.1, 42);
    let predictor = PredictorBuilder::parse("base/gcn")
        .expect("demo spec parses")
        .config(TrainConfig::fast())
        .train(&split.train, &split.validation)
        .unwrap_or_else(|error| fail(&format!("demo training failed: {error}")));
    predictor.snapshot().unwrap_or_else(|error| fail(&format!("demo snapshot failed: {error}")))
}

fn main() {
    // Keep the last moments of every thread: on panic, the flight recorder
    // dumps its per-thread span rings to stderr and this file.
    hls_gnn_obs::install_panic_hook("results/flightrec.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let snapshot = match args.as_slice() {
        [flag] if flag == "--demo" => demo_snapshot(),
        [path] if path == "--help" || path == "-h" => {
            println!(
                "usage: hls-gnn-serve <model.json|model.hgns> | --demo\n\n\
                 Serves a trained predictor snapshot (JSON or binary) over HTTP.\n\
                 Routes: POST /predict, GET /stats, GET /metrics, GET /debug/slow,\n\
                 GET /healthz, POST /shutdown.\n\
                 Env: HLSGNN_SERVE_HOST, HLSGNN_SERVE_PORT, HLSGNN_SERVE_WORKERS,\n\
                 HLSGNN_SERVE_CACHE, HLSGNN_SERVE_QUEUE, HLSGNN_SERVE_COALESCE,\n\
                 HLSGNN_SERVE_SLOW_US, HLSGNN_SERVE_ACCESS_LOG."
            );
            return;
        }
        [path] => {
            // Accepts both snapshot formats: the loader sniffs the magic
            // bytes and decodes binary containers or JSON accordingly.
            hls_gnn_store::snapshot_from_file(path)
                .unwrap_or_else(|error| fail(&format!("cannot load snapshot: {error}")))
        }
        _ => fail("usage: hls-gnn-serve <model.json|model.hgns> | --demo (see --help)"),
    };

    let config = ServeConfig::from_env();
    let service = ServiceHandle::start(snapshot, &config)
        .unwrap_or_else(|error| fail(&format!("cannot start the service: {error}")));

    let host = std::env::var("HLSGNN_SERVE_HOST").unwrap_or_else(|_| "127.0.0.1".to_owned());
    let port = std::env::var("HLSGNN_SERVE_PORT").unwrap_or_else(|_| "7878".to_owned());
    let server = HttpServer::bind(service.clone(), &format!("{host}:{port}"))
        .unwrap_or_else(|error| fail(&format!("cannot bind {host}:{port}: {error}")));

    let stats = service.stats();
    println!(
        "serving {} ({}) on http://{} — workers {}, coalesce width {}, node budget {}, \
         queue bound {}, cache {}",
        stats.model,
        stats.spec,
        server.local_addr(),
        stats.workers,
        stats.coalesce_width,
        stats.node_budget,
        stats.queue_bound,
        stats.cache.capacity,
    );
    println!(
        "routes: POST /predict, GET /stats, GET /metrics, GET /debug/slow, GET /healthz, \
         POST /shutdown"
    );

    server.wait();
    println!("shutdown requested; draining the queue ...");
    service.shutdown();
}
