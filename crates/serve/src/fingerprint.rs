//! Content fingerprints for prediction requests.
//!
//! The implementation moved to [`hls_gnn_core::fingerprint`] so the serving
//! cache and the design-space-exploration engine share one memoisation key —
//! a prediction cached by either subsystem is addressed identically by both.
//! This module re-exports the whole surface at its historical paths.

pub use hls_gnn_core::fingerprint::{sample_fingerprint, Fingerprint, Fnv128};
