//! A minimal, hand-rolled HTTP/1.1 layer — just enough protocol for the
//! prediction service, with hard limits on every dimension an untrusted peer
//! controls (request-line length, header count and size, body size).
//!
//! Supported: `GET`/`POST` with `Content-Length` bodies, keep-alive (the
//! HTTP/1.1 default) and `Connection: close`. Not supported (rejected, not
//! ignored): chunked transfer encoding. There are no external dependencies —
//! the offline-shim constraint rules out hyper et al., and the service needs
//! only this subset.

use std::io::{self, BufRead, Write};

/// Upper bound on one header (or request) line, bytes.
pub const MAX_LINE_BYTES: usize = 16 * 1024;
/// Upper bound on the number of headers.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a request body, bytes (a fused super-graph of ~100k nodes
/// serialises well under this).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), upper-cased as received.
    pub method: String,
    /// Request target (`/predict`), query string included if any.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(header, _)| header == name).map(|(_, value)| value.as_str())
    }

    /// True when the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|value| value.eq_ignore_ascii_case("close"))
    }
}

fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Reads one `\r\n`- (or `\n`-) terminated line with a hard length cap.
fn read_line_capped(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None); // clean EOF between requests
                }
                return Err(invalid("connection closed mid-line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| invalid("header line is not valid UTF-8"))?;
                    return Ok(Some(text));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE_BYTES {
                    return Err(invalid(format!("header line exceeds {MAX_LINE_BYTES} bytes")));
                }
            }
            Err(error) => return Err(error),
        }
    }
}

/// Parses one request from the stream. `Ok(None)` is a clean EOF (the peer
/// closed a keep-alive connection between requests).
///
/// # Errors
/// [`io::ErrorKind::InvalidData`] for protocol violations (the caller should
/// answer 400 and close) and ordinary I/O errors otherwise.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(request_line) = read_line_capped(reader)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(target), Some(version), None) => (method, target, version),
        _ => return Err(invalid(format!("malformed request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported protocol version `{version}`")));
    }
    let method = method.to_ascii_uppercase();
    let target = target.to_owned();

    let mut headers = Vec::new();
    loop {
        let line = read_line_capped(reader)?
            .ok_or_else(|| invalid("connection closed inside the header block"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(invalid(format!("more than {MAX_HEADERS} headers")));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| invalid(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request { method, target, headers, body: Vec::new() };
    if request.header("transfer-encoding").is_some() {
        return Err(invalid("chunked transfer encoding is not supported"));
    }
    // Conflicting Content-Length headers are the classic request-smuggling
    // vector (RFC 7230 §3.3.3 requires rejection): a proxy honouring one
    // length and this server the other would desync the connection.
    if request.headers.iter().filter(|(name, _)| name == "content-length").count() > 1 {
        return Err(invalid("multiple content-length headers"));
    }
    if let Some(length) = request.header("content-length") {
        let length: usize =
            length.parse().map_err(|_| invalid(format!("bad content-length `{length}`")))?;
        if length > MAX_BODY_BYTES {
            return Err(invalid(format!("body of {length} bytes exceeds {MAX_BODY_BYTES}")));
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// The reason phrase for the status codes this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Content type of JSON responses (every route except `/metrics`).
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// Content type of the Prometheus text exposition served at `/metrics`.
pub const CONTENT_TYPE_METRICS: &str = "text/plain; version=0.0.4";

/// Writes one response. `retry_after` adds a `Retry-After` header (used with
/// 503 so well-behaved clients back off).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after: Option<u32>,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: {}\r\n",
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(seconds) = retry_after {
        head.push_str(&format!("Retry-After: {seconds}\r\n"));
    }
    head.push_str("\r\n");
    // One write for head + body: a small response split across two TCP
    // segments trips the Nagle / delayed-ACK interaction (~40 ms stalls per
    // exchange on keep-alive connections).
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    stream.write_all(&message)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> io::Result<Option<Request>> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let request = parse(raw).unwrap().expect("one request");
        assert_eq!(request.method, "POST");
        assert_eq!(request.target, "/predict");
        assert_eq!(request.header("host"), Some("x"));
        assert_eq!(request.body, b"hello");
        assert!(!request.wants_close());
    }

    #[test]
    fn bare_lf_lines_and_connection_close_are_accepted() {
        let raw = b"GET /stats HTTP/1.1\nConnection: close\n\n";
        let request = parse(raw).unwrap().expect("one request");
        assert_eq!(request.method, "GET");
        assert!(request.wants_close());
        assert!(request.body.is_empty());
    }

    #[test]
    fn eof_before_a_request_is_a_clean_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn protocol_violations_are_invalid_data() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: trouble\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 38\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n",
        ] {
            let error = parse(raw).expect_err("must be rejected");
            assert_eq!(error.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn truncated_bodies_error_instead_of_hanging() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(parse(raw).is_err());
    }

    #[test]
    fn responses_have_the_advertised_length_and_connection_header() {
        let mut out = Vec::new();
        write_response(&mut out, 503, CONTENT_TYPE_JSON, b"{\"error\":\"busy\"}", false, Some(1))
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 16\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("{\"error\":\"busy\"}"));
    }

    #[test]
    fn metrics_responses_carry_the_exposition_content_type() {
        let mut out = Vec::new();
        write_response(&mut out, 200, CONTENT_TYPE_METRICS, b"m_total 1\n", true, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.ends_with("m_total 1\n"));
    }
}
