//! The in-process prediction service: coalescing queue + sharded workers +
//! prediction cache behind an embeddable [`ServiceHandle`].
//!
//! # Architecture
//!
//! * Frontend threads (HTTP connections, tests, the load generator) call
//!   [`ServiceHandle::predict_sample`]. The request is fingerprinted
//!   ([`crate::fingerprint::sample_fingerprint`]); a cache hit returns
//!   immediately, a miss is admitted to the bounded
//!   [`crate::queue::CoalescingQueue`] (or shed with
//!   [`ServeError::Overloaded`] when the queue is full).
//! * N worker threads each rehydrate their own model from the shared
//!   [`SavedPredictor`] snapshot — the autodiff tape is `Rc`-based and
//!   `!Send`, so live models never cross threads; only the plain-data
//!   snapshot does (the same discipline as the training runtime). Each
//!   worker drains a micro-batch (bounded by the fusion width and the
//!   `HLSGNN_BATCH_NODES` node budget) and runs it through
//!   [`GnnPredictor::predict_batch_with`], so concurrent requests share one
//!   fused autodiff tape exactly like training mini-batches do.
//! * Because fused inference is bit-identical to per-sample inference at any
//!   width, coalescing never changes *what* is predicted — served results
//!   are bit-identical to a direct `predict_batch` call on the same graphs,
//!   no matter how requests happened to batch, which worker took them, or
//!   whether the cache was involved.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hls_gnn_core::approach::GnnPredictor;
use hls_gnn_core::dataset::GraphSample;
use hls_gnn_core::persist::SavedPredictor;
use hls_gnn_core::predictor::Predictor;
use hls_gnn_core::runtime::BatchConfig;
use hls_gnn_core::task::TargetMetric;
use hls_gnn_obs::{Counter, Gauge, Histogram, Registry};
use hls_ir::graph::GraphKind;
use hls_sim::FpgaDevice;

use crate::cache::PredictionCache;
use crate::fingerprint::{sample_fingerprint, Fingerprint};
use crate::protocol::{
    CacheStatsBody, LatencyStatsBody, PredictRequest, SlowRequestsResponse, StatsResponse,
};
use crate::queue::{CoalescingQueue, SubmitError};
use crate::reqlog::{Outcome, RequestLog, RequestRecord};

/// Serving-layer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The queue is at its admission bound; the request was shed. Retry
    /// later (the HTTP frontend maps this to 503).
    Overloaded {
        /// The configured queue bound, for the error message.
        queue_bound: usize,
    },
    /// The request itself is malformed (bad graph, unknown kernel, both or
    /// neither payload present). Maps to 400.
    BadRequest(String),
    /// The model failed on an admitted request. Maps to 500.
    Model(hls_gnn_core::Error),
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queue_bound } => {
                write!(f, "service overloaded: queue is at its bound of {queue_bound}; retry later")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Model(error) => write!(f, "prediction failed: {error}"),
            ServeError::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<hls_gnn_core::Error> for ServeError {
    fn from(error: hls_gnn_core::Error) -> Self {
        ServeError::Model(error)
    }
}

/// Service configuration. Every knob also has an `HLSGNN_SERVE_*`
/// environment variable (see [`ServeConfig::from_env`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads; 0 = one per available hardware thread.
    pub workers: usize,
    /// Prediction-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Queue admission bound (requests waiting); beyond it requests are shed
    /// with 503. Clamped to at least 1.
    pub queue_bound: usize,
    /// Maximum requests coalesced into one fused micro-batch; 0 = the model
    /// snapshot's training batch size (or `HLSGNN_BATCH` when set).
    pub coalesce_width: usize,
    /// Artificial per-micro-batch delay, for load/shedding tests
    /// (`HLSGNN_SERVE_DELAY_MS`). Zero in production.
    pub worker_delay: Duration,
    /// Requests at or above this end-to-end latency (microseconds) are
    /// retained in the slow-request ring served at `GET /debug/slow` and
    /// counted by `hlsgnn_serve_slow_total`. 0 captures every request.
    pub slow_threshold_us: u64,
    /// Emit one structured access-log line per request on stderr
    /// (`HLSGNN_SERVE_ACCESS_LOG=0` disables).
    pub access_log: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            cache_capacity: 1024,
            queue_bound: 256,
            coalesce_width: 0,
            worker_delay: Duration::ZERO,
            slow_threshold_us: 100_000,
            access_log: true,
        }
    }
}

impl ServeConfig {
    /// Environment variable naming the worker count.
    pub const WORKERS_ENV_VAR: &'static str = "HLSGNN_SERVE_WORKERS";
    /// Environment variable naming the cache capacity.
    pub const CACHE_ENV_VAR: &'static str = "HLSGNN_SERVE_CACHE";
    /// Environment variable naming the queue bound.
    pub const QUEUE_ENV_VAR: &'static str = "HLSGNN_SERVE_QUEUE";
    /// Environment variable naming the coalescing width.
    pub const COALESCE_ENV_VAR: &'static str = "HLSGNN_SERVE_COALESCE";
    /// Environment variable injecting an artificial worker delay (ms).
    pub const DELAY_ENV_VAR: &'static str = "HLSGNN_SERVE_DELAY_MS";
    /// Environment variable naming the slow-request threshold (µs).
    pub const SLOW_ENV_VAR: &'static str = "HLSGNN_SERVE_SLOW_US";
    /// Environment variable toggling the stderr access log (0 disables).
    pub const ACCESS_LOG_ENV_VAR: &'static str = "HLSGNN_SERVE_ACCESS_LOG";

    /// Reads the configuration from the `HLSGNN_SERVE_*` environment
    /// variables, falling back to the defaults for unset, empty or
    /// unparseable values (unparseable values warn on stderr, consistent
    /// with `HLSGNN_WORKERS`).
    pub fn from_env() -> Self {
        let defaults = ServeConfig::default();
        let parse = |var: &str, default: usize| -> usize {
            let raw = std::env::var(var).unwrap_or_default();
            let raw = raw.trim();
            if raw.is_empty() {
                return default;
            }
            match raw.parse::<usize>() {
                Ok(value) => value,
                Err(_) => {
                    eprintln!(
                        "warning: unrecognised {var} value `{raw}`; using the default \
                         ({default})"
                    );
                    default
                }
            }
        };
        ServeConfig {
            workers: parse(Self::WORKERS_ENV_VAR, defaults.workers),
            cache_capacity: parse(Self::CACHE_ENV_VAR, defaults.cache_capacity),
            queue_bound: parse(Self::QUEUE_ENV_VAR, defaults.queue_bound),
            coalesce_width: parse(Self::COALESCE_ENV_VAR, defaults.coalesce_width),
            worker_delay: Duration::from_millis(parse(Self::DELAY_ENV_VAR, 0) as u64),
            slow_threshold_us: parse(
                Self::SLOW_ENV_VAR,
                usize::try_from(defaults.slow_threshold_us).unwrap_or(usize::MAX),
            ) as u64,
            access_log: parse(Self::ACCESS_LOG_ENV_VAR, usize::from(defaults.access_log)) != 0,
        }
    }
}

/// One served prediction plus its serving metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Served {
    /// Monotonic request id assigned at admission (1-based); the same id
    /// appears in the access log and `/debug/slow`.
    pub request_id: u64,
    /// Raw `[DSP, LUT, FF, CP]` prediction.
    pub prediction: [f64; TargetMetric::COUNT],
    /// True when the prediction came from the cache.
    pub cached: bool,
    /// Requests that shared the computing micro-batch (0 for cache hits).
    pub coalesced: usize,
    /// Position inside the fused micro-batch (0 for cache hits).
    pub batch_index: usize,
    /// Admission to worker pick-up (zero for cache hits).
    pub queue_wait: Duration,
    /// Admission-to-completion latency.
    pub latency: Duration,
}

struct Job {
    id: u64,
    sample: GraphSample,
    fingerprint: Fingerprint,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Served, ServeError>>,
}

/// Coalesce-width buckets: exact up to 8, then coarser (widths are small
/// integers bounded by the fusion width).
const WIDTH_BUCKETS: [u64; 12] = [1, 2, 3, 4, 5, 6, 7, 8, 16, 32, 64, 128];

/// The service's metric handles, all registered in its per-service
/// [`Registry`] under a `model` label. `/stats` is computed from these same
/// atomics, so the two endpoints can never disagree.
struct ServeMetrics {
    requests: Arc<Counter>,
    served: Arc<Counter>,
    shed: Arc<Counter>,
    errors: Arc<Counter>,
    slow: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    latency_us: Arc<Histogram>,
    queue_wait_us: Arc<Histogram>,
    coalesce_width: Arc<Histogram>,
    queue_depth: Arc<Gauge>,
    queue_bound: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    cache_capacity: Arc<Gauge>,
    workers: Arc<Gauge>,
}

impl ServeMetrics {
    fn register(registry: &Registry, model: &str) -> Self {
        let labels: &[(&str, &str)] = &[("model", model)];
        ServeMetrics {
            requests: registry.counter("hlsgnn_serve_requests_total", labels),
            served: registry.counter("hlsgnn_serve_served_total", labels),
            shed: registry.counter("hlsgnn_serve_shed_total", labels),
            errors: registry.counter("hlsgnn_serve_errors_total", labels),
            slow: registry.counter("hlsgnn_serve_slow_total", labels),
            cache_hits: registry.counter("hlsgnn_serve_cache_hits_total", labels),
            cache_misses: registry.counter("hlsgnn_serve_cache_misses_total", labels),
            cache_evictions: registry.counter("hlsgnn_serve_cache_evictions_total", labels),
            latency_us: registry.histogram("hlsgnn_serve_latency_us", labels),
            queue_wait_us: registry.histogram("hlsgnn_serve_queue_wait_us", labels),
            coalesce_width: registry.histogram_with(
                "hlsgnn_serve_coalesce_width",
                labels,
                &WIDTH_BUCKETS,
            ),
            queue_depth: registry.gauge("hlsgnn_serve_queue_depth", labels),
            queue_bound: registry.gauge("hlsgnn_serve_queue_bound", labels),
            cache_entries: registry.gauge("hlsgnn_serve_cache_entries", labels),
            cache_capacity: registry.gauge("hlsgnn_serve_cache_capacity", labels),
            workers: registry.gauge("hlsgnn_serve_workers", labels),
        }
    }

    fn record_latency(&self, latency: Duration) {
        self.latency_us.record(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }
}

struct ServiceInner {
    snapshot: SavedPredictor,
    model: String,
    spec: String,
    queue: CoalescingQueue<Job>,
    cache: Mutex<PredictionCache>,
    registry: Arc<Registry>,
    metrics: ServeMetrics,
    kernel_samples: Mutex<HashMap<String, GraphSample>>,
    next_id: AtomicU64,
    reqlog: RequestLog,
    batch: BatchConfig,
    coalesce_width: usize,
    node_budget: usize,
    workers: usize,
    worker_delay: Duration,
}

/// Handle to a running in-process prediction service. Cloneable; all clones
/// drive the same service. Call [`ServiceHandle::shutdown`] to stop the
/// workers (drains the backlog first).
#[derive(Clone)]
pub struct ServiceHandle {
    inner: Arc<ServiceInner>,
    workers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServiceHandle {
    /// Starts the service: validates that the snapshot rehydrates, then
    /// spawns the worker pool. Each worker owns a thread-confined model
    /// rebuilt from the snapshot.
    ///
    /// # Errors
    /// Returns the rehydration error when the snapshot does not describe a
    /// loadable model (the failure surfaces here, once, instead of inside
    /// every worker).
    pub fn start(snapshot: SavedPredictor, config: &ServeConfig) -> hls_gnn_core::Result<Self> {
        // Fail fast — and give the workers the right to assume success.
        let probe = GnnPredictor::from_saved(&snapshot)?;
        let batch = BatchConfig::from_env();
        let coalesce_width = if config.coalesce_width > 0 {
            config.coalesce_width
        } else {
            batch.effective_width(snapshot.config.batch_size)
        };
        let node_budget = batch.node_budget(snapshot.config.hidden_dim);
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.workers
        };
        let model = probe.spec().name();
        // A per-service registry keeps counters exact when several services
        // share a process (each test boots its own); `/metrics` renders this
        // registry plus the process-global one.
        let registry = Arc::new(Registry::new());
        let metrics = ServeMetrics::register(&registry, &model);
        let cache = PredictionCache::with_counters(
            config.cache_capacity,
            Arc::clone(&metrics.cache_hits),
            Arc::clone(&metrics.cache_misses),
            Arc::clone(&metrics.cache_evictions),
        );
        let reqlog = RequestLog::new(model.clone(), config.slow_threshold_us, config.access_log);
        let inner = Arc::new(ServiceInner {
            model,
            spec: probe.spec().id(),
            snapshot,
            queue: CoalescingQueue::new(config.queue_bound),
            cache: Mutex::new(cache),
            registry,
            metrics,
            kernel_samples: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            reqlog,
            batch,
            coalesce_width,
            node_budget,
            workers,
            worker_delay: config.worker_delay,
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("hls-gnn-serve-worker-{index}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a worker thread")
            })
            .collect();
        Ok(ServiceHandle { inner, workers: Arc::new(Mutex::new(handles)) })
    }

    /// Serves one sample: cache lookup, then coalesced computation.
    ///
    /// # Errors
    /// [`ServeError::Overloaded`] when the queue is full,
    /// [`ServeError::Model`] when prediction fails,
    /// [`ServeError::ShuttingDown`] after [`ServiceHandle::shutdown`].
    pub fn predict_sample(&self, sample: GraphSample) -> Result<Served, ServeError> {
        // A stopping service refuses *all* new requests, cached or not —
        // "shutdown but still answering reads" would be a confusing
        // half-state for operators draining traffic away.
        if self.inner.queue.is_closed() {
            return Err(ServeError::ShuttingDown);
        }
        // Ids are assigned at admission, before the cache/queue fork, so the
        // access log and `/debug/slow` account for every request the service
        // looked at — whichever path answered it. The id rides along as a
        // span argument, so a trace sink can stitch the request's spans back
        // together across threads.
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let _request_span = hls_gnn_obs::span!("serve_request", id = id);
        let admitted = Instant::now();
        let fingerprint = sample_fingerprint(&sample);
        let hit = {
            let _lookup_span = hls_gnn_obs::span!("serve_cache_lookup", id = id);
            self.inner.cache.lock().expect("cache lock").get(fingerprint)
        };
        if let Some(prediction) = hit {
            // `requests` counts admissions only (cache hits and enqueued
            // work) — shed and refused requests have their own counters, so
            // the /stats identities `requests = served + in flight` and
            // `shed ∉ requests` hold.
            self.inner.metrics.requests.inc();
            let latency = admitted.elapsed();
            self.inner.metrics.record_latency(latency);
            self.inner.metrics.served.inc();
            self.inner.finish(RequestRecord {
                id,
                outcome: Outcome::CacheHit,
                batch_index: 0,
                coalesced: 0,
                queue_wait_us: 0,
                service_us: 0,
                latency_us: micros(latency),
            });
            return Ok(Served {
                request_id: id,
                prediction,
                cached: true,
                coalesced: 0,
                batch_index: 0,
                queue_wait: Duration::ZERO,
                latency,
            });
        }
        let (reply, receiver) = mpsc::channel();
        let job = Job { id, sample, fingerprint, enqueued: admitted, reply };
        self.inner.queue.try_submit(job).map_err(|rejected| match rejected {
            SubmitError::Full(_) => {
                self.inner.metrics.shed.inc();
                self.inner.finish(RequestRecord {
                    id,
                    outcome: Outcome::Shed,
                    batch_index: 0,
                    coalesced: 0,
                    queue_wait_us: 0,
                    service_us: 0,
                    latency_us: micros(admitted.elapsed()),
                });
                ServeError::Overloaded { queue_bound: self.inner.queue.bound() }
            }
            SubmitError::Closed(_) => ServeError::ShuttingDown,
        })?;
        self.inner.metrics.requests.inc();
        // A dropped sender (worker gone mid-shutdown) reads as shutdown.
        receiver.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Serves a wire-format request: resolves the graph or kernel payload,
    /// then predicts. Returns the design name alongside the result.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for malformed payloads, plus everything
    /// [`ServiceHandle::predict_sample`] returns.
    pub fn predict_request(
        &self,
        request: &PredictRequest,
    ) -> Result<(String, Served), ServeError> {
        let (name, sample) = self.resolve(request)?;
        let served = self.predict_sample(sample)?;
        Ok((name, served))
    }

    fn resolve(&self, request: &PredictRequest) -> Result<(String, GraphSample), ServeError> {
        match (&request.graph, &request.kernel) {
            (Some(_), Some(_)) => Err(ServeError::BadRequest(
                "provide either `graph` or `kernel`, not both".to_owned(),
            )),
            (None, None) => Err(ServeError::BadRequest(
                "the request must carry a `graph` payload or a `kernel` name".to_owned(),
            )),
            (Some(graph), None) => {
                let sample =
                    graph.to_sample().map_err(|error| ServeError::BadRequest(error.to_string()))?;
                Ok((graph.name.clone(), sample))
            }
            (None, Some(kernel)) => self.kernel_sample(kernel),
        }
    }

    /// Looks a built-in kernel up, lowering it through the HLS flow once and
    /// memoising the resulting sample (the flow is deterministic).
    fn kernel_sample(&self, name: &str) -> Result<(String, GraphSample), ServeError> {
        if let Some(sample) = self.inner.kernel_samples.lock().expect("kernel lock").get(name) {
            return Ok((name.to_owned(), sample.clone()));
        }
        let kernel = hls_progen::all_kernels()
            .into_iter()
            .find(|kernel| kernel.name == name)
            .ok_or_else(|| ServeError::BadRequest(format!("unknown kernel `{name}`")))?;
        // The flow hard-gates its input through the IR verifier; a frontend
        // or verification failure means the requested program is rejected
        // input (400), not a broken server.
        let sample =
            GraphSample::from_function(&kernel.function, GraphKind::Cdfg, &FpgaDevice::default())
                .map_err(|error| match error {
                hls_gnn_core::Error::Flow(message) => ServeError::BadRequest(format!(
                    "kernel `{name}` was rejected by the HLS flow: {message}"
                )),
                other => ServeError::Model(other),
            })?;
        self.inner
            .kernel_samples
            .lock()
            .expect("kernel lock")
            .insert(name.to_owned(), sample.clone());
        Ok((name.to_owned(), sample))
    }

    /// A point-in-time stats snapshot (the `/stats` document), read from the
    /// same registry metrics `/metrics` renders.
    pub fn stats(&self) -> StatsResponse {
        let cache = self.inner.cache.lock().expect("cache lock");
        let counters = cache.counters();
        let cache_body = CacheStatsBody {
            capacity: cache.capacity(),
            entries: cache.len(),
            hits: counters.hits,
            misses: counters.misses,
            evictions: counters.evictions,
        };
        drop(cache);
        let metrics = &self.inner.metrics;
        let latency = LatencyStatsBody {
            window: usize::try_from(metrics.latency_us.count()).unwrap_or(usize::MAX),
            p50_us: metrics.latency_us.quantile(0.50),
            p99_us: metrics.latency_us.quantile(0.99),
            max_us: metrics.latency_us.max_value(),
        };
        StatsResponse {
            model: self.inner.model.clone(),
            spec: self.inner.spec.clone(),
            workers: self.inner.workers,
            coalesce_width: self.inner.coalesce_width,
            node_budget: self.inner.node_budget,
            queue_depth: self.inner.queue.len(),
            queue_bound: self.inner.queue.bound(),
            requests: metrics.requests.get(),
            served: metrics.served.get(),
            shed: metrics.shed.get(),
            errors: metrics.errors.get(),
            slow: metrics.slow.get(),
            cache: cache_body,
            latency,
        }
    }

    /// The `/debug/slow` document: the configured threshold, the lifetime
    /// slow-request count, and the retained slow records (oldest first).
    pub fn slow_requests(&self) -> SlowRequestsResponse {
        SlowRequestsResponse::new(
            self.inner.reqlog.slow_threshold_us(),
            self.inner.metrics.slow.get(),
            &self.inner.reqlog.slow(),
        )
    }

    /// The most recent resolved requests (oldest first), from the bounded
    /// in-memory ring behind the access log.
    pub fn recent_requests(&self) -> Vec<RequestRecord> {
        self.inner.reqlog.recent()
    }

    /// Renders the `/metrics` document: this service's registry (with the
    /// point-in-time gauges refreshed at scrape time) followed by the
    /// process-global registry (training, flow and DSE metrics).
    pub fn render_metrics(&self) -> String {
        let metrics = &self.inner.metrics;
        metrics.queue_depth.set(i64::try_from(self.inner.queue.len()).unwrap_or(i64::MAX));
        metrics.queue_bound.set(i64::try_from(self.inner.queue.bound()).unwrap_or(i64::MAX));
        metrics.workers.set(i64::try_from(self.inner.workers).unwrap_or(i64::MAX));
        {
            let cache = self.inner.cache.lock().expect("cache lock");
            metrics.cache_entries.set(i64::try_from(cache.len()).unwrap_or(i64::MAX));
            metrics.cache_capacity.set(i64::try_from(cache.capacity()).unwrap_or(i64::MAX));
        }
        let mut text = self.inner.registry.render();
        text.push_str(&hls_gnn_obs::global().render());
        text
    }

    /// This service's private metrics registry (the one `/metrics` renders
    /// ahead of the process-global registry).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// The model name in paper notation (e.g. `"RGCN-I"`).
    pub fn model_name(&self) -> &str {
        &self.inner.model
    }

    /// Graceful shutdown: closes the queue (new submissions are refused),
    /// lets the workers drain the backlog, and joins them. Idempotent; safe
    /// to call from any clone.
    pub fn shutdown(&self) {
        self.inner.queue.close();
        let mut workers = self.workers.lock().expect("worker lock");
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ServiceInner {
    /// Final accounting for one resolved request: the access-log line and
    /// retention rings, plus the slow counter when it crossed the threshold.
    fn finish(&self, record: RequestRecord) {
        if self.reqlog.record(record) {
            self.metrics.slow.inc();
        }
    }
}

fn micros(duration: Duration) -> u64 {
    u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)
}

fn worker_loop(inner: &ServiceInner) {
    // Thread-confined model: rebuilt here, on this worker's thread, from the
    // shared plain-data snapshot. `start` validated the snapshot, so a
    // failure can only mean the process is out of memory — exit the worker.
    let Ok(predictor) = GnnPredictor::from_saved(&inner.snapshot) else {
        return;
    };
    let width = inner.coalesce_width;
    let budget = inner.node_budget;
    while let Some(batch) = inner.queue.drain_coalesced(|next, taken| {
        let taken_nodes: usize = taken.iter().map(|job| job.sample.num_nodes()).sum();
        taken.len() < width && taken_nodes + next.sample.num_nodes() <= budget
    }) {
        // Pick-up splits each request's latency in two: queue wait
        // (admission to here) and service time (here to reply — including
        // the artificial delay, which models processing, not waiting).
        let pickup = Instant::now();
        let coalesced = batch.len();
        inner.metrics.coalesce_width.record(coalesced as u64);
        let mut ids = String::new();
        for (index, job) in batch.iter().enumerate() {
            let waited = pickup.duration_since(job.enqueued);
            inner.metrics.queue_wait_us.record(micros(waited));
            if index > 0 {
                ids.push(',');
            }
            ids.push_str(&job.id.to_string());
        }
        if !inner.worker_delay.is_zero() {
            std::thread::sleep(inner.worker_delay);
        }
        let mut samples = Vec::with_capacity(coalesced);
        let mut metas = Vec::with_capacity(coalesced);
        for job in batch {
            samples.push(job.sample);
            metas.push((job.id, job.fingerprint, job.enqueued, job.reply));
        }
        let results = {
            let _infer_span = hls_gnn_obs::span!("serve_infer", ids = ids, width = coalesced);
            predictor.predict_batch_with(&samples, &inner.batch)
        };
        for (batch_index, ((id, fingerprint, enqueued, reply), result)) in
            metas.into_iter().zip(results).enumerate()
        {
            let queue_wait = pickup.duration_since(enqueued);
            let outcome = match result {
                Ok(prediction) => {
                    inner.cache.lock().expect("cache lock").insert(fingerprint, prediction);
                    let latency = enqueued.elapsed();
                    inner.metrics.record_latency(latency);
                    inner.metrics.served.inc();
                    inner.finish(RequestRecord {
                        id,
                        outcome: Outcome::Served,
                        batch_index,
                        coalesced,
                        queue_wait_us: micros(queue_wait),
                        service_us: micros(pickup.elapsed()),
                        latency_us: micros(latency),
                    });
                    Ok(Served {
                        request_id: id,
                        prediction,
                        cached: false,
                        coalesced,
                        batch_index,
                        queue_wait,
                        latency,
                    })
                }
                Err(error) => {
                    inner.metrics.errors.inc();
                    inner.finish(RequestRecord {
                        id,
                        outcome: Outcome::Error,
                        batch_index,
                        coalesced,
                        queue_wait_us: micros(queue_wait),
                        service_us: micros(pickup.elapsed()),
                        latency_us: micros(enqueued.elapsed()),
                    });
                    Err(ServeError::Model(error))
                }
            };
            // The requester may have given up; dropping the result is fine.
            let _ = reply.send(outcome);
        }
    }
}
